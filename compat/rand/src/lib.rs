//! Offline compatibility shim for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this path crate. It is **not** the upstream crate: it provides
//! the same method names (`SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`) backed by a deterministic
//! xoshiro256++ generator. Streams differ from upstream `StdRng`, which is
//! fine: every consumer in this repository treats the RNG as an opaque
//! deterministic source (same seed ⇒ same stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array, as upstream).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator by expanding a 64-bit seed (splitmix64,
    /// mirroring upstream's behaviour of seeding from a stream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let b = sm.next().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64: the canonical seed expander.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values samplable uniformly from the generator's raw stream
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly (the shim's `SampleUniform`).
///
/// This must be a single blanket surface (one impl of [`SampleRange`] per
/// range shape) so type inference links the range's element type to
/// `gen_range`'s return type the way upstream `rand` does — e.g.
/// `b'a' + rng.gen_range(0..26)` must infer `u8`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let draw = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                (lo as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
        -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges samplable by `gen_range` (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range, like
    /// upstream.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// High-level convenience methods (auto-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice (mirrors `Rng::fill` for `[u8]`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's `StdRng`: xoshiro256++ (not upstream's ChaCha12 — the
    /// workspace only relies on determinism, not on the exact stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: u8 = r.gen_range(0..=255);
            let _ = x;
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
