//! Offline compatibility shim for the subset of `criterion` 0.5 used by
//! this workspace's benches.
//!
//! The build environment has no registry access, so the workspace patches
//! `criterion` to this path crate. Benches compile against the same names
//! (`criterion_group!`, `criterion_main!`, `Criterion`, groups, throughput,
//! `black_box`) and, when run with `cargo bench`, execute each benchmark a
//! small, fixed number of timed iterations and print a one-line
//! median/mean summary — no warm-up modeling, outlier analysis or plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value laundering to defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }

    /// An id made of the parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// The display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    fn with_samples(n: usize) -> Bencher {
        Bencher { samples: Vec::with_capacity(n), iters_per_sample: 1 }
    }

    /// Times `routine`, collecting one sample per configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let n = self.samples.capacity().max(1);
        for _ in 0..n {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(b) if median > 0 => {
                format!("  {:.1} MiB/s", b as f64 / (median as f64 / 1e9) / (1 << 20) as f64)
            }
            Throughput::Elements(e) if median > 0 => {
                format!("  {:.1} Melem/s", e as f64 / (median as f64 / 1e9) / 1e6)
            }
            _ => String::new(),
        });
        println!(
            "{name:<48} median {median:>10} ns   mean {mean:>10} ns{}",
            rate.unwrap_or_default()
        );
    }
}

/// A named benchmark group with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkName,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::with_samples(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into_name()), self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkName,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::with_samples(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into_name()), self.throughput);
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::with_samples(self.default_sample_size.max(10));
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(10);
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function invoking each benchmark function with a
/// shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
