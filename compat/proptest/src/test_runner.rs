//! The deterministic test runner: configuration, RNG, case outcomes.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections, kept for API parity.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — regenerate, don't count.
    Reject(String),
    /// A `prop_assert*!` failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// The generator driving strategies: splitmix64, seeded from the test name
/// so every test is deterministic in isolation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an explicit value.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    /// A generator seeded from a test's name (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
