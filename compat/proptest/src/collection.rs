//! Collection strategies (`proptest::collection::vec`).

use core::fmt;
use core::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates a `Vec` of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
