//! Offline compatibility shim for the subset of `proptest` 1.x used by this
//! workspace.
//!
//! The build environment has no registry access, so the workspace patches
//! `proptest` to this path crate. It keeps the *surface* of the upstream
//! API — `proptest!`, `Strategy` with `prop_map`/`prop_filter`/
//! `prop_recursive`, `prop_oneof!`, `any::<T>()`, ranges-as-strategies,
//! `proptest::collection::vec`, `proptest::option::of`, the `prop_assert*`
//! and `prop_assume!` macros and `ProptestConfig` — but not shrinking:
//! failing cases are reported with their generated inputs (every strategy
//! value is `Debug`) instead of being minimized. Generation is
//! deterministic per test (the RNG is seeded from the test's name), so a
//! failure always reproduces.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Defines deterministic property tests over sampled inputs.
///
/// Mirrors upstream syntax: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    ( ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(1024);
                while accepted < config.cases {
                    if attempts >= max_attempts {
                        panic!(
                            "proptest '{}': too many rejected cases ({} accepted of {} wanted after {} attempts)",
                            stringify!($name), accepted, config.cases, attempts
                        );
                    }
                    attempts += 1;
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    // Render inputs before the body runs: the body takes the
                    // bindings by value, so they may not exist afterwards.
                    let inputs: ::std::string::String =
                        format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                    let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { { $body }; ::std::result::Result::Ok(()) })();
                    match case {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case #{}: {}\ninputs: {}",
                                stringify!($name),
                                accepted,
                                msg,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a proptest body (fails the case, with
/// formatted context, rather than panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Rejects the current case (it is regenerated and does not count toward
/// the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)*)),
            );
        }
    };
}
