//! The conventional `use proptest::prelude::*;` import surface.

pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Upstream re-exports the crate under `prop` for `prop::collection::vec`
/// style paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}
