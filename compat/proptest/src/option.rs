//! Option strategies (`proptest::option::of`).

use core::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` of the inner strategy three times out of four, `None`
/// otherwise (matching upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
