//! Strategies: composable deterministic value generators.

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// How many times filtered/rejecting strategies retry before giving up.
const FILTER_RETRIES: u32 = 256;

/// A composable value generator. Unlike upstream there is no value tree and
/// no shrinking: a strategy is just a deterministic sampler.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerating in place).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter { inner: self, whence, pred }
    }

    /// Builds a recursive strategy: each of `depth` levels chooses between
    /// the base (leaf) strategy and `recurse` applied to the shallower
    /// levels. `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility and ignored (they tune upstream's size heuristics).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut acc: BoxedStrategy<Self::Value> = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(acc).boxed();
            let leaf = self.clone().boxed();
            acc = Union::new(vec![leaf, deeper]).boxed();
        }
        acc
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { sampler: Arc::new(move |rng: &mut TestRng| self.sample(rng)) }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sampler: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { sampler: Arc::clone(&self.sampler) }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected {FILTER_RETRIES} consecutive samples", self.whence);
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias 1-in-8 draws toward boundary values, which is where
                // integer properties break (upstream shrinks toward these;
                // we seed them directly instead).
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_for_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);
impl_strategy_for_tuple!(A, B, C, D, E, F, G);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H, I);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H, I, J);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H, I, J, K);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H, I, J, K, L);
