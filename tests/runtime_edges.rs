//! Runtime edge cases and failure injection across crate boundaries.

use std::sync::Arc;

use segue_colorguard::core::{compile, CompilerConfig, Strategy};
use segue_colorguard::runtime::{HostApi, Runtime, RuntimeConfig, RuntimeError};

fn counter_module() -> Arc<segue_colorguard::core::CompiledModule> {
    let m = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "one") (result i32) i32.const 1))"#,
    )
    .expect("parses");
    Arc::new(compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"))
}

#[test]
fn invoking_a_terminated_instance_fails_cleanly() {
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("boots");
    let id = rt.instantiate(counter_module()).expect("slot");
    rt.terminate(id).expect("terminates");
    assert!(matches!(rt.invoke(id, "one", &[]), Err(RuntimeError::BadInstance)));
    assert!(matches!(rt.terminate(id), Err(RuntimeError::BadInstance)));
    assert!(matches!(rt.read_heap(id, 0, &mut [0u8; 1]), Err(RuntimeError::BadInstance)));
}

#[test]
fn unknown_export_is_reported() {
    let mut rt = Runtime::new(RuntimeConfig::small_test(false)).expect("boots");
    let id = rt.instantiate(counter_module()).expect("slot");
    assert!(matches!(
        rt.invoke(id, "missing", &[]),
        Err(RuntimeError::NoSuchExport(n)) if n == "missing"
    ));
}

#[test]
fn host_errors_propagate_and_leave_the_runtime_usable() {
    let m = segue_colorguard::wasm::wat::parse("(module)").expect("parses");
    let mut module = segue_colorguard::wasm::Module::new(1);
    let imp = module.push_import(segue_colorguard::wasm::HostImport {
        name: "env.fail".into(),
        params: vec![],
        result: Some(segue_colorguard::wasm::ValType::I32),
    });
    let f = module.push_func(
        segue_colorguard::wasm::FuncBuilder::new("f")
            .result(segue_colorguard::wasm::ValType::I32)
            .body(vec![segue_colorguard::wasm::Op::Call(imp), segue_colorguard::wasm::Op::End])
            .build(),
    );
    module.export("f", f);
    let _ = m;
    let cm = Arc::new(
        compile(&module, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );

    struct Failing;
    impl HostApi for Failing {
        fn call(&mut self, _: &str, _: &[u64], _: &mut [u8]) -> Result<Option<u64>, String> {
            Err("backend unreachable".into())
        }
    }
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("boots");
    let id = rt.instantiate(Arc::clone(&cm)).expect("slot");
    let err = rt.invoke_with_host(id, "f", &[], &mut Failing);
    assert!(matches!(err, Err(RuntimeError::Host(m)) if m.contains("backend unreachable")));

    // The runtime keeps working after a failed invocation.
    struct Ok42;
    impl HostApi for Ok42 {
        fn call(&mut self, _: &str, _: &[u64], _: &mut [u8]) -> Result<Option<u64>, String> {
            Ok(Some(42))
        }
    }
    assert_eq!(
        rt.invoke_with_host(id, "f", &[], &mut Ok42).expect("recovers").result,
        Some(42)
    );
}

#[test]
fn mixed_modules_share_one_node() {
    // Two different modules, different strategies, in the same pool.
    let a = counter_module();
    let m = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "two") (result i32) i32.const 2))"#,
    )
    .expect("parses");
    let b = Arc::new(
        compile(&m, &CompilerConfig::for_strategy(Strategy::GuardRegion)).expect("compiles"),
    );
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("boots");
    let ia = rt.instantiate(a).expect("slot");
    let ib = rt.instantiate(b).expect("slot");
    assert_eq!(rt.invoke(ia, "one", &[]).expect("runs").result, Some(1));
    assert_eq!(rt.invoke(ib, "two", &[]).expect("runs").result, Some(2));
}

#[test]
fn oversized_module_is_rejected_at_instantiation() {
    // 8 pages > the 1-page slots of the small test pool.
    let m = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 8)
             (func (export "one") (result i32) i32.const 1))"#,
    )
    .expect("parses");
    let cm = Arc::new(
        compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("boots");
    assert!(matches!(
        rt.instantiate(cm),
        Err(RuntimeError::IncompatibleModule(_))
    ));
}

#[test]
fn memory_grow_inside_the_pool_slot() {
    let m = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 1 4)
             (func (export "grow") (result i32)
               i32.const 1 memory.grow))"#,
    )
    .expect("parses");
    let cm = Arc::new(
        compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).expect("boots");
    let id = rt.instantiate(cm).expect("slot");
    // The slot holds exactly one page, so growth must fail (-1): the pool's
    // max_memory_bytes caps the instance even below the module's own max.
    assert_eq!(
        rt.invoke(id, "grow", &[]).expect("runs").result,
        Some(u64::from(u32::MAX) & 0xFFFF_FFFF)
    );
}
