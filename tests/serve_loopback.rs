//! Live-serving integration: the `faas_serve` loop on a loopback ephemeral
//! port (DESIGN.md §8).
//!
//! Starts the exact server the `faas_serve` binary runs —
//! [`serve_blocking`] over a shared [`ServeEngine`] — drives engine rounds,
//! and scrapes it over real TCP: `/metrics` twice (observer effect must be
//! confined to the scrape-meta series), `/trace?since=<cursor>`
//! incrementally (the drained stream must concatenate byte-identically to
//! the post-mortem batch export), `/snapshot` (byte-equal to a server-off
//! replay), `/healthz`, and `/quit` for clean shutdown.

use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use segue_colorguard::faas::{serve_blocking, ServeConfig, ServeEngine};
use segue_colorguard::telemetry::{chrome_trace_wrap, http_get, json_is_valid};

const ROUNDS: u64 = 3;

fn small_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::paper_rig(2);
    cfg.engine.duration_ms = 20;
    cfg.probe.duration_ms = 10;
    cfg
}

#[test]
fn loopback_scrapes_match_postmortem_exports() {
    // Server-off reference: replay the same config and round count.
    let mut offline = ServeEngine::new(small_cfg());
    for _ in 0..ROUNDS {
        offline.run_round();
    }
    let offline_snapshot = offline.snapshot_json();
    let offline_trace = offline.trace_batch();

    // Live server on an ephemeral loopback port.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Arc::new(Mutex::new(ServeEngine::new(small_cfg())));
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            serve_blocking(&listener, &engine, Instant::now()).expect("serve loop")
        })
    };

    // Drive rounds, draining /trace incrementally after each.
    let mut cursor = 0u64;
    let mut streamed: Vec<String> = Vec::new();
    for _ in 0..ROUNDS {
        engine.lock().unwrap().run_round();
        let (status, body) = http_get(&addr, &format!("/trace?since={cursor}")).expect("trace");
        assert_eq!(status, 200);
        let mut lines = body.lines();
        let head = lines.next().expect("metadata line");
        assert!(head.contains("\"dropped\": 0"), "{head}");
        cursor = head
            .split("\"next\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("next cursor in metadata");
        streamed.extend(lines.map(str::to_owned));
    }

    // Scrape /metrics twice: both succeed, modeled series identical, and
    // only the scrape-meta counter differs between the two bodies.
    let (s1, m1) = http_get(&addr, "/metrics").expect("first metrics scrape");
    let (s2, m2) = http_get(&addr, "/metrics").expect("second metrics scrape");
    assert_eq!((s1, s2), (200, 200));
    assert!(m1.contains("sfi_shard_completed_total"));
    assert!(m1.contains("sfi_shard_dtlb_events_total{sample_rate=\"64\"}"), "{m1}");
    assert!(m1.contains("sfi_serve_scrapes_total{endpoint=\"metrics\"} 1"), "{m1}");
    assert!(m2.contains("sfi_serve_scrapes_total{endpoint=\"metrics\"} 2"), "{m2}");
    let modeled = |m: &str| -> String {
        m.lines().filter(|l| !l.contains("sfi_serve_scrapes_total")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(modeled(&m1), modeled(&m2), "scraping must not move modeled series");

    // The incremental drains re-wrap to the byte-identical batch export,
    // which in turn equals the server-off replay.
    let rewrapped = chrome_trace_wrap(&streamed);
    assert_eq!(rewrapped, engine.lock().unwrap().trace_batch());
    assert_eq!(rewrapped, offline_trace);

    // /snapshot is modeled-only and byte-equal to the offline replay.
    let (ss, snapshot) = http_get(&addr, "/snapshot").expect("snapshot");
    assert_eq!(ss, 200);
    assert!(json_is_valid(&snapshot));
    assert_eq!(snapshot, offline_snapshot, "serving must have zero observer effect");
    assert!(!snapshot.contains("sfi_serve_scrapes_total"), "meta must stay out of /snapshot");

    // /healthz answers with availability; unknown paths 404; /quit stops.
    let (hs, health) = http_get(&addr, "/healthz").expect("healthz");
    assert_eq!(hs, 200);
    assert!(json_is_valid(&health), "{health}");
    assert!(health.contains("\"availability\""));
    assert!(health.contains("\"quarantined_instances\""));
    let (nf, _) = http_get(&addr, "/no-such-endpoint").expect("404 path");
    assert_eq!(nf, 404);
    let (qs, _) = http_get(&addr, "/quit").expect("quit");
    assert_eq!(qs, 200);
    server.join().expect("server thread exits after /quit");
}
