//! Live-serving integration: the `faas_serve` loop on a loopback ephemeral
//! port (DESIGN.md §8).
//!
//! Starts the exact server the `faas_serve` binary runs —
//! [`serve_blocking`] over a shared [`ServeEngine`] — drives engine rounds,
//! and scrapes it over real TCP: `/metrics` twice (observer effect must be
//! confined to the scrape-meta series), `/trace?since=<cursor>`
//! incrementally (the drained stream must concatenate byte-identically to
//! the post-mortem batch export), `/snapshot` (byte-equal to a server-off
//! replay), `/healthz`, and `/quit` for clean shutdown.

use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use segue_colorguard::faas::{
    fleet_serve_blocking, serve_blocking, FailureModel, FleetConfig, FleetSupervisor,
    ServeConfig, ServeEngine,
};
use segue_colorguard::telemetry::{
    chrome_trace_wrap, http_get, http_get_retry, json_is_valid, Registry, RetryPolicy,
};
use segue_colorguard::vm::{EngineFault, FaultPlan};

const ROUNDS: u64 = 3;

fn small_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::paper_rig(2);
    cfg.engine.duration_ms = 20;
    cfg.probe.duration_ms = 10;
    cfg
}

#[test]
fn loopback_scrapes_match_postmortem_exports() {
    // Server-off reference: replay the same config and round count.
    let mut offline = ServeEngine::new(small_cfg());
    for _ in 0..ROUNDS {
        offline.run_round();
    }
    let offline_snapshot = offline.snapshot_json();
    let offline_trace = offline.trace_batch();

    // Live server on an ephemeral loopback port.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Arc::new(Mutex::new(ServeEngine::new(small_cfg())));
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            serve_blocking(&listener, &engine, Instant::now()).expect("serve loop")
        })
    };

    // Drive rounds, draining /trace incrementally after each.
    let mut cursor = 0u64;
    let mut streamed: Vec<String> = Vec::new();
    for _ in 0..ROUNDS {
        engine.lock().unwrap().run_round();
        let (status, body) = http_get(&addr, &format!("/trace?since={cursor}")).expect("trace");
        assert_eq!(status, 200);
        let mut lines = body.lines();
        let head = lines.next().expect("metadata line");
        assert!(head.contains("\"dropped\": 0"), "{head}");
        cursor = head
            .split("\"next\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("next cursor in metadata");
        streamed.extend(lines.map(str::to_owned));
    }

    // Scrape /metrics twice: both succeed, modeled series identical, and
    // only the scrape-meta counter differs between the two bodies.
    let (s1, m1) = http_get(&addr, "/metrics").expect("first metrics scrape");
    let (s2, m2) = http_get(&addr, "/metrics").expect("second metrics scrape");
    assert_eq!((s1, s2), (200, 200));
    assert!(m1.contains("sfi_shard_completed_total"));
    assert!(m1.contains("sfi_shard_dtlb_events_total{sample_rate=\"64\"}"), "{m1}");
    assert!(m1.contains("sfi_serve_scrapes_total{endpoint=\"metrics\"} 1"), "{m1}");
    assert!(m2.contains("sfi_serve_scrapes_total{endpoint=\"metrics\"} 2"), "{m2}");
    let modeled = |m: &str| -> String {
        m.lines().filter(|l| !l.contains("sfi_serve_scrapes_total")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(modeled(&m1), modeled(&m2), "scraping must not move modeled series");

    // The incremental drains re-wrap to the byte-identical batch export,
    // which in turn equals the server-off replay.
    let rewrapped = chrome_trace_wrap(&streamed);
    assert_eq!(rewrapped, engine.lock().unwrap().trace_batch());
    assert_eq!(rewrapped, offline_trace);

    // /snapshot is modeled-only and byte-equal to the offline replay.
    let (ss, snapshot) = http_get(&addr, "/snapshot").expect("snapshot");
    assert_eq!(ss, 200);
    assert!(json_is_valid(&snapshot));
    assert_eq!(snapshot, offline_snapshot, "serving must have zero observer effect");
    assert!(!snapshot.contains("sfi_serve_scrapes_total"), "meta must stay out of /snapshot");

    // /healthz answers with availability; unknown paths 404; /quit stops.
    let (hs, health) = http_get(&addr, "/healthz").expect("healthz");
    assert_eq!(hs, 200);
    assert!(json_is_valid(&health), "{health}");
    assert!(health.contains("\"availability\""));
    assert!(health.contains("\"quarantined_instances\""));
    let (nf, _) = http_get(&addr, "/no-such-endpoint").expect("404 path");
    assert_eq!(nf, 404);
    let (qs, _) = http_get(&addr, "/quit").expect("quit");
    assert_eq!(qs, 200);
    server.join().expect("server thread exits after /quit");
}

#[test]
fn wrapped_trace_stream_flags_the_gap_and_stays_valid() {
    // A stream ring far smaller than one round's event volume: the first
    // scrape after two rounds must observe dropped > 0 — and the response
    // must still re-wrap to valid chrome-trace JSON with the gap flagged.
    let mut cfg = small_cfg();
    cfg.stream_capacity = 32;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Arc::new(Mutex::new(ServeEngine::new(cfg)));
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            serve_blocking(&listener, &engine, Instant::now()).expect("serve loop")
        })
    };
    for _ in 0..2 {
        engine.lock().unwrap().run_round();
    }
    {
        let eng = engine.lock().unwrap();
        assert!(
            eng.stream().total_recorded() > 32 + 32,
            "rounds must overflow the ring decisively (got {})",
            eng.stream().total_recorded()
        );
    }
    let (status, body) = http_get(&addr, "/trace?since=0").expect("trace");
    assert_eq!(status, 200);
    let mut lines = body.lines();
    let head = lines.next().expect("metadata line");
    assert!(!head.contains("\"dropped\": 0"), "wraparound must be reported: {head}");
    let streamed: Vec<String> = lines.map(str::to_owned).collect();
    // The gap marker leads the event lines, carries the drop count, and the
    // re-wrapped document is still valid chrome-trace JSON.
    assert!(streamed[0].contains("\"name\": \"trace_gap\""), "{}", streamed[0]);
    assert!(streamed[0].contains("\"dropped\": "), "{}", streamed[0]);
    let dropped: u64 = head
        .split("\"dropped\": ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim_end_matches('}').parse().ok())
        .expect("dropped count in metadata");
    assert!(streamed[0].contains(&format!("\"dropped\": {dropped}")), "gap != metadata");
    let rewrapped = chrome_trace_wrap(&streamed);
    assert!(json_is_valid(&rewrapped), "gap-bearing stream must re-wrap to valid JSON");
    // The line count in the metadata includes the gap marker.
    assert!(head.contains(&format!("\"lines\": {}", streamed.len())), "{head}");
    let (qs, _) = http_get(&addr, "/quit").expect("quit");
    assert_eq!(qs, 200);
    server.join().expect("server thread exits after /quit");
}

#[test]
fn saturated_dead_letters_serve_a_floored_healthz() {
    // FailureModel edge over the wire: every probe attempt traps with no
    // retry budget, so dead-letters saturate. /healthz must serve exactly
    // 0.0 availability — a parseable number, not NaN and not a panic.
    let mut cfg = small_cfg();
    cfg.probe.failures = FailureModel { trap_prob: 1.0, max_retries: 0, ..Default::default() };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Arc::new(Mutex::new(ServeEngine::new(cfg)));
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            serve_blocking(&listener, &engine, Instant::now()).expect("serve loop")
        })
    };
    for _ in 0..2 {
        engine.lock().unwrap().run_round();
    }
    let (status, health) = http_get(&addr, "/healthz").expect("healthz");
    assert_eq!(status, 200, "a saturated engine still answers");
    assert!(json_is_valid(&health), "{health}");
    assert!(health.contains("\"availability\": 0.000000"), "floored, not NaN: {health}");
    assert!(health.contains("\"status\": \"degraded\""), "{health}");
    assert!(!health.contains("NaN") && !health.contains("nan"), "{health}");
    let dead: u64 = health
        .split("\"dead_lettered\": ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("dead_lettered in healthz");
    assert!(dead > 0, "saturation must dead-letter: {health}");
    let (qs, _) = http_get(&addr, "/quit").expect("quit");
    assert_eq!(qs, 200);
    server.join().expect("server thread exits after /quit");
}

#[test]
fn fleet_loopback_serves_the_federated_surface() {
    // A two-member fleet with one injected kill, scraped over real TCP
    // with the hardened retry client: the federated /snapshot must equal a
    // manual label-disambiguated merge of uninterrupted member replays.
    let mut cfg = FleetConfig::paper_rig(2, 2);
    for m in &mut cfg.members {
        m.engine.duration_ms = 10;
        m.probe.duration_ms = 5;
    }
    cfg.chaos = FaultPlan::new().engine_fail_at(0, 1, EngineFault::MidRoundPanic);
    let member_cfgs: Vec<ServeConfig> = cfg.members.clone();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("addr").to_string();
    let fleet = Arc::new(Mutex::new(FleetSupervisor::new(cfg)));
    let server = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            fleet_serve_blocking(&listener, &fleet, Instant::now()).expect("fleet serve")
        })
    };
    const ROUNDS: u64 = 3;
    for _ in 0..ROUNDS {
        fleet.lock().unwrap_or_else(|p| p.into_inner()).run_round();
    }
    let policy = RetryPolicy::default();
    let (fs, fleet_body, _) = http_get_retry(&addr, "/fleet", &policy).expect("fleet");
    assert_eq!(fs, 200);
    assert!(json_is_valid(&fleet_body), "{fleet_body}");
    assert!(fleet_body.contains("\"restarts\": 1"), "the kill must recover: {fleet_body}");
    assert!(fleet_body.contains("\"members_live\": 2"), "{fleet_body}");
    let (ss, snapshot, _) = http_get_retry(&addr, "/snapshot", &policy).expect("snapshot");
    assert_eq!(ss, 200);
    let mut manual = Registry::new();
    for (id, mcfg) in member_cfgs.iter().enumerate() {
        let mut replay = ServeEngine::new(mcfg.clone());
        for _ in 0..ROUNDS {
            replay.run_round();
        }
        manual.merge_labeled_from(replay.registry(), "engine", &id.to_string());
    }
    assert_eq!(
        snapshot,
        segue_colorguard::telemetry::json_snapshot(&manual),
        "federated snapshot != labeled sum of uninterrupted member replays"
    );
    let (ms, metrics, _) = http_get_retry(&addr, "/metrics", &policy).expect("metrics");
    assert_eq!(ms, 200);
    assert!(metrics.contains("engine=\"0\"") && metrics.contains("engine=\"1\""), "{metrics}");
    assert!(metrics.contains("sfi_fleet_member_faults_total{kind=\"mid_round_panic\"} 1"));
    let (qs, _, _) = http_get_retry(&addr, "/quit", &policy).expect("quit");
    assert_eq!(qs, 200);
    server.join().expect("server thread exits after /quit");
}
