//! Safety-model trap matrix: every out-of-bounds shape must produce the
//! *correct* [`SandboxFault`] under every protection strategy — and
//! Masking's documented corrupt-not-trap divergence must hold.
//!
//! The shapes cover the four ways guest code escapes its heap:
//!
//! - **heap-oob-near** — first byte past the memory limit, lands in the
//!   slot's own guard region;
//! - **heap-oob-far** — a full page further; under ColorGuard this reaches
//!   the *neighbour stripe's* pages, so MPK (not the guard) must catch it;
//! - **neg-offset** — a wrapped 32-bit index (`-4`), which after zero
//!   extension lands ~4 GiB above the heap base;
//! - **straddle** — a 4-byte load whose first byte is in bounds but whose
//!   tail crosses into the guard (hardware faults per page, so the guard
//!   still catches it; BoundsCheck catches it via the explicit width check);
//! - **stack-overflow** — unbounded recursion tripping the prologue check.

use std::sync::Arc;

use segue_colorguard::core::{compile, CompilerConfig, Strategy};
use segue_colorguard::runtime::{Runtime, RuntimeConfig, RuntimeError, SandboxFault};

const PAGE: u64 = 65536;

/// A store probe: writes 1 at the given byte address, returns 7.
const POKE: &str = r#"(module (memory 1)
    (func (export "poke") (param $p i32) (result i32)
      local.get $p
      i32.const 1
      i32.store
      i32.const 7))"#;

/// A 4-byte load probe.
const PEEK: &str = r#"(module (memory 1)
    (func (export "peek") (param $p i32) (result i32)
      local.get $p
      i32.load))"#;

/// Infinite recursion: must hit the prologue stack check.
const RECURSE: &str = r#"(module (memory 1)
    (func $inf (export "inf") (result i32) call $inf))"#;

/// Strategies that interpose on memory with guard regions (the fault
/// arrives as a page-level trap, classified by address).
const GUARD_BASED: [Strategy; 3] = [Strategy::GuardRegion, Strategy::Segue, Strategy::SegueLoads];

/// Strategies with an explicit bounds check (the fault arrives as a guest
/// trap before any access is issued).
const BOUNDS_BASED: [Strategy; 2] = [Strategy::BoundsCheck, Strategy::BoundsCheckSegue];

struct Probe {
    result: Result<Option<u64>, RuntimeError>,
    fault: Option<SandboxFault>,
    poisoned: bool,
    heap_word0: u32,
    /// The slot's heap base — the frame fault addresses are reported in.
    heap: u64,
}

fn probe(src: &str, export: &str, arg: u64, strategy: Strategy, colorguard: bool) -> Probe {
    let m = segue_colorguard::wasm::wat::parse(src).unwrap();
    let cm = Arc::new(compile(&m, &CompilerConfig::for_strategy(strategy)).unwrap());
    let mut rt = Runtime::new(RuntimeConfig::small_test(colorguard)).unwrap();
    let id = rt.instantiate(cm).unwrap();
    let result = rt.invoke(id, export, &[arg]).map(|o| o.result);
    let mut w0 = [0u8; 4];
    rt.read_heap(id, 0, &mut w0).unwrap();
    Probe {
        result,
        fault: rt.last_fault(id).cloned(),
        poisoned: rt.is_poisoned(id).unwrap(),
        heap_word0: u32::from_le_bytes(w0),
        heap: rt.heap_base(id).unwrap(),
    }
}

/// The address-classified faults: every OOB shape, under every guard-based
/// strategy, with and without ColorGuard striping.
#[test]
fn guard_based_strategies_classify_every_oob_shape() {
    for colorguard in [false, true] {
        for strategy in GUARD_BASED {
            let ctx = |shape: &str| format!("{strategy} cg={colorguard} {shape}");

            // One byte past the memory limit: the slot's own guard page.
            let p = probe(POKE, "poke", PAGE, strategy, colorguard);
            assert_eq!(
                p.fault,
                Some(SandboxFault::GuardHit { addr: p.heap + PAGE }),
                "{}",
                ctx("near")
            );

            // A page further: past the guard under ColorGuard's dense
            // striping, where the *neighbour stripe's* protection key — not
            // the guard — must contain the access.
            let p = probe(POKE, "poke", 2 * PAGE, strategy, colorguard);
            let far = p.heap + 2 * PAGE;
            if colorguard {
                assert_eq!(
                    p.fault,
                    Some(SandboxFault::ColorFault { addr: far, key: 2 }),
                    "{}",
                    ctx("far: MPK must catch the cross-stripe access")
                );
            } else {
                assert_eq!(p.fault, Some(SandboxFault::GuardHit { addr: far }), "{}", ctx("far"));
            }

            // Wrapped negative index: ~4 GiB above the heap, unmapped.
            let neg = (-4i32) as u32 as u64;
            let p = probe(POKE, "poke", neg, strategy, colorguard);
            assert_eq!(
                p.fault,
                Some(SandboxFault::GuardHit { addr: p.heap + neg }),
                "{}",
                ctx("neg")
            );

            // Straddling load: base in bounds, tail in the guard. Hardware
            // faults per page, so this must trap even though byte 0 is fine.
            let p = probe(PEEK, "peek", PAGE - 2, strategy, colorguard);
            assert_eq!(
                p.fault,
                Some(SandboxFault::GuardHit { addr: p.heap + PAGE }),
                "{}",
                ctx("straddle")
            );

            // Stack overflow: caught by the prologue check as a guest trap.
            let p = probe(RECURSE, "inf", 0, strategy, colorguard);
            assert!(
                matches!(p.fault, Some(SandboxFault::GuestTrap(_))),
                "{}: {:?}",
                ctx("stack"),
                p.fault
            );
        }
    }
}

/// Bounds-checked strategies reject every shape *before* the access is
/// issued, so each one surfaces as a guest trap — including the straddle,
/// which the explicit width check catches.
#[test]
fn bounds_based_strategies_trap_every_oob_shape_as_guest_traps() {
    for colorguard in [false, true] {
        for strategy in BOUNDS_BASED {
            for (shape, src, export, arg) in [
                ("near", POKE, "poke", PAGE),
                ("far", POKE, "poke", 2 * PAGE),
                ("neg", POKE, "poke", (-4i32) as u32 as u64),
                ("straddle", PEEK, "peek", PAGE - 2),
                ("stack", RECURSE, "inf", 0),
            ] {
                let p = probe(src, export, arg, strategy, colorguard);
                assert!(
                    matches!(p.fault, Some(SandboxFault::GuestTrap(_))),
                    "{strategy} cg={colorguard} {shape}: {:?}",
                    p.fault
                );
                assert!(p.result.is_err(), "{strategy} cg={colorguard} {shape}");
            }
        }
    }
}

/// Every trapping probe must leave the instance poisoned (awaiting
/// recycle), and a poisoned instance must refuse further invocations.
#[test]
fn every_fault_poisons_the_instance() {
    for strategy in [Strategy::GuardRegion, Strategy::Segue, Strategy::BoundsCheck] {
        for colorguard in [false, true] {
            let p = probe(POKE, "poke", 2 * PAGE, strategy, colorguard);
            assert!(p.result.is_err() && p.poisoned, "{strategy} cg={colorguard}");
        }
    }
    // ...and a clean run must not poison.
    let p = probe(POKE, "poke", 100, Strategy::Segue, true);
    assert_eq!(p.result.as_ref().ok(), Some(&Some(7)));
    assert!(!p.poisoned);
}

/// The post-mortem path: after a fault, [`Runtime::fault_report`] must name
/// the faulting instance, its slot and MPK color, and end with the flight
/// recorder's recent events for that sandbox — including the trap itself,
/// stamped with the faulting address.
#[test]
fn fault_report_names_the_slot_color_and_trap() {
    let m = segue_colorguard::wasm::wat::parse(POKE).unwrap();
    let cm = Arc::new(compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap());
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
    let id = rt.instantiate(cm).unwrap();
    assert!(rt.fault_report(id).is_none(), "no report before any fault");

    let heap = rt.heap_base(id).unwrap();
    let far = heap + 2 * PAGE;
    assert!(rt.invoke(id, "poke", &[2 * PAGE]).is_err(), "cross-stripe store must fault");

    let report = rt.fault_report(id).expect("a faulted instance has a post-mortem");
    assert!(report.starts_with("fault: "), "{report}");
    assert!(report.contains(&format!("instance: {}", id.raw())), "{report}");
    // Slot and color are real numbers, not placeholders.
    let field = |name: &str| -> u64 {
        let tail = &report[report.find(name).unwrap_or_else(|| panic!("{name} in {report}"))
            + name.len()..];
        tail.split_whitespace().next().and_then(|w| w.parse().ok()).expect(name)
    };
    let slot = field("slot: ");
    let color = field("color: ");
    assert!(color > 0, "MPK color 0 is the host's; a sandbox never runs there");
    assert!(slot < 64, "slot index within the small_test pool");
    // The dump ends with this sandbox's recent events: the enter and the
    // trap, the latter stamped with the faulting address.
    assert!(report.contains(&format!("sandbox={} kind=enter", id.raw())), "{report}");
    assert!(
        report.contains(&format!("sandbox={} kind=trap arg={far:#x}", id.raw())),
        "trap event must carry the faulting address {far:#x}: {report}"
    );
}

/// Masking's documented divergence: the out-of-bounds store *wraps* back
/// into the sandbox instead of trapping. Containment holds (nothing outside
/// the slot is touched) but the guest's own heap is silently corrupted —
/// the corrupt-not-trap trade-off of footnote 1.
#[test]
fn masking_corrupts_in_sandbox_instead_of_trapping() {
    for colorguard in [false, true] {
        // 128 KiB store into a 64 KiB memory: wraps to offset 0.
        let p = probe(POKE, "poke", 2 * PAGE, Strategy::Masking, colorguard);
        assert_eq!(p.result.as_ref().ok(), Some(&Some(7)), "cg={colorguard}: no trap");
        assert!(p.fault.is_none(), "cg={colorguard}: no fault recorded");
        assert!(!p.poisoned, "cg={colorguard}: instance stays live");
        assert_eq!(p.heap_word0, 1, "cg={colorguard}: the store wrapped to offset 0");

        // The same input faults under a guard-based strategy: the divergence
        // is Masking-specific, not an artifact of the probe.
        let g = probe(POKE, "poke", 2 * PAGE, Strategy::Segue, colorguard);
        assert!(g.result.is_err() && g.heap_word0 == 0, "cg={colorguard}");
    }
}
