//! Cycle-attribution invariants: every emitted instruction carries a
//! `Provenance` tag, the emulator buckets modeled cycles by that tag, and
//! the buckets sum *exactly* to the total — the DESIGN.md §14 contract.

use sfi_core::harness::execute_export;
use sfi_core::{compile, CompilerConfig, Strategy};
use sfi_x86::{Inst, Provenance};

const STRATEGIES: [Strategy; 7] = [
    Strategy::Native,
    Strategy::GuardRegion,
    Strategy::Segue,
    Strategy::SegueLoads,
    Strategy::BoundsCheck,
    Strategy::BoundsCheckSegue,
    Strategy::Masking,
];

fn workload() -> sfi_wasm::Module {
    sfi_workloads::dhrystone().module()
}

#[test]
fn bucket_sums_equal_total_cycles_exactly() {
    let module = workload();
    for strategy in STRATEGIES {
        let base = CompilerConfig::for_strategy(strategy);
        for config in [base.clone(), base.clone().optimized()] {
            let cm = compile(&module, &config).expect("compile");
            let out = execute_export(&cm, "run", &[]).expect("run");
            let s = out.stats;
            assert!(s.cycles > 0.0, "{strategy}: no cycles modeled");
            // Bit-for-bit, not approximate: the emulator finalizes the
            // total from the buckets.
            assert_eq!(
                s.attributed_cycles(),
                s.cycles,
                "{strategy} ({}): bucket sum diverges from total",
                config.opt_level.name()
            );
        }
    }
}

#[test]
fn native_executes_no_sfi_overhead_buckets() {
    let module = workload();
    let cm = compile(&module, &CompilerConfig::for_strategy(Strategy::Native)).expect("compile");
    let out = execute_export(&cm, "run", &[]).expect("run");
    for prov in [Provenance::BoundsGuard, Provenance::SegueAddressing, Provenance::Truncation] {
        assert_eq!(
            out.stats.prov_cycles[prov.index()],
            0.0,
            "Native executed {} cycles",
            prov.name()
        );
    }
}

#[test]
fn guard_strategies_pay_their_own_buckets() {
    let module = workload();

    let bc = compile(&module, &CompilerConfig::for_strategy(Strategy::BoundsCheck))
        .expect("compile");
    let bc_out = execute_export(&bc, "run", &[]).expect("run");
    assert!(
        bc_out.stats.prov_cycles[Provenance::BoundsGuard.index()] > 0.0,
        "BoundsCheck executed no guard cycles"
    );

    // GuardRegion must materialize complex address shapes with a `lea`
    // that Segue folds into the gs-relative access: on an indexing-heavy
    // kernel its addressing bucket is nonzero and dominates Segue's.
    // Dhrystone's shapes are all trivial, so scan polybench for a kernel
    // that actually exercises the materialization path.
    let mut found = false;
    for w in sfi_workloads::polybench() {
        let module = w.module();
        let gr = compile(&module, &CompilerConfig::for_strategy(Strategy::GuardRegion))
            .expect("compile");
        let gr_out = execute_export(&gr, "run", &[]).expect("run");
        let gr_addr = gr_out.stats.prov_cycles[Provenance::SegueAddressing.index()];
        if gr_addr == 0.0 {
            continue;
        }
        let sg = compile(&module, &CompilerConfig::for_strategy(Strategy::Segue))
            .expect("compile");
        let sg_out = execute_export(&sg, "run", &[]).expect("run");
        let sg_addr = sg_out.stats.prov_cycles[Provenance::SegueAddressing.index()];
        assert!(
            gr_addr >= sg_addr,
            "{}: Segue addressing bucket ({sg_addr}) exceeds GuardRegion's ({gr_addr})",
            w.name
        );
        found = true;
        break;
    }
    assert!(found, "no polybench kernel executed GuardRegion addressing cycles");
}

/// Speculation hardening pays into its own bucket under every protected
/// strategy, the exact-sum pin survives it, and unhardened builds never
/// charge the `SpecMitigation` bucket.
#[test]
fn spec_mitigation_buckets_pin_exact_sums() {
    use sfi_core::MitigationLevel;
    let module = workload();
    for strategy in STRATEGIES {
        if strategy == Strategy::Native {
            continue; // no sandbox: mitigation levels are not part of its matrix
        }
        for level in MitigationLevel::ALL {
            let config = CompilerConfig::for_strategy(strategy).mitigated(level);
            let cm = compile(&module, &config).expect("compile");
            let out = execute_export(&cm, "run", &[]).expect("run");
            let s = out.stats;
            assert_eq!(
                s.attributed_cycles(),
                s.cycles,
                "{strategy}/{level}: bucket sum diverges from total"
            );
            let spec = s.prov_cycles[Provenance::SpecMitigation.index()];
            match level {
                MitigationLevel::None => {
                    assert_eq!(spec, 0.0, "{strategy}: unmitigated build charged SpecMitigation");
                }
                // Lfence and IndexMask insert on every compiled function;
                // SLH only where trap-bound checks exist, so it may be
                // legitimately zero for strategies without bounds checks.
                MitigationLevel::Lfence | MitigationLevel::IndexMask => {
                    assert!(spec > 0.0, "{strategy}/{level}: hardened build paid no mitigation cycles");
                }
                MitigationLevel::Slh => {
                    if strategy.bounds_checks() {
                        assert!(spec > 0.0, "{strategy}/slh: bounds checks left unhardened");
                    }
                }
            }
        }
    }
}

#[test]
fn opt_tier_nop_slots_are_retagged() {
    let module = workload();
    let config = CompilerConfig::for_strategy(Strategy::Segue).optimized();
    let cm = compile(&module, &config).expect("compile");
    let prog = cm.image.program();
    let mut nops = 0usize;
    for (i, inst) in prog.insts().iter().enumerate() {
        if matches!(inst, Inst::Nop) {
            nops += 1;
            assert_eq!(
                prog.prov_at(i),
                Provenance::OptInserted,
                "nop slot {i} kept its pre-rewrite tag"
            );
        }
    }
    assert!(nops > 0, "optimizing tier left no nop slots on this workload");
}
