//! The DESIGN.md §16 speculation contract, end to end: known-leaky
//! gadgets are flagged under unmitigated sandboxes (true positives),
//! their hardened twins are not (true negatives), every declared-safe
//! strategy × mitigation cell is leak-free across the corpus and the
//! genprog gadget mode, and transient execution never perturbs
//! architectural state.

use sfi_core::harness::{
    execute_export, execute_speculative, spec_config_for, spec_config_with_secret,
    speculative_check, SpecSetupError,
};
use sfi_core::{compile, CompilerConfig, MitigationLevel, Strategy};
use sfi_workloads::{gadgets, genprog};

fn compile_gadget(wat: &str, strategy: Strategy, level: MitigationLevel) -> sfi_core::CompiledModule {
    let m = sfi_wasm::wat::parse(wat).expect("gadget parses");
    sfi_wasm::validate(&m).expect("gadget validates");
    compile(&m, &CompilerConfig::for_strategy(strategy).mitigated(level)).expect("compiles")
}

fn leaks(cm: &sfi_core::CompiledModule) -> u64 {
    let spec = spec_config_for(cm).expect("secret placement");
    execute_speculative(cm, "run", &[], spec).expect("runs").stats.spec_leaks
}

/// True positive: the bounds-check-bypass gadget leaks transiently under
/// unmitigated Segue (no bounds checks, no masks — nothing stops the
/// wrong-path secret read).
#[test]
fn known_leaky_gadget_is_flagged() {
    let wat = gadgets::bounds_check_bypass(64, gadgets::SECRET_INDEX, 64);
    let cm = compile_gadget(&wat, Strategy::Segue, MitigationLevel::None);
    assert!(leaks(&cm) > 0, "unmitigated Segue must leak on the bypass gadget");
}

/// True negative: the *same* gadget compiled with lfence insertion is not
/// flagged — every speculation window dies on its first µop.
#[test]
fn lfence_twin_is_not_flagged() {
    let wat = gadgets::bounds_check_bypass(64, gadgets::SECRET_INDEX, 64);
    let cm = compile_gadget(&wat, Strategy::Segue, MitigationLevel::Lfence);
    assert_eq!(leaks(&cm), 0, "lfence-hardened twin must not be flagged");
}

/// At least two distinct leak classes reproduce under unmitigated Segue:
/// bounds-check bypass (trained branch) and transient type confusion
/// (stale BTB on an indirect call).
#[test]
fn two_leak_classes_reproduce_under_unmitigated_segue() {
    let bypass = gadgets::bounds_check_bypass(64, gadgets::SECRET_INDEX, 64);
    let confusion = gadgets::type_confusion(32, gadgets::SECRET_INDEX, 64);
    for (name, wat) in [("bounds-check bypass", bypass), ("type confusion", confusion)] {
        let cm = compile_gadget(&wat, Strategy::Segue, MitigationLevel::None);
        assert!(leaks(&cm) > 0, "{name} must leak under unmitigated Segue");
    }
}

/// The full declared-safe sweep over the fixed corpus: every cell where
/// `MitigationLevel::declared_safe` holds reports zero leaks (asserted
/// inside `speculative_check`), and the true-negative probe reports zero
/// leaks in *every* cell.
#[test]
fn corpus_sweeps_clean_at_declared_safe_cells() {
    for w in gadgets::gadgets() {
        let module = w.module();
        let cells = speculative_check(&module, "run", &[]);
        if w.name == "probe_benign" {
            for (strategy, level, leaked) in cells {
                assert_eq!(leaked, 0, "benign probe flagged under {strategy}/{level}");
            }
        }
    }
}

/// Genprog gadget mode: a sample of seeds sweeps clean at declared-safe
/// cells (the full ≥500-seed sweep runs in `figX_spectre --check`).
#[test]
fn genprog_gadgets_sweep_clean() {
    for seed in 0..24 {
        let module = genprog::gadget(seed);
        speculative_check(&module, "run", &[]);
    }
}

/// Rollback is byte-exact: for 256 random gadget seeds, running with the
/// speculative window enabled produces the same architectural result and
/// the same final heap as running without it — transient execution
/// touches the cache model, never architectural state.
#[test]
fn rollback_restores_architectural_state_for_random_gadgets() {
    for seed in 0..256 {
        let module = genprog::gadget(seed);
        for strategy in [Strategy::Segue, Strategy::GuardRegion, Strategy::BoundsCheck] {
            let cm = compile(&module, &CompilerConfig::for_strategy(strategy)).expect("compiles");
            let off = execute_export(&cm, "run", &[]).expect("plain run");
            let spec = spec_config_for(&cm).expect("secret placement");
            let on = execute_speculative(&cm, "run", &[], spec).expect("speculative run");
            assert_eq!(off.result, on.result, "seed {seed} under {strategy}: result diverged");
            assert_eq!(off.heap, on.heap, "seed {seed} under {strategy}: heap diverged");
            assert_eq!(
                off.stats.insts, on.stats.insts,
                "seed {seed} under {strategy}: retired instruction count diverged"
            );
        }
    }
}

/// Degenerate speculation configs are rejected with errors, not panics:
/// a zero-size window, an empty secret region, and a secret region
/// overlapping architecturally mapped memory.
#[test]
fn degenerate_configs_are_rejected() {
    let wat = gadgets::contention_probe(8);
    let m = sfi_wasm::wat::parse(&wat).unwrap();
    let cm = compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap();

    assert!(matches!(
        spec_config_with_secret(&cm, 0, 0x2000_0000, 0x2000_1000),
        Err(SpecSetupError::Config(_))
    ));
    assert!(matches!(
        spec_config_with_secret(&cm, 32, 0x2000_1000, 0x2000_1000),
        Err(SpecSetupError::Config(_))
    ));
    // Taint tracking on the (architecturally reachable) heap itself is a
    // config error: the program may legitimately touch that region.
    let heap_base = cm.config.layout.heap_base;
    assert!(matches!(
        spec_config_with_secret(&cm, 32, heap_base, heap_base + 0x1000),
        Err(SpecSetupError::SecretOverlapsSandbox { .. })
    ));
    // And a valid far placement is accepted.
    assert!(spec_config_with_secret(&cm, 32, heap_base + 0x1000_0000, heap_base + 0x1000_1000).is_ok());
}
