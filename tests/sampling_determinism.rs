//! Deterministic sampling regression (DESIGN.md §8): the 1-in-N sampled
//! counter must be a pure function of `(seed, series identity, rate)`, its
//! rate must be declared in the exported labels, and the un-biased estimate
//! `value × rate` must sit within the documented error bound (strictly less
//! than one rate's worth of trials) for ANY trial sequence — checked with a
//! small-N property test over random batch splits.

use proptest::prelude::*;
use segue_colorguard::telemetry::{prometheus_text, Registry};

/// Same seed and rate → byte-identical exported series, run after run.
#[test]
fn same_seed_and_rate_reproduce_the_series_exactly() {
    let run = || {
        let mut r = Registry::new();
        let id = r.sampled_counter("sfi_sampled_events_total", &[("kind", "dtlb")], 16, 0xC0FFEE);
        for batch in [13u64, 1, 700, 0, 86, 4_000] {
            r.sample_trials(id, batch);
        }
        prometheus_text(&r)
    };
    let a = run();
    assert_eq!(a, run(), "sampling must be seed-deterministic");
    // The rate is recorded in the series labels.
    assert!(
        a.contains("sfi_sampled_events_total{kind=\"dtlb\",sample_rate=\"16\"}"),
        "rate label missing:\n{a}"
    );
}

/// Different seeds may select different trials (the phase moves), but the
/// estimate stays within the bound for every seed.
#[test]
fn phase_depends_on_seed_but_bound_holds_for_all() {
    let trials = 10_000u64;
    let rate = 64u64;
    let mut values = std::collections::BTreeSet::new();
    for seed in 0..32u64 {
        let mut r = Registry::new();
        let id = r.sampled_counter("sfi_s_total", &[], rate, seed);
        r.sample_trials(id, trials);
        let v = r.sampler_value(id);
        assert!(
            (v * rate).abs_diff(trials) < rate,
            "seed {seed}: estimate {} vs {trials}",
            v * rate
        );
        values.insert(v * rate);
    }
    // 10_000 = 156×64 + 16: phases 0..=15 select 157 trials, the rest 156,
    // so both estimates must occur across 32 seeds.
    assert!(values.len() > 1, "32 seeds all chose the same phase class");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// For ANY rate, seed and batch split, the sampled value is identical
    /// to feeding the trials one at a time (batching is invisible) and the
    /// documented error bound holds: |value × rate − trials| < rate.
    #[test]
    fn sampled_estimate_is_batch_invariant_and_bounded(
        rate in 1u64..100,
        seed in any::<u64>(),
        batches in prop::collection::vec(0u64..2_000, 1..12),
    ) {
        let total: u64 = batches.iter().sum();

        let mut batched = Registry::new();
        let b = batched.sampled_counter("sfi_p_total", &[], rate, seed);
        for &n in &batches {
            batched.sample_trials(b, n);
        }

        let mut single = Registry::new();
        let s = single.sampled_counter("sfi_p_total", &[], rate, seed);
        for _ in 0..total {
            single.sample_inc(s);
        }

        prop_assert_eq!(batched.sampler_value(b), single.sampler_value(s));
        prop_assert_eq!(batched.sampler_trials(b), total);
        let estimate = batched.sampler_value(b) * rate;
        prop_assert!(
            estimate.abs_diff(total) < rate,
            "estimate {} for {} trials at rate {}", estimate, total, rate
        );
    }
}
