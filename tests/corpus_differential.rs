//! Cross-crate integration: every benchmark-corpus workload, compiled under
//! every protection strategy, must agree with the reference interpreter.
//!
//! (The full corpus at full iteration counts is benchmark-sized; these tests
//! run a representative fast subset in debug time. The figure binaries
//! exercise the rest under `--release`.)

use segue_colorguard::core::harness::execute_export;
use segue_colorguard::core::{compile, Strategy};
use segue_colorguard::runtime::Engine;
use segue_colorguard::wasm::interp::Interpreter;

/// The five protection strategies of the cross-strategy sweep.
const PROTECTED: [Strategy; 5] = [
    Strategy::GuardRegion,
    Strategy::Segue,
    Strategy::SegueLoads,
    Strategy::BoundsCheck,
    Strategy::BoundsCheckSegue,
];

/// Workloads small enough to interpret in a debug test run.
fn fast_subset() -> Vec<segue_colorguard::workloads::Workload> {
    let sg = segue_colorguard::workloads::sightglass();
    let names = ["fib2", "nestedloop", "matrix", "strchr", "memmove"];
    sg.into_iter().filter(|w| names.contains(&w.name)).collect()
}

#[test]
fn corpus_compiled_matches_interpreter() {
    for w in fast_subset() {
        let module = w.module();
        let mut interp = Interpreter::new(&module).expect("instantiates");
        let expected = interp
            .invoke_export("run", &[])
            .expect("interprets")
            .expect("corpus returns a checksum");

        for strategy in [
            Strategy::GuardRegion,
            Strategy::Segue,
            Strategy::SegueLoads,
            Strategy::BoundsCheck,
            Strategy::BoundsCheckSegue,
        ] {
            let cfg = sfi_bench_config(strategy, module.mem_min_pages);
            let cm = compile(&module, &cfg).expect("compiles");
            let out = execute_export(&cm, "run", &[]).expect("runs");
            assert_eq!(
                out.result.map(|r| r & 0xFFFF_FFFF),
                Some(expected),
                "{} diverged under {strategy}",
                w.name
            );
            // Heap contents must match too.
            assert_eq!(
                interp.memory[..1024],
                out.heap[..1024],
                "{} heap prefix diverged under {strategy}",
                w.name
            );
        }
    }
}

#[test]
fn vectorizer_never_changes_results() {
    for w in fast_subset() {
        let module = w.module();
        for strategy in [Strategy::GuardRegion, Strategy::Segue, Strategy::SegueLoads] {
            let plain = {
                let cfg = sfi_bench_config(strategy, module.mem_min_pages);
                let cm = compile(&module, &cfg).expect("compiles");
                execute_export(&cm, "run", &[]).expect("runs").result
            };
            let vectorized = {
                let mut cfg = sfi_bench_config(strategy, module.mem_min_pages);
                cfg.vectorize = true;
                let cm = compile(&module, &cfg).expect("compiles");
                execute_export(&cm, "run", &[]).expect("runs").result
            };
            assert_eq!(plain, vectorized, "{} under {strategy}", w.name);
        }
    }
}

/// The exhaustive sweep: every workload in the corpus, under all five
/// protection strategies × vectorizer on/off, bit-identical (return value
/// *and* memory) to the reference interpreter — including when the compiled
/// code comes out of the engine's cache instead of a fresh compile.
///
/// Benchmark-sized, so debug runs skip it; `scripts/ci.sh` runs it in
/// release with `--include-ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore = "full corpus is benchmark-sized; ci.sh runs it in release")]
fn full_corpus_all_strategies_and_vectorizer_match_interpreter() {
    let mut engine = Engine::new(1024);
    let mut checked = 0u32;
    for w in segue_colorguard::workloads::all() {
        let module = w.module();
        let mut interp = Interpreter::new(&module).expect("instantiates");
        let expected = interp
            .invoke_export("run", &[])
            .expect("interprets")
            .expect("corpus returns a checksum");

        for strategy in PROTECTED {
            for vectorize in [false, true] {
                for optimized in [false, true] {
                    let mut cfg = sfi_bench_config(strategy, module.mem_min_pages);
                    cfg.vectorize = vectorize;
                    if optimized {
                        cfg = cfg.optimized();
                    }
                    // Through the cache: the first load compiles and caches,
                    // and must be observationally identical to a fresh
                    // compile.
                    let cached = engine.load(&module, &cfg, 0).expect("compiles");
                    let out = execute_export(&cached, "run", &[]).expect("runs");
                    assert_eq!(
                        out.result.map(|r| r & 0xFFFF_FFFF),
                        Some(expected),
                        "{} diverged under {strategy} (vectorize={vectorize}, optimized={optimized})",
                        w.name
                    );
                    let n = interp.memory.len().min(out.heap.len());
                    assert_eq!(
                        interp.memory[..n],
                        out.heap[..n],
                        "{} memory diverged under {strategy} (vectorize={vectorize}, optimized={optimized})",
                        w.name
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 500, "expected the full corpus sweep, got {checked} combinations");
    assert_eq!(engine.cache().stats().misses, u64::from(checked), "every combination is distinct");
}

/// A cache hit must be observationally identical to a fresh compile: same
/// machine code object (shared `Arc`), same result, same memory.
#[test]
fn cache_hit_is_observationally_identical_to_fresh_compile() {
    let mut engine = Engine::new(64);
    for w in fast_subset() {
        let module = w.module();
        for strategy in [Strategy::Segue, Strategy::BoundsCheck] {
            let cfg = sfi_bench_config(strategy, module.mem_min_pages);

            let first = engine.load(&module, &cfg, 7).expect("compiles");
            let hit = engine.load(&module, &cfg, 7).expect("cache hit");
            assert!(
                std::sync::Arc::ptr_eq(&first, &hit),
                "{} under {strategy}: second load must be a cache hit",
                w.name
            );

            let fresh = compile(&module, &cfg).expect("compiles");
            let from_cache = execute_export(&hit, "run", &[]).expect("runs");
            let from_fresh = execute_export(&fresh, "run", &[]).expect("runs");
            assert_eq!(from_cache.result, from_fresh.result, "{} under {strategy}", w.name);
            assert_eq!(from_cache.heap, from_fresh.heap, "{} heap under {strategy}", w.name);
        }
    }
    let s = engine.cache().stats();
    assert_eq!(s.hits, 10, "5 workloads x 2 strategies, one hit each");
}

/// The optimizing tier must be interpreter-equal wherever the baseline is:
/// a fast corpus subset swept through every strategy at both tiers (the
/// full corpus runs in `figX_tiers --check` under release).
#[test]
fn optimized_tier_matches_interpreter_on_corpus_subset() {
    for w in fast_subset() {
        let module = w.module();
        let mut interp = Interpreter::new(&module).expect("instantiates");
        let expected = interp
            .invoke_export("run", &[])
            .expect("interprets")
            .expect("corpus returns a checksum");

        for strategy in PROTECTED {
            let cfg = sfi_bench_config(strategy, module.mem_min_pages).optimized();
            let cm = compile(&module, &cfg).expect("compiles");
            let out = execute_export(&cm, "run", &[]).expect("runs");
            assert_eq!(
                out.result.map(|r| r & 0xFFFF_FFFF),
                Some(expected),
                "{} diverged under {strategy} (optimized tier)",
                w.name
            );
            let n = interp.memory.len().min(out.heap.len());
            assert_eq!(
                interp.memory[..n],
                out.heap[..n],
                "{} heap diverged under {strategy} (optimized tier)",
                w.name
            );
        }
    }
}

/// Seeded random programs, interpreter vs baseline vs optimized across the
/// full strategy sweep. On divergence the failing program is shrunk to a
/// locally minimal counterexample before the panic, so the CI log carries
/// a reproducible seed *and* a program small enough to read.
#[test]
fn generated_programs_are_differentially_equal_across_tiers() {
    use segue_colorguard::workloads::genprog;

    let diverges = |p: &genprog::RandomProgram| {
        let m = p.module();
        std::panic::catch_unwind(|| {
            segue_colorguard::core::harness::differential_check(&m, "run", &[]);
        })
        .is_err()
    };

    for seed in 0..48u64 {
        let program = genprog::generate(seed);
        if diverges(&program) {
            // Silence the panic-per-candidate noise while shrinking.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let minimal = program.shrink(diverges);
            std::panic::set_hook(hook);
            let module = minimal.module();
            panic!(
                "seed {seed} diverges between interpreter and compiled tiers; \
                 minimal counterexample ({} stmts): {:?}",
                minimal.size(),
                module.defined_func(0).map(|f| &f.body),
            );
        }
    }
}

#[test]
fn lfi_rewriting_preserves_results() {
    use segue_colorguard::lfi::{execute_rewritten, LfiConfig};
    for w in fast_subset() {
        let module = w.native_module();
        let mut cfg = sfi_bench_config(Strategy::Native, module.mem_min_pages);
        cfg.lfi_reserved_regs = true;
        cfg.stack_check = false;
        cfg.layout.heap_base = 0;
        relocate_regions_above_heap(&mut cfg);
        let cm = compile(&module, &cfg).expect("compiles");
        let native = execute_export(&cm, "run", &[]).expect("runs").result;
        let (base, _) =
            execute_rewritten(&cm, &LfiConfig { sandbox_base: 0, ..LfiConfig::default() }, "run", &[]);
        let (segue, _) =
            execute_rewritten(&cm, &LfiConfig { sandbox_base: 0, ..LfiConfig::with_segue() }, "run", &[]);
        assert_eq!(Some(base), native.map(|r| r & 0xFFFF_FFFF), "{}", w.name);
        assert_eq!(base, segue, "{}", w.name);
    }
}

/// Mirrors `sfi_bench::config_for` without depending on the bench crate
/// (which is dev-only plumbing).
fn sfi_bench_config(
    strategy: Strategy,
    mem_pages: u32,
) -> segue_colorguard::core::CompilerConfig {
    let mem_size = (u64::from(mem_pages) * 65536).next_power_of_two();
    let mut cfg = segue_colorguard::core::CompilerConfig::for_strategy(strategy);
    cfg.layout.mem_size = mem_size;
    if strategy == Strategy::Native {
        cfg.layout.heap_base = 0;
        cfg.stack_check = false;
        relocate_regions_above_heap(&mut cfg);
    }
    cfg
}

fn relocate_regions_above_heap(cfg: &mut segue_colorguard::core::CompilerConfig) {
    let m = cfg.layout.mem_size as u32;
    cfg.regions.header_base = 0x14_0000 + m;
    cfg.regions.globals_base = 0x14_1000 + m;
    cfg.regions.table_base = 0x15_0000 + m;
    cfg.regions.stack_limit = 0x16_0000 + m;
    cfg.regions.stack_top = 0x1C_0000 + m;
}
