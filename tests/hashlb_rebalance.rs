//! Rebalancing churn property for the consistent-hash ring (the balancer
//! the fleet's scale events lean on): when a member retires or spawns,
//! the ONLY keys that may move are the ones owned by the changed member.
//! Every key routed to a surviving member keeps its route byte-for-byte —
//! that is what bounds reshuffle churn at a scale event to ~1/n of the
//! keyspace instead of a full reshuffle.

use proptest::prelude::*;
use segue_colorguard::faas::hashlb::HashRing;

fn members(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("member-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Retiring one member (scale-in, or a fault-budget eviction) moves
    /// only the keys that member owned: every other key's route is
    /// unchanged.
    #[test]
    fn retiring_a_member_moves_only_its_own_keys(
        n in 3usize..8,
        vnodes in 8u32..96,
        victim_pick in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let names = members(n);
        let victim = names[(victim_pick % n as u64) as usize].clone();
        let survivors: Vec<String> =
            names.iter().filter(|m| **m != victim).cloned().collect();
        let before = HashRing::new(names.clone(), vnodes);
        let after = HashRing::new(survivors, vnodes);
        let mut moved = 0u32;
        let total = 400u32;
        for k in 0..total {
            let key = format!("/req/{salt:x}/{k}");
            let owner = before.route(&key);
            if owner == victim {
                moved += 1;
                prop_assert!(
                    after.route(&key) != victim,
                    "key {key} still routed to the retired member"
                );
            } else {
                prop_assert_eq!(
                    after.route(&key), owner,
                    "key {} moved although its owner {} survived", key, owner
                );
            }
        }
        // The churn bound follows: only the victim's keys moved, and with a
        // roughly even distribution that is ~1/n of the keyspace.
        prop_assert!(
            u64::from(moved) <= 3 * u64::from(total) / n as u64,
            "churn {}/{} exceeds ~1/{} of the keyspace", moved, total, n
        );
    }

    /// Spawning a member (scale-out) moves keys only TO the new member:
    /// no key is reshuffled between pre-existing members.
    #[test]
    fn spawning_a_member_moves_keys_only_to_the_new_member(
        n in 2usize..7,
        vnodes in 8u32..96,
        salt in any::<u64>(),
    ) {
        let names = members(n);
        let grown = members(n + 1);
        let newcomer = grown.last().expect("nonempty").clone();
        let before = HashRing::new(names, vnodes);
        let after = HashRing::new(grown, vnodes);
        for k in 0..400u32 {
            let key = format!("/req/{salt:x}/{k}");
            let old = before.route(&key);
            let new = after.route(&key);
            if new != old {
                prop_assert_eq!(
                    new, newcomer.as_str(),
                    "key {} reshuffled between surviving members ({} -> {})", key, old, new
                );
            }
        }
    }
}
