//! Determinism regression for the sharded multi-core engine: the entire
//! simulation — scheduling, stealing, cache warm-up, TLB accounting — is a
//! pure function of its seed. Same seed, same everything; this is what
//! makes `BENCH_multicore.json` reviewable in diffs.

use segue_colorguard::faas::{
    multicore_sweep_json, simulate_multicore, CacheMode, FaasWorkload, MultiCoreConfig, ScalingMode,
};

const SEED: u64 = 0xD15EA5E;

fn rig(cores: u32, seed: u64) -> MultiCoreConfig {
    let mut cfg = MultiCoreConfig::paper_rig(
        FaasWorkload::HashLoadBalance,
        ScalingMode::ColorGuard,
        CacheMode::Warm,
        cores,
    );
    cfg.seed = seed;
    cfg.duration_ms = 150;
    cfg
}

/// Same seed → the full report (throughput, latency percentiles, and every
/// per-core counter: steals, context switches, dTLB misses, spawn split)
/// is identical at every core count.
#[test]
fn same_seed_reproduces_every_counter_at_every_core_count() {
    for cores in [1, 4, 8] {
        let a = simulate_multicore(&rig(cores, SEED));
        let b = simulate_multicore(&rig(cores, SEED));
        assert_eq!(a, b, "{cores}-core run must be a pure function of the seed");
        assert_eq!(a.per_core.len(), cores as usize);
        for (i, (ca, cb)) in a.per_core.iter().zip(&b.per_core).enumerate() {
            assert_eq!(ca.steals, cb.steals, "core {i} steals @ {cores} cores");
            assert_eq!(ca.ctx_switches, cb.ctx_switches, "core {i} ctx switches @ {cores} cores");
            assert_eq!(ca.dtlb_misses, cb.dtlb_misses, "core {i} dTLB misses @ {cores} cores");
            assert_eq!(
                (ca.cold_spawns, ca.warm_spawns),
                (cb.cold_spawns, cb.warm_spawns),
                "core {i} spawn split @ {cores} cores"
            );
        }
        assert!(a.completed > 0, "the rig must actually complete work at {cores} cores");
    }
}

/// A different seed must actually change the schedule (the determinism test
/// is vacuous if the seed is ignored).
#[test]
fn the_seed_is_live() {
    let a = simulate_multicore(&rig(4, SEED));
    let b = simulate_multicore(&rig(4, SEED ^ 0xFF));
    assert_ne!(a, b, "different seeds must produce different schedules");
}

/// The sweep artifact itself: two same-seed renderings are byte-identical,
/// including float formatting.
#[test]
fn sweep_json_is_byte_identical_for_the_same_seed() {
    let a = multicore_sweep_json(SEED, 100, &[1, 4, 8]);
    let b = multicore_sweep_json(SEED, 100, &[1, 4, 8]);
    assert_eq!(a, b);
    assert!(a.contains("\"cores\": 8"), "sweep covers 8 cores");
}
