//! Whole-system integration: the paper's claims as executable assertions,
//! spanning compiler, pool, runtime, VM and simulation.

use std::sync::Arc;

use segue_colorguard::core::{compile, CompilerConfig, Strategy};
use segue_colorguard::pool::{compute_layout, PoolConfig};
use segue_colorguard::runtime::{Runtime, RuntimeConfig, RuntimeError};

#[test]
fn segue_reduces_spec_code_size_and_cycles() {
    // Table 2 + Figure 3 in miniature: on a memory-dense kernel Segue must
    // shrink both the binary and the modeled runtime.
    let w = &segue_colorguard::workloads::sightglass()[4]; // matrix
    assert_eq!(w.name, "matrix");
    let module = w.module();
    let mk = |s| {
        let mut c = CompilerConfig::for_strategy(s);
        c.layout.mem_size = (u64::from(module.mem_min_pages) * 65536).next_power_of_two();
        compile(&module, &c).expect("compiles")
    };
    let guard = mk(Strategy::GuardRegion);
    let segue = mk(Strategy::Segue);
    assert!(segue.code_size() < guard.code_size(), "Table 2 direction");
    let g = segue_colorguard::core::harness::execute_export(&guard, "run", &[]).expect("runs");
    let s = segue_colorguard::core::harness::execute_export(&segue, "run", &[]).expect("runs");
    assert_eq!(g.result, s.result);
    assert!(s.stats.cycles < g.stats.cycles, "Figure 3 direction");
}

#[test]
fn colorguard_scaling_is_about_15x() {
    // §6.4.2.
    let without = compute_layout(&PoolConfig::scaling_benchmark(0)).expect("layout");
    let with = compute_layout(&PoolConfig::scaling_benchmark(15)).expect("layout");
    let ratio = with.num_slots as f64 / without.num_slots as f64;
    assert!((13.0..=15.5).contains(&ratio), "scaling ratio {ratio}");
}

#[test]
fn multi_tenant_node_serves_and_isolates() {
    let app = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 1)
             (global $n (mut i32) (i32.const 0))
             (func (export "handle") (result i32)
               global.get $n i32.const 1 i32.add global.set $n
               global.get $n))"#,
    )
    .expect("parses");
    let cm = Arc::new(compile(&app, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"));
    let mut node = Runtime::new(RuntimeConfig::small_test(true)).expect("boots");
    let a = node.instantiate(Arc::clone(&cm)).expect("slot");
    let b = node.instantiate(Arc::clone(&cm)).expect("slot");
    for i in 1..=5 {
        assert_eq!(node.invoke(a, "handle", &[]).expect("runs").result, Some(i));
    }
    assert_eq!(node.invoke(b, "handle", &[]).expect("runs").result, Some(1));
    // Terminate and recycle: state resets.
    node.terminate(a).expect("recycles");
    let c = node.instantiate(cm).expect("slot reuse");
    assert_eq!(node.invoke(c, "handle", &[]).expect("runs").result, Some(1));
}

#[test]
fn cross_stripe_attack_traps_end_to_end() {
    let poke = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "handle") (param $p i32)
               local.get $p i32.const 1 i32.store))"#,
    )
    .expect("parses");
    let cm = Arc::new(compile(&poke, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"));
    let mut node = Runtime::new(RuntimeConfig::small_test(true)).expect("boots");
    let attacker = node.instantiate(Arc::clone(&cm)).expect("slot");
    let victim = node.instantiate(cm).expect("slot");
    let stride = node.pool().layout().slot_bytes;
    let r = node.invoke(attacker, "handle", &[stride]);
    assert!(matches!(r, Err(RuntimeError::Trapped(_))), "{r:?}");
    let mut probe = [0u8; 1];
    node.read_heap(victim, 0, &mut probe).expect("host view");
    assert_eq!(probe[0], 0);
}

#[test]
fn transition_costs_match_the_paper() {
    use segue_colorguard::runtime::{TransitionKind, TransitionModel};
    let tm = TransitionModel::default();
    let base = tm.ns(TransitionKind::default());
    let cg = tm.ns(TransitionKind { colorguard: true, ..TransitionKind::default() });
    assert!((base - 30.34).abs() < 1.0, "baseline {base} ns");
    assert!((cg - 51.52).abs() < 1.0, "colorguard {cg} ns");
}

#[test]
fn faas_gain_shape_holds() {
    use segue_colorguard::faas::{simulate, FaasWorkload, ScalingMode, SimConfig};
    let mut cfg = SimConfig::paper_rig(FaasWorkload::HashLoadBalance, ScalingMode::ColorGuard);
    cfg.duration_ms = 1_000;
    let cg = simulate(&cfg);
    cfg.mode = ScalingMode::MultiProcess { processes: 15 };
    let mp15 = simulate(&cfg);
    cfg.mode = ScalingMode::MultiProcess { processes: 2 };
    let mp2 = simulate(&cfg);
    let g15 = (cg.throughput_rps - mp15.throughput_rps) / mp15.throughput_rps * 100.0;
    let g2 = (cg.throughput_rps - mp2.throughput_rps) / mp2.throughput_rps * 100.0;
    assert!(g15 > g2, "gain grows with process count: {g2:.1}% → {g15:.1}%");
    assert!(g15 > 10.0, "substantial gain at 15 processes: {g15:.1}%");
    assert!(mp15.dtlb_misses > 3 * cg.dtlb_misses, "Figure 7b direction");
    assert!(mp15.context_switches > 10 * cg.context_switches, "Figure 7a direction");
}

#[test]
fn verification_finds_the_upstream_bugs() {
    use segue_colorguard::pool::{buggy, verify};
    assert!(verify::find_violation(segue_colorguard::pool::compute_layout).is_none());
    assert!(verify::find_violation(buggy::compute_layout).is_some());
}

#[test]
fn mte_observations_hold() {
    use segue_colorguard::vm::mte::TagStore;
    use segue_colorguard::vm::{AddressSpace, Prot};
    // Observation 1: tagging 64 KiB costs ~2.1 ms of user-level work.
    let us = TagStore::user_tag_cost_ns(65536) / 1000.0;
    assert!((1800.0..=2400.0).contains(&us), "{us} µs");
    // Observation 2: madvise discards MTE tags but keeps MPK keys.
    let mut space = AddressSpace::new_48bit();
    let base = space.mmap(65536, Prot::READ_WRITE).expect("mmap");
    let key = space.keys.pkey_alloc().expect("key");
    space.pkey_mprotect(base, 65536, Prot::READ_WRITE, key).expect("pkey");
    space.set_mte(base, 65536, true).expect("mte");
    space.tags.set_range(base, 65536, 0x5);
    space.madvise_dontneed(base, 65536).expect("madvise");
    assert_eq!(space.tags.tag_at(base), 0, "MTE tags discarded");
    assert_eq!(space.vma_at(base).expect("mapped").pkey, key, "MPK keys survive");
}
