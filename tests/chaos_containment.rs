//! Cross-crate containment property: chaos (vm) → quarantine (pool) →
//! poisoning (runtime).
//!
//! For ANY injected fault sequence — seeded syscall failures, spurious bus
//! faults mid-execution, deliberate guest traps, recycles through the
//! quarantine ring — every *surviving* (live, unpoisoned) instance's heap
//! and globals must be bit-identical to a fault-free reference run that
//! replays only the operations that completed on it. A fault anywhere in
//! the system may cost throughput; it must never leave a footprint in a
//! neighbouring sandbox.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use segue_colorguard::core::{compile, CompiledModule, CompilerConfig};
use segue_colorguard::runtime::{InstanceId, Runtime, RuntimeConfig, RuntimeError};
use segue_colorguard::vm::{ChaosConfig, FaultPlan};

const SLOTS: usize = 3;

/// One Wasm page of memory, one mutable global: enough observable state to
/// catch any cross-instance leak through the shared low regions or a
/// neighbouring slot.
fn module() -> Arc<CompiledModule> {
    static M: OnceLock<Arc<CompiledModule>> = OnceLock::new();
    Arc::clone(M.get_or_init(|| {
        let m = segue_colorguard::wasm::wat::parse(
            r#"(module (memory 1)
                 (global $calls (mut i32) (i32.const 0))
                 (func (export "bump") (param $p i32) (result i32)
                   global.get $calls i32.const 1 i32.add global.set $calls
                   local.get $p
                   local.get $p i32.load i32.const 1 i32.add
                   i32.store
                   local.get $p i32.load))"#,
        )
        .expect("parses");
        let strategy = segue_colorguard::core::Strategy::Segue;
        Arc::new(compile(&m, &CompilerConfig::for_strategy(strategy)).expect("compiles"))
    }))
}

#[derive(Debug, Clone)]
enum Op {
    /// In-bounds read-modify-write at a 4-byte-aligned offset.
    Bump { slot: usize, offset: u32 },
    /// Deliberate guard hit: poisons the instance.
    OobPoke { slot: usize },
    /// Tear the instance down through quarantine and start a fresh one.
    Recycle { slot: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..SLOTS, 0u32..64).prop_map(|(slot, o)| Op::Bump { slot, offset: o * 4 }),
        (0usize..SLOTS).prop_map(|slot| Op::OobPoke { slot }),
        (0usize..SLOTS).prop_map(|slot| Op::Recycle { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn surviving_instances_match_a_fault_free_reference(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        let cm = module();

        // Chaotic run: seeded transient/persistent syscall faults plus
        // spurious bus faults, on top of the scripted traps and recycles.
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        rt.set_fault_plan(Some(FaultPlan::seeded(seed, ChaosConfig {
            syscall_fault_rate: 0.04,
            persistent_prob: 0.02,
            bus_fault_rate: 0.0005,
            ..ChaosConfig::default()
        })));

        let mut ids: Vec<Option<InstanceId>> = Vec::new();
        // Per logical slot: the bump offsets that *completed* since the
        // slot's last (re)instantiation.
        let mut logs: Vec<Vec<u32>> = vec![Vec::new(); SLOTS];
        for _ in 0..SLOTS {
            ids.push(rt.instantiate(Arc::clone(&cm)).ok());
        }

        for op in ops {
            match op {
                Op::Bump { slot, offset } => {
                    let Some(id) = ids[slot] else { continue };
                    match rt.invoke(id, "bump", &[u64::from(offset)]) {
                        Ok(_) => logs[slot].push(offset),
                        // A spurious bus fault poisoned it mid-run; it is
                        // no longer a survivor.
                        Err(RuntimeError::Trapped(_)) => {}
                        Err(RuntimeError::Poisoned) => {}
                        // Injected infra fault before entry: must leave no
                        // footprint (the reference run omits this op).
                        Err(RuntimeError::Map(_)) => {}
                        Err(e) => prop_assert!(false, "unexpected error: {e:?}"),
                    }
                }
                Op::OobPoke { slot } => {
                    let Some(id) = ids[slot] else { continue };
                    let r = rt.invoke(id, "bump", &[65536]);
                    prop_assert!(r.is_err(), "OOB bump must not succeed: {r:?}");
                }
                Op::Recycle { slot } => {
                    if let Some(id) = ids[slot].take() {
                        rt.recycle(id).unwrap();
                    }
                    logs[slot].clear();
                    // Re-instantiation may itself hit an injected fault or
                    // an exhausted (quarantined/retired) pool; the logical
                    // slot then just stays dead for the rest of the case.
                    ids[slot] = rt.instantiate(Arc::clone(&cm)).ok();
                }
            }
        }

        // Fault-free reference: replay each survivor's completed ops on a
        // clean runtime. Heap and globals must match bit for bit.
        let mut reference = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        for slot in 0..SLOTS {
            let Some(id) = ids[slot] else { continue };
            if rt.is_poisoned(id) != Some(false) {
                continue; // poisoned: excluded, awaiting recycle
            }
            let rid = reference.instantiate(Arc::clone(&cm)).unwrap();
            for &off in &logs[slot] {
                reference.invoke(rid, "bump", &[u64::from(off)]).unwrap();
            }
            let (mut got, mut want) = (vec![0u8; 65536], vec![0u8; 65536]);
            rt.read_heap(id, 0, &mut got).unwrap();
            reference.read_heap(rid, 0, &mut want).unwrap();
            prop_assert!(got == want, "slot {slot}: heap diverged from fault-free reference");
            prop_assert_eq!(
                rt.global(id, 0), reference.global(rid, 0),
                "slot {slot}: globals diverged"
            );
            reference.terminate(rid).unwrap();
        }
    }
}
