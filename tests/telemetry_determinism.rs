//! Telemetry regression: the observability layer must itself be a pure
//! function of the seed. Same-seed runs export byte-identical flight
//! recorder dumps and metric snapshots (the acceptance criterion of the
//! telemetry PR), the ring buffer wraps without losing order, histogram
//! buckets sit exactly on powers of two, and Prometheus label values escape
//! per the text-format rules. Companion to `multicore_determinism.rs`,
//! which pins the *simulated* numbers — this file pins their *exports*.

use std::sync::Arc;

use segue_colorguard::core::{compile, CompilerConfig, Strategy};
use segue_colorguard::faas::{
    simulate_multicore, CacheMode, FaasWorkload, MultiCoreConfig, ScalingMode,
};
use segue_colorguard::runtime::{Runtime, RuntimeConfig};
use segue_colorguard::telemetry::{
    json_is_valid, json_snapshot, prometheus_text, CycleHistogram, FlightRecorder, Registry,
    TraceEvent, TraceKind, HISTOGRAM_BUCKETS,
};

const SEED: u64 = 0xD15EA5E;

fn rig(cores: u32) -> MultiCoreConfig {
    let mut cfg = MultiCoreConfig::paper_rig(
        FaasWorkload::HashLoadBalance,
        ScalingMode::ColorGuard,
        CacheMode::Warm,
        cores,
    );
    cfg.seed = SEED;
    cfg.duration_ms = 150;
    cfg
}

/// The PR's headline acceptance criterion: two same-seed FaaS runs produce
/// byte-identical flight-recorder dumps and metric snapshots.
#[test]
fn same_seed_runs_export_byte_identical_traces_and_snapshots() {
    let a = simulate_multicore(&rig(4));
    let b = simulate_multicore(&rig(4));
    assert_eq!(a.traces, b.traces, "flight recorder must replay byte-identically");
    assert_eq!(a.telemetry_json, b.telemetry_json, "metric snapshot must replay byte-identically");
    assert!(json_is_valid(&a.telemetry_json), "{}", a.telemetry_json);
    // The dump form too — the exact strings a fault report would embed.
    let dump_a: Vec<String> =
        a.traces.iter().flatten().map(TraceEvent::dump_line).collect();
    let dump_b: Vec<String> =
        b.traces.iter().flatten().map(TraceEvent::dump_line).collect();
    assert_eq!(dump_a, dump_b);
    assert!(!dump_a.is_empty());
}

/// The runtime's own registry exports identically across two identically
/// seeded engines driving the same guest.
#[test]
fn runtime_snapshots_are_deterministic() {
    let run = || {
        let m = segue_colorguard::wasm::wat::parse(
            r#"(module (memory 1)
                (func (export "get") (param $p i32) (result i32)
                  local.get $p i32.load))"#,
        )
        .unwrap();
        let cm = Arc::new(compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap());
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let id = rt.instantiate(cm).unwrap();
        for _ in 0..5 {
            rt.invoke(id, "get", &[64]).unwrap();
        }
        rt.telemetry_snapshot()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same guest, same config, same snapshot");
    assert!(json_is_valid(&a), "{a}");
    assert!(a.contains("sfi_transitions_total"));
    assert!(a.contains("sfi_invocation_transition_cycles"));
    // Snapshotting is idempotent: a second scrape with no new work must not
    // double-count the delta-based counters.
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
    let s1 = rt.telemetry_snapshot();
    let s2 = rt.telemetry_snapshot();
    assert_eq!(s1, s2);
}

/// Ring wraparound: a full recorder drops the *oldest* events, keeps
/// arrival order, and still counts everything it ever saw.
#[test]
fn flight_recorder_wraps_oldest_first() {
    let mut rec = FlightRecorder::new(4);
    for i in 0..10u64 {
        rec.record(TraceEvent { tick: i, core: 0, sandbox: i, kind: TraceKind::Enter, arg: i });
    }
    assert_eq!(rec.len(), 4, "capacity bounds residency");
    assert_eq!(rec.total_recorded(), 10, "wraparound must not lose the count");
    let ticks: Vec<u64> = rec.events().iter().map(|e| e.tick).collect();
    assert_eq!(ticks, [6, 7, 8, 9], "last 4 events, oldest first");

    // Capacity 0 is the documented off switch.
    let mut off = FlightRecorder::disabled();
    off.record(TraceEvent { tick: 1, core: 0, sandbox: 0, kind: TraceKind::Enter, arg: 0 });
    assert!(!off.is_enabled());
    assert_eq!(off.total_recorded(), 0);
    assert!(off.events().is_empty());
}

/// Histogram bucket boundaries: `2^k` is the *first* value of bucket `k+1`,
/// so `2^k − 1` and `2^k` must report different upper bounds and the upper
/// bound of every interior bucket is `2^i − 1`.
#[test]
fn histogram_buckets_split_exactly_at_powers_of_two() {
    for k in 2..24u32 {
        let boundary = 1u64 << k;
        let mut below = CycleHistogram::new();
        below.record(boundary - 1);
        let mut at = CycleHistogram::new();
        at.record(boundary);
        assert_eq!(below.p50(), boundary - 1, "2^{k}-1 caps its own bucket");
        assert_eq!(at.p50(), boundary, "2^{k} opens the next bucket (max is exact)");
    }
    for i in 1..HISTOGRAM_BUCKETS - 1 {
        assert_eq!(CycleHistogram::bucket_upper_bound(i), (1u64 << i) - 1);
    }
    assert_eq!(CycleHistogram::bucket_upper_bound(0), 0);
    assert_eq!(CycleHistogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

/// Prometheus label escaping: `\`, `"` and newline in a label value must
/// render per the text-format rules, in both exporters, and the escaped
/// JSON must still parse.
#[test]
fn prometheus_label_values_escape() {
    let mut r = Registry::new();
    let c = r.counter_with("sfi_test_paths_total", &[("path", "a\"b\\c\nd")]);
    r.add(c, 3);
    let text = prometheus_text(&r);
    assert!(
        text.contains(r#"sfi_test_paths_total{path="a\"b\\c\nd"} 3"#),
        "escaped text-format series: {text}"
    );
    let json = json_snapshot(&r);
    assert!(json_is_valid(&json), "escaped key must survive JSON embedding: {json}");

    // A label-free series is unaffected.
    let mut plain = Registry::new();
    let p = plain.counter("sfi_plain_total");
    plain.inc(p);
    assert!(prometheus_text(&plain).contains("sfi_plain_total 1\n"));
}

/// Merging per-shard registries is order-insensitive for counters and
/// histogram quantiles — required for the multi-core merge-at-export path.
#[test]
fn shard_merge_is_order_insensitive() {
    let shard = |n: u64| {
        let mut r = Registry::new();
        let c = r.counter("sfi_work_total");
        r.add(c, n);
        let h = r.histogram("sfi_cycles");
        r.observe(h, n * 100);
        r
    };
    let (a, b, c) = (shard(1), shard(10), shard(100));
    let mut fwd = Registry::new();
    for s in [&a, &b, &c] {
        fwd.merge_from(s);
    }
    let mut rev = Registry::new();
    for s in [&c, &b, &a] {
        rev.merge_from(s);
    }
    assert_eq!(json_snapshot(&fwd), json_snapshot(&rev));
    assert_eq!(fwd.counter_value("sfi_work_total"), Some(111));
}
