//! Library sandboxing, Firefox-style (§6.1 of the paper): run a
//! font-shaping "library" inside a Wasm sandbox, call it per glyph run,
//! and compare the overhead with and without Segue — including the
//! segment-base switch each re-entry costs.
//!
//! ```text
//! cargo run --release --example firefox_sandboxing
//! ```

use segue_colorguard::core::harness::execute_export;
use segue_colorguard::core::{compile, Strategy};
use segue_colorguard::runtime::{TransitionKind, TransitionModel};

fn main() {
    let workload = segue_colorguard::workloads::firefox_font();
    let module = workload.module();
    println!(
        "sandboxing a libgraphite-shaped font shaper ({} Wasm functions, {} pages of memory)\n",
        module.funcs.len(),
        module.mem_min_pages
    );

    let tm = TransitionModel::default();
    let glyph_runs = 800u64;

    let mut rows = Vec::new();
    for strategy in [Strategy::Native, Strategy::GuardRegion, Strategy::Segue] {
        let cfg = {
            let mut c = segue_colorguard::core::CompilerConfig::for_strategy(strategy);
            // The corpus workload needs more memory than the test default.
            c.layout.mem_size =
                (u64::from(module.mem_min_pages) * 65536).next_power_of_two();
            c
        };
        let cm = compile(&module, &cfg).expect("compiles");
        let out = execute_export(&cm, "run", &[]).expect("shapes text");

        // Per-entry transition: plain for the baseline, +wrgsbase for Segue
        // (and the arch_prctl fallback for pre-FSGSBASE CPUs, §4.1).
        let per_entry = match strategy {
            Strategy::Native => 0.0,
            Strategy::Segue => tm.cycles(TransitionKind {
                set_segment_base: true,
                ..TransitionKind::default()
            }) + tm.cycles(TransitionKind::default()),
            _ => 2.0 * tm.cycles(TransitionKind::default()),
        };
        let total = out.stats.cycles + glyph_runs as f64 * per_entry;
        println!(
            "{strategy:>12}: {:>10.0} guest cycles + {glyph_runs} entries → {:>10.0} total",
            out.stats.cycles, total
        );
        rows.push((strategy, total));
    }

    let native = rows[0].1;
    let guard = rows[1].1;
    let segue = rows[2].1;
    println!(
        "\nsandboxing overhead: {:.1}% → {:.1}% with Segue ({:.0}% of it eliminated)",
        (guard / native - 1.0) * 100.0,
        (segue / native - 1.0) * 100.0,
        (guard - segue) / (guard - native) * 100.0
    );
    println!("(the paper measures Firefox font rendering: 264→356 ms sandboxed, 287 ms with Segue)");

    // Legacy CPUs: no FSGSBASE → arch_prctl per entry. This is why Firefox
    // must detect the extension (§4.1).
    let syscall_entry = tm.cycles(TransitionKind {
        set_segment_base: true,
        segment_base_via_syscall: true,
        ..TransitionKind::default()
    }) + tm.cycles(TransitionKind::default());
    let segue_legacy = rows[2].1 - glyph_runs as f64
        * (tm.cycles(TransitionKind { set_segment_base: true, ..TransitionKind::default() })
            + tm.cycles(TransitionKind::default()))
        + glyph_runs as f64 * syscall_entry;
    println!(
        "on a pre-FSGSBASE CPU the same Segue build would cost {:.1}% over native \
         (arch_prctl per entry)",
        (segue_legacy / native - 1.0) * 100.0
    );
}
