//! A FaaS edge node with ColorGuard (§3.2/§6.4): pack many tenant
//! instances into one address space with MPK stripes, serve requests
//! through the multi-instance runtime, and demonstrate both the density
//! win and the isolation property.
//!
//! ```text
//! cargo run --release --example faas_edge
//! ```

use std::sync::Arc;

use segue_colorguard::core::{compile, CompilerConfig, Strategy};
use segue_colorguard::pool::{compute_layout, PoolConfig};
use segue_colorguard::runtime::{Runtime, RuntimeConfig, RuntimeError};

fn main() {
    // --- density: the §6.4.2 numbers ---
    let without = compute_layout(&PoolConfig::scaling_benchmark(0)).expect("layout");
    let with = compute_layout(&PoolConfig::scaling_benchmark(15)).expect("layout");
    println!(
        "address-space capacity with 408 MiB tenants: {} instances → {} with ColorGuard ({:.1}×)\n",
        without.num_slots,
        with.num_slots,
        with.num_slots as f64 / without.num_slots as f64
    );

    // --- a running edge node (scaled down so the demo is instant) ---
    // Each tenant deploys a tiny request counter.
    let tenant_app = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 1)
             (global $requests (mut i32) (i32.const 0))
             (func (export "handle") (param $key i32) (result i32)
               global.get $requests i32.const 1 i32.add global.set $requests
               ;; remember the key, return the per-tenant request count
               i32.const 0 local.get $key i32.store
               global.get $requests))"#,
    )
    .expect("WAT parses");
    let cm = Arc::new(
        compile(&tenant_app, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );

    let mut node = Runtime::new(RuntimeConfig::small_test(true)).expect("node boots");
    let tenants: Vec<_> = (0..4)
        .map(|_| node.instantiate(Arc::clone(&cm)).expect("slot"))
        .collect();
    println!("edge node: {} tenants live in one process", node.instance_count());

    // Serve interleaved requests; each tenant keeps its own state.
    for round in 1..=3u64 {
        for (t, &id) in tenants.iter().enumerate() {
            let out = node.invoke(id, "handle", &[0xC0FFEE + t as u64]).expect("handles");
            assert_eq!(out.result, Some(round), "tenant-private request counts");
        }
    }
    println!("served 3 rounds; every tenant's private counter reads 3  ✓");

    // Isolation: a hostile tenant tries to poke one slot-stride over —
    // straight into its neighbour's memory. The stripe color stops it.
    let stride = node.pool().layout().slot_bytes;
    let hostile = segue_colorguard::wasm::wat::parse(&format!(
        r#"(module (memory 1)
             (func (export "handle") (param $key i32) (result i32)
               i32.const {stride}
               i32.const 0x41414141
               i32.store
               i32.const 0))"#
    ))
    .expect("WAT parses");
    let hostile_cm = Arc::new(
        compile(&hostile, &CompilerConfig::for_strategy(Strategy::Segue)).expect("compiles"),
    );
    let attacker = node.instantiate(hostile_cm).expect("slot");
    match node.invoke(attacker, "handle", &[0]) {
        Err(RuntimeError::Trapped(trap)) => {
            println!("hostile cross-tenant store trapped: {trap}  ✓");
        }
        other => panic!("expected a trap, got {other:?}"),
    }
    let mut probe = [0u8; 4];
    node.read_heap(tenants[1], 0, &mut probe).expect("host view");
    assert_ne!(u32::from_le_bytes(probe), 0x4141_4141, "neighbour unharmed");
    println!("neighbour memory unharmed  ✓");

    println!(
        "\ntransitions so far: {} (ColorGuard adds one wrpkru per direction, ~21 ns each)",
        node.transitions.count
    );
}
