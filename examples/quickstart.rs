//! Quickstart: compile one function under every SFI strategy, inspect the
//! generated x86-64, and watch Segue turn the paper's Figure 1 pattern into
//! a single instruction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use segue_colorguard::core::harness::execute_export;
use segue_colorguard::core::{compile, CompilerConfig, Strategy};

fn main() {
    // Figure 1's pattern 2: read an array element inside a struct —
    // `obj->arr[idx]` — expressed as idiomatic Wasm.
    let module = segue_colorguard::wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "get") (param $obj i32) (param $idx i32) (result i32)
               local.get $obj
               local.get $idx i32.const 4 i32.mul
               i32.add
               i32.load offset=8)
             (func (export "put") (param $obj i32) (param $idx i32) (param $v i32)
               local.get $obj
               local.get $idx i32.const 4 i32.mul
               i32.add
               local.get $v
               i32.store offset=8))"#,
    )
    .expect("WAT parses");

    println!("=== obj->arr[idx] under each SFI strategy ===\n");
    for strategy in Strategy::ALL {
        let cm = compile(&module, &CompilerConfig::for_strategy(strategy))
            .expect("module compiles");
        println!(
            "--- {strategy} ({} instructions, {} bytes) ---",
            cm.inst_count(),
            cm.code_size()
        );
        // Print just the `get` function's body.
        let entry = cm.export_entry("get").expect("exported");
        let end = cm.export_entry("put").expect("exported");
        for inst in &cm.image.program().insts()[entry..end] {
            println!("    {inst}");
        }
        println!();
    }

    // And run it: store 42 at obj=64, idx=3, read it back under Segue.
    let segue = compile(&module, &CompilerConfig::for_strategy(Strategy::Segue))
        .expect("module compiles");
    execute_export(&segue, "put", &[64, 3, 42]).expect("in-bounds store");
    let out = execute_export(&segue, "get", &[64, 3]).expect("in-bounds load");
    // (each invocation gets fresh memory in this harness, so read-after-write
    //  across invocations sees zero; within one call chain use `put`+`get`
    //  composed in Wasm — this is just the API tour)
    println!("get(64, 3) on fresh memory = {:?}", out.result);

    // Out of bounds? Deterministic trap, not corruption.
    let oob = execute_export(&segue, "put", &[0xFFFF_0000, 0, 7]);
    println!("put(0xFFFF0000, 0, 7) → {oob:?}");
}
