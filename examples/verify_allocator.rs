//! The §5.2 verification story, interactive: check the ColorGuard
//! allocator's layout contract against all ten Table 1 invariants, find the
//! preserved upstream bugs, and show how the fixed version refuses the same
//! inputs.
//!
//! ```text
//! cargo run --release --example verify_allocator
//! ```

use segue_colorguard::pool::invariants::check;
use segue_colorguard::pool::verify::find_violation;
use segue_colorguard::pool::{buggy, compute_layout, PoolConfig, WASM_PAGE_SIZE};

fn main() {
    // A healthy configuration: everything aligned, generous budget.
    let good = PoolConfig {
        num_slots: 1000,
        max_memory_bytes: 6 * WASM_PAGE_SIZE,
        expected_slot_bytes: 64 * WASM_PAGE_SIZE,
        guard_bytes: 32 * WASM_PAGE_SIZE,
        guard_before_slots: true,
        num_pkeys_available: 15,
        total_memory_bytes: 1 << 40,
    };
    let layout = compute_layout(&good).expect("valid config");
    println!("healthy config → {layout:?}");
    println!("invariant check: {:?} (empty = all ten hold)\n", check(&good, &layout));

    // A hostile config: unaligned memory limit (the attacker model §5.2
    // verifies under — callers may pass unsafe inputs).
    let mut hostile = good;
    hostile.max_memory_bytes += 4096;
    println!("hostile config (memory limit not Wasm-page aligned):");
    println!("  fixed allocator:   {:?}", compute_layout(&hostile).expect_err("refused"));
    let bad_layout = buggy::compute_layout(&hostile).expect("the pre-fix code accepts it");
    println!("  pre-fix allocator: accepted! layout = {bad_layout:?}");
    println!("  violated invariants: {:?}\n", check(&hostile, &bad_layout));

    // The model checker sweeps the whole bounded input space.
    println!("bounded-exhaustive sweep:");
    println!(
        "  fixed:   {}",
        match find_violation(compute_layout) {
            None => "no violations — every accepted input yields a safe layout".to_owned(),
            Some(v) => format!("unexpected violation: {v:?}"),
        }
    );
    match find_violation(buggy::compute_layout) {
        Some(v) => {
            println!("  pre-fix: counterexample!");
            println!("           input    = {:?}", v.config);
            println!("           violates = {:?}", v.invariants);
        }
        None => println!("  pre-fix: unexpectedly clean"),
    }
    println!(
        "\n(the paper's Flux verification of the real Wasmtime allocator found one\n\
         saturating-add bug and four missing preconditions — in code that had\n\
         already been reviewed and fuzzed)"
    );
}
