#!/usr/bin/env bash
# Local CI gate: everything runs offline (the workspace vendors its
# compatibility shims under compat/ and has no registry dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== tests (workspace) =="
cargo test -q --offline --workspace

echo "== full-corpus differential (release, includes cache path) =="
cargo test -q --offline --release --test corpus_differential -- --include-ignored

echo "== multi-core sweep: determinism + warm/cold + scaling checks =="
cargo run -q --offline --release -p sfi-bench --bin figX_multicore -- --check

echo "== telemetry: snapshot embedded, overhead gate, collision-free schema =="
# figX_multicore --check (above) runs the telemetry gates: snapshot present
# and parseable, tracing on-vs-off byte-identical in every modeled field,
# self-overhead within the DESIGN.md §8 budget, and the runtime metric
# schema registered without a name collision. Verify the artifacts landed.
grep -q '"telemetry"' BENCH_multicore.json
grep -q 'sfi_shard_completed_total' BENCH_multicore.json
grep -q '"traceEvents"' TRACE_multicore.json

echo "== live serving: endpoint checks, stream==batch, observer effect, overhead =="
cargo run -q --offline --release -p sfi-bench --bin faas_serve -- --check

echo "== live serving: headless smoke (start, scrape, validate, clean shutdown) =="
# Start the server on an ephemeral port with a capped driver, scrape every
# endpoint with the binary's own std-only client (no curl: offline policy),
# then shut it down via /quit and require a clean exit.
SERVE_LOG=$(mktemp)
cargo run -q --offline --release -p sfi-bench --bin faas_serve -- --port 0 --rounds 2 >"$SERVE_LOG" &
SERVE_PID=$!
# Never orphan the server: if any scrape below fails, set -e exits before
# /quit — take the server (and the log) down with us.
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SERVE_LOG"' EXIT
ADDR=""
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$SERVE_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "faas_serve did not report its address"; kill "$SERVE_PID"; exit 1; }
FAAS_SERVE=target/release/faas_serve
"$FAAS_SERVE" --get "$ADDR" /metrics | grep -q 'sfi_serve_scrapes_total'
"$FAAS_SERVE" --get "$ADDR" /snapshot | grep -q '"histograms"'
"$FAAS_SERVE" --get "$ADDR" '/trace?since=0' | head -1 | grep -q '"next"'
"$FAAS_SERVE" --get "$ADDR" /healthz | grep -q '"availability"'
"$FAAS_SERVE" --get "$ADDR" /quit >/dev/null
wait "$SERVE_PID"   # exit-code check: the serve loop must stop cleanly
rm -f "$SERVE_LOG"
trap - EXIT

echo "== bench artifacts embed telemetry sections =="
cargo run -q --offline --release -p sfi-bench --bin fig6_throughput >/dev/null
cargo run -q --offline --release -p sfi-bench --bin fig7_ctx_dtlb >/dev/null
cargo run -q --offline --release -p sfi-bench --bin sec641_transitions >/dev/null
cargo run -q --offline --release -p sfi-bench --bin sec642_scaling >/dev/null
for f in BENCH_fig6.json BENCH_fig7.json BENCH_sec641.json BENCH_sec642.json; do
  grep -q '"telemetry"' "$f"
done
grep -q 'sfi_shard_request_latency_ns' BENCH_multicore.json
grep -q 'sample_rate' BENCH_sec641.json

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
