#!/usr/bin/env bash
# Local CI gate: everything runs offline (the workspace vendors its
# compatibility shims under compat/ and has no registry dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== tests (workspace) =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
