#!/usr/bin/env bash
# Local CI gate: everything runs offline (the workspace vendors its
# compatibility shims under compat/ and has no registry dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== tests (workspace) =="
cargo test -q --offline --workspace

echo "== full-corpus differential (release, includes cache path + both tiers) =="
cargo test -q --offline --release --test corpus_differential -- --include-ignored

echo "== tiered compiler: corpus + random-program equivalence, cycle win, baseline bytes =="
cargo run -q --offline --release -p sfi-bench --bin figX_tiers -- --check
grep -q '"telemetry"' BENCH_tiers.json
grep -q 'sfi_tier_promotions_total' BENCH_tiers.json
grep -q 'sfi_tier_guest_cycles' BENCH_tiers.json

echo "== multi-core sweep: determinism + warm/cold + scaling checks =="
cargo run -q --offline --release -p sfi-bench --bin figX_multicore -- --check

echo "== telemetry: snapshot embedded, overhead gate, collision-free schema =="
# figX_multicore --check (above) runs the telemetry gates: snapshot present
# and parseable, tracing on-vs-off byte-identical in every modeled field,
# self-overhead within the DESIGN.md §8 budget, and the runtime metric
# schema registered without a name collision. Verify the artifacts landed.
grep -q '"telemetry"' BENCH_multicore.json
grep -q 'sfi_shard_completed_total' BENCH_multicore.json
grep -q '"traceEvents"' TRACE_multicore.json

echo "== live serving: endpoint checks, stream==batch, observer effect, overhead =="
cargo run -q --offline --release -p sfi-bench --bin faas_serve -- --check

echo "== live serving: headless smoke (start, scrape, validate, clean shutdown) =="
# Start the server on an ephemeral port with a capped driver, scrape every
# endpoint with the binary's own std-only client (no curl: offline policy),
# then shut it down via /quit and require a clean exit.
SERVE_LOG=$(mktemp)
cargo run -q --offline --release -p sfi-bench --bin faas_serve -- --port 0 --rounds 2 >"$SERVE_LOG" &
SERVE_PID=$!
# Never orphan the server: if any scrape below fails, set -e exits before
# /quit — take the server (and the log) down with us.
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SERVE_LOG"' EXIT
ADDR=""
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$SERVE_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "faas_serve did not report its address"; kill "$SERVE_PID"; exit 1; }
FAAS_SERVE=target/release/faas_serve
# --timeout-ms bounds every scrape attempt: a server wedged on accept
# fails the step within its deadline instead of hanging CI.
"$FAAS_SERVE" --get "$ADDR" /metrics --timeout-ms 5000 | grep -q 'sfi_serve_scrapes_total'
"$FAAS_SERVE" --get "$ADDR" /snapshot --timeout-ms 5000 | grep -q '"histograms"'
"$FAAS_SERVE" --get "$ADDR" '/trace?since=0' --timeout-ms 5000 | head -1 | grep -q '"next"'
"$FAAS_SERVE" --get "$ADDR" /healthz --timeout-ms 5000 | grep -q '"availability"'
"$FAAS_SERVE" --get "$ADDR" /quit --timeout-ms 5000 >/dev/null
wait "$SERVE_PID"   # exit-code check: the serve loop must stop cleanly
rm -f "$SERVE_LOG"
trap - EXIT

echo "== fleet federation: K kills, recovery byte-equality, merged scrape surface =="
cargo run -q --offline --release -p sfi-bench --bin fleet_serve -- --check

echo "== overload: open-loop sweep, QoS shedding, elastic determinism, legacy bytes =="
# Runs after figX_multicore: gate 3 byte-compares the recomputed closed-loop
# sweep against the BENCH_multicore.json written above.
cargo run -q --offline --release -p sfi-bench --bin figX_overload -- --check
grep -q '"telemetry"' BENCH_overload.json
grep -q 'sfi_qos_shed_total' BENCH_overload.json

echo "== alerting plane: false positives, detection budget, timeline bytes, overhead =="
cargo run -q --offline --release -p sfi-bench --bin figX_alerts -- --check
grep -q '"telemetry"' BENCH_alerts.json
grep -q '"scenario": "clean_0", "rounds": 8, "transitions": 0' BENCH_alerts.json
grep -q '"rule": "fleet_slo_burn_ls"' BENCH_alerts.json
grep -q '"rule": "member_availability"' BENCH_alerts.json
grep -q '"rerun_timeline_identical": true' BENCH_alerts.json
grep -q '"kill_recovery_timeline_identical": true' BENCH_alerts.json

echo "== bench artifacts embed telemetry sections =="
cargo run -q --offline --release -p sfi-bench --bin fig6_throughput >/dev/null
cargo run -q --offline --release -p sfi-bench --bin fig7_ctx_dtlb >/dev/null
cargo run -q --offline --release -p sfi-bench --bin sec641_transitions >/dev/null
cargo run -q --offline --release -p sfi-bench --bin sec642_scaling >/dev/null
for f in BENCH_fig6.json BENCH_fig7.json BENCH_sec641.json BENCH_sec642.json; do
  grep -q '"telemetry"' "$f"
done
grep -q 'sfi_shard_request_latency_ns' BENCH_multicore.json
grep -q 'sample_rate' BENCH_sec641.json

echo "== calibration drift watch (sec641 p50 vs DESIGN.md §10 record) =="
# The transition microbench p50s are the cost-model canary: recompute them
# from the artifact just generated above and compare against the values
# recorded in DESIGN.md §10. A deliberate cost-model change must update the
# record in the same commit; anything else drifting >25% fails CI.
REF_LINE=$(grep -o 'calibration: sec641 transition_cycles p50 baseline=[0-9]* colorguard=[0-9]*' DESIGN.md)
[ -n "$REF_LINE" ] || { echo "DESIGN.md §10 calibration record missing"; exit 1; }
BASE_REF=$(echo "$REF_LINE" | sed 's/.*baseline=\([0-9]*\).*/\1/')
COLOR_REF=$(echo "$REF_LINE" | sed 's/.*colorguard=\([0-9]*\).*/\1/')
# Run order in the artifact: baseline histogram first, ColorGuard second.
P50S=$(grep -o '"sfi_invocation_transition_cycles": {[^}]*}' BENCH_sec641.json \
       | grep -o '"p50": [0-9]*' | awk '{print $2}')
BASE_GOT=$(echo "$P50S" | sed -n 1p)
COLOR_GOT=$(echo "$P50S" | sed -n 2p)
[ -n "$BASE_GOT" ] && [ -n "$COLOR_GOT" ] || { echo "sec641 p50s not found in artifact"; exit 1; }
for pair in "baseline $BASE_GOT $BASE_REF" "colorguard $COLOR_GOT $COLOR_REF"; do
  set -- $pair
  awk -v name="$1" -v got="$2" -v ref="$3" 'BEGIN {
    drift = (got > ref ? got - ref : ref - got) / ref;
    printf "calibration %s: p50 %d vs recorded %d (drift %.1f%%)\n", name, got, ref, drift * 100;
    exit !(drift <= 0.25);
  }' || { echo "calibration drift watch FAILED for $1"; exit 1; }
done

echo "== profiler: exact attribution, determinism, observer effect, overhead =="
cargo run -q --offline --release -p sfi-bench --bin figX_profile -- --check
grep -q '"telemetry"' BENCH_profile.json
grep -q '"profile"' BENCH_profile.json
grep -q 'sfi_profile_cycles_total' BENCH_profile.json

echo "== calibration drift watch (transition share vs DESIGN.md §14 record) =="
# The per-strategy transition-cycle share is the baseline the
# near-zero-cost-transitions work must beat: recompute it from the
# artifact and compare against the DESIGN.md §14 record, same 25% drift
# rule as the §10 watch above.
PROF_REF=$(grep -o 'calibration: profile transition_share_bp [a-z=0-9 -]*' DESIGN.md)
[ -n "$PROF_REF" ] || { echo "DESIGN.md §14 calibration record missing"; exit 1; }
SHARES=$(grep -o '"transition_share": {[^}]*}' BENCH_profile.json)
[ -n "$SHARES" ] || { echo "transition_share not found in BENCH_profile.json"; exit 1; }
for s in guard segue segue-loads bounds bounds-segue masking; do
  REF=$(echo "$PROF_REF" | grep -o " $s=[0-9]*" | sed 's/.*=//')
  GOT=$(echo "$SHARES" | grep -o "\"$s\": [0-9.]*" | sed 's/.*: //')
  [ -n "$REF" ] && [ -n "$GOT" ] || { echo "missing transition share for $s"; exit 1; }
  awk -v name="$s" -v got="$GOT" -v ref="$REF" 'BEGIN {
    got_bp = got * 10000;
    drift = (got_bp > ref ? got_bp - ref : ref - got_bp) / ref;
    printf "calibration %s: transition share %.0fbp vs recorded %dbp (drift %.1f%%)\n", name, got_bp, ref, drift * 100;
    exit !(drift <= 0.25);
  }' || { echo "calibration drift watch FAILED for $s"; exit 1; }
done

echo "== spectre matrix: leak gates, genprog sweep, mitigation frontier, determinism =="
cargo run -q --offline --release -p sfi-bench --bin figX_spectre -- --check
grep -q '"telemetry"' BENCH_spectre.json
grep -q 'sfi_spec_flushes_total' BENCH_spectre.json
grep -q 'sfi_spec_leaks_total' BENCH_spectre.json
grep -q 'sfi_spec_mitigation_cycles_total' BENCH_spectre.json

echo "== declared-safe drift watch (spectre leak matrix) =="
# Every cell the compiler declares safe must measure zero leaks in the
# artifact just written, and the unsafe cells must still register leaks —
# a matrix regression (or a detector gone dark) that slips past the
# in-binary asserts fails here.
SAFE_CELLS=$(grep -c '"declared_safe": true, "leaks": 0}' BENCH_spectre.json)
SAFE_LEAKY=$(grep -o '"declared_safe": true, "leaks": [0-9]*' BENCH_spectre.json \
             | awk '$NF != 0 { n++ } END { print n + 0 }')
UNSAFE_LEAKS=$(grep -o '"declared_safe": false, "leaks": [0-9]*' BENCH_spectre.json \
               | awk '{ s += $NF } END { print s + 0 }')
[ "$SAFE_LEAKY" -eq 0 ] || { echo "declared-safe drift: $SAFE_LEAKY safe cells leaked"; exit 1; }
[ "$SAFE_CELLS" -gt 0 ] || { echo "no declared-safe cells in artifact"; exit 1; }
[ "$UNSAFE_LEAKS" -gt 0 ] || { echo "leak detector went dark: no unsafe cell leaks"; exit 1; }
echo "declared-safe cells clean ($SAFE_CELLS cells; $UNSAFE_LEAKS leaks confined to unsafe cells)"

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
