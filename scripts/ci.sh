#!/usr/bin/env bash
# Local CI gate: everything runs offline (the workspace vendors its
# compatibility shims under compat/ and has no registry dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== tests (workspace) =="
cargo test -q --offline --workspace

echo "== full-corpus differential (release, includes cache path) =="
cargo test -q --offline --release --test corpus_differential -- --include-ignored

echo "== multi-core sweep: determinism + warm/cold + scaling checks =="
cargo run -q --offline --release -p sfi-bench --bin figX_multicore -- --check

echo "== telemetry: snapshot embedded, overhead gate, collision-free schema =="
# figX_multicore --check (above) runs the telemetry gates: snapshot present
# and parseable, tracing on-vs-off byte-identical in every modeled field,
# self-overhead within the DESIGN.md §8 budget, and the runtime metric
# schema registered without a name collision. Verify the artifacts landed.
grep -q '"telemetry"' BENCH_multicore.json
grep -q 'sfi_shard_completed_total' BENCH_multicore.json
grep -q '"traceEvents"' TRACE_multicore.json

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
