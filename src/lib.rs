//! # segue-colorguard: a reproduction of *Segue & ColorGuard* (ASPLOS 2025)
//!
//! This workspace reimplements, from scratch in Rust, the two SFI
//! optimizations of Narayan et al.'s *Segue & ColorGuard: Optimizing SFI
//! Performance and Scalability on Modern Architectures* — together with
//! every substrate the paper's evaluation depends on. See `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! results of every table and figure.
//!
//! ## The layers
//!
//! | Crate | What it is |
//! |---|---|
//! | [`x86`] | x86-64 subset model: byte-accurate encoder, cycle-level emulator, cache/branch models |
//! | [`vm`] | Virtual-memory substrate: VMAs, `mmap`/`mprotect`/`madvise`, MPK, MTE, dTLB |
//! | [`wasm`] | Mini-Wasm: IR, WAT parser, validator, reference interpreter |
//! | [`core`] | **Segue**: the Wasm→x86 compiler with pluggable SFI strategies |
//! | [`lfi`] | LFI-style native-code rewriter, with and without Segue |
//! | [`pool`] | **ColorGuard**: the MPK-striped pooling allocator plus its verified layout contract |
//! | [`runtime`] | Multi-instance runtime: transitions, PKRU switching, epochs |
//! | [`faas`] | Deterministic FaaS-edge simulation with from-scratch regex/templating/hash engines |
//! | [`telemetry`] | Deterministic observability: metrics registry, flight recorder, exporters |
//! | [`workloads`] | The benchmark corpus (SPEC-, Sightglass-, PolybenchC-, Firefox-shaped kernels) |
//!
//! ## Quickstart
//!
//! ```
//! use segue_colorguard::core::{compile, CompilerConfig, Strategy};
//!
//! // The paper's Figure 1, as a program: an array read inside a struct.
//! let module = segue_colorguard::wasm::wat::parse(r#"
//!   (module (memory 1)
//!     (func (export "get") (param $obj i32) (param $idx i32) (result i32)
//!       local.get $obj
//!       local.get $idx i32.const 4 i32.mul i32.add
//!       i32.load))
//! "#).unwrap();
//!
//! let segue = compile(&module, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap();
//! let baseline = compile(&module, &CompilerConfig::for_strategy(Strategy::GuardRegion)).unwrap();
//! assert!(segue.code_size() < baseline.code_size());
//!
//! let out = segue_colorguard::core::harness::execute_export(&segue, "get", &[100, 3]).unwrap();
//! assert_eq!(out.result, Some(0)); // fresh memory reads zero
//! ```

#![forbid(unsafe_code)]

pub use sfi_core as core;
pub use sfi_faas as faas;
pub use sfi_lfi as lfi;
pub use sfi_pool as pool;
pub use sfi_runtime as runtime;
pub use sfi_telemetry as telemetry;
pub use sfi_vm as vm;
pub use sfi_wasm as wasm;
pub use sfi_workloads as workloads;
pub use sfi_x86 as x86;
