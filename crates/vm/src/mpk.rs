//! Memory Protection Keys: key allocation and PKRU helpers.
//!
//! MPK gives user space 16 protection keys (4 bits per PTE); key 0 is the
//! default for all memory, leaving **15 allocatable keys** — the constant
//! behind ColorGuard's "up to 15×" density claim (§3.2). Rights are held in
//! the per-thread PKRU register: two bits per key, *access-disable* (AD) and
//! *write-disable* (WD). `wrpkru` is unprivileged and takes ~40 cycles,
//! which is what makes per-transition color switching viable.

/// Number of protection keys including the default key 0.
pub const NUM_KEYS: u8 = 16;

/// Number of keys available to applications (key 0 is the default).
pub const NUM_ALLOCATABLE_KEYS: u8 = 15;

/// A `pkey_alloc`/`pkey_free` model.
#[derive(Debug, Clone)]
pub struct KeyAllocator {
    /// Bitmask of allocated keys (bit 0 = key 1, … bit 14 = key 15).
    allocated: u16,
    /// Keys reserved by the embedding application (ColorGuard supports
    /// running inside apps that use some keys for their own purposes, §5.1).
    reserved: u16,
}

impl Default for KeyAllocator {
    fn default() -> Self {
        KeyAllocator::new()
    }
}

impl KeyAllocator {
    /// A fresh allocator with all 15 user keys free.
    pub fn new() -> KeyAllocator {
        KeyAllocator { allocated: 0, reserved: 0 }
    }

    /// Marks `n` keys as reserved by the embedding application, reducing
    /// what `pkey_alloc` can hand out.
    pub fn reserve(&mut self, n: u8) {
        let n = n.min(NUM_ALLOCATABLE_KEYS);
        self.reserved = (1u16 << n) - 1;
    }

    /// Allocates the lowest free key (1–15), or `None` if exhausted —
    /// mirroring `pkey_alloc()` returning `ENOSPC`.
    pub fn pkey_alloc(&mut self) -> Option<u8> {
        for k in 1..=NUM_ALLOCATABLE_KEYS {
            let bit = 1u16 << (k - 1);
            if self.allocated & bit == 0 && self.reserved & bit == 0 {
                self.allocated |= bit;
                return Some(k);
            }
        }
        None
    }

    /// Frees a previously allocated key.
    pub fn pkey_free(&mut self, key: u8) {
        if (1..=NUM_ALLOCATABLE_KEYS).contains(&key) {
            self.allocated &= !(1u16 << (key - 1));
        }
    }

    /// Whether `key` is currently allocated.
    pub fn is_allocated(&self, key: u8) -> bool {
        (1..=NUM_ALLOCATABLE_KEYS).contains(&key) && self.allocated & (1u16 << (key - 1)) != 0
    }

    /// Number of keys still available to `pkey_alloc`.
    pub fn available(&self) -> u8 {
        (1..=NUM_ALLOCATABLE_KEYS)
            .filter(|&k| {
                let bit = 1u16 << (k - 1);
                self.allocated & bit == 0 && self.reserved & bit == 0
            })
            .count() as u8
    }
}

/// PKRU value construction.
///
/// PKRU holds two bits per key: bit `2k` is access-disable, bit `2k+1` is
/// write-disable. All-zero enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pkru(pub u32);

impl Pkru {
    /// Everything enabled (the host runtime's resting state in ColorGuard —
    /// key 0 memory plus all stripes).
    pub const ALL_ENABLED: Pkru = Pkru(0);

    /// A PKRU that *disables* every non-zero key — key 0 (runtime memory)
    /// stays accessible.
    pub fn deny_all_stripes() -> Pkru {
        // Set AD for keys 1..=15.
        let mut v = 0u32;
        for k in 1..=15u32 {
            v |= 1 << (2 * k);
        }
        Pkru(v)
    }

    /// The ColorGuard transition value: every non-zero key disabled
    /// *except* `key`, which is fully enabled. Key 0 stays enabled so the
    /// sandboxed code can still be reached through runtime memory the
    /// compiler controls.
    pub fn only_stripe(key: u8) -> Pkru {
        let mut p = Pkru::deny_all_stripes();
        p.0 &= !(0b11 << (2 * u32::from(key)));
        p
    }

    /// Enables `key` (clears both bits).
    #[must_use]
    pub fn enable(mut self, key: u8) -> Pkru {
        self.0 &= !(0b11 << (2 * u32::from(key)));
        self
    }

    /// Disables `key` entirely (sets access-disable).
    #[must_use]
    pub fn disable(mut self, key: u8) -> Pkru {
        self.0 |= 1 << (2 * u32::from(key));
        self
    }

    /// Whether reads through `key` pages are permitted.
    pub fn may_read(self, key: u8) -> bool {
        self.0 >> (2 * u32::from(key)) & 1 == 0
    }

    /// Whether writes through `key` pages are permitted.
    pub fn may_write(self, key: u8) -> bool {
        self.may_read(key) && self.0 >> (2 * u32::from(key) + 1) & 1 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_keys_then_exhausted() {
        let mut a = KeyAllocator::new();
        let keys: Vec<u8> = std::iter::from_fn(|| a.pkey_alloc()).collect();
        assert_eq!(keys.len(), 15);
        assert_eq!(keys[0], 1);
        assert_eq!(keys[14], 15);
        assert_eq!(a.pkey_alloc(), None);
        a.pkey_free(7);
        assert_eq!(a.pkey_alloc(), Some(7));
    }

    #[test]
    fn reservation_reduces_supply() {
        let mut a = KeyAllocator::new();
        a.reserve(5);
        assert_eq!(a.available(), 10);
        let first = a.pkey_alloc().unwrap();
        assert_eq!(first, 6, "reserved keys 1–5 are skipped");
    }

    #[test]
    fn pkru_stripe_masking() {
        let p = Pkru::only_stripe(3);
        assert!(p.may_read(0), "key 0 always accessible");
        assert!(p.may_write(0));
        assert!(p.may_read(3) && p.may_write(3));
        for k in 1..=15u8 {
            if k != 3 {
                assert!(!p.may_read(k), "key {k} must be denied");
            }
        }
    }

    #[test]
    fn enable_disable_roundtrip() {
        let p = Pkru::deny_all_stripes().enable(9);
        assert!(p.may_read(9));
        let p = p.disable(9);
        assert!(!p.may_read(9));
        assert!(!p.may_write(9));
    }

    #[test]
    fn matches_access_ctx_semantics() {
        // sfi_x86::emu::AccessCtx must agree with Pkru bit layout.
        use sfi_x86::emu::AccessCtx;
        let p = Pkru::only_stripe(4);
        let ctx = AccessCtx { pkru: p.0 };
        for k in 0..=15u8 {
            assert_eq!(p.may_read(k), ctx.may_read(k), "key {k} read");
            assert_eq!(p.may_write(k), ctx.may_write(k), "key {k} write");
        }
    }
}
