//! ARM MTE-style memory tagging: the granule tag store and its costs.
//!
//! §7 of the paper prototypes ColorGuard on MTE and finds two systemic
//! costs, both reproduced by this model:
//!
//! 1. **Bulk tagging is slow from user space** (Observation 1): the `stg`/
//!    `st2g` instructions tag at most two 16-byte granules each, so striping
//!    a 64 KiB linear memory takes 2,048 instructions; kernel bulk-tagging
//!    interfaces are not exposed. [`TagStore::user_tag_cost_ns`] models this.
//! 2. **`madvise(MADV_DONTNEED)` discards tags** (Observation 2): recycling
//!    an instance slot destroys its stripe colors, forcing a full re-tag,
//!    unlike MPK where colors live in PTEs and survive. The discard happens
//!    in [`crate::AddressSpace::madvise_dontneed`].

use std::collections::HashMap;

/// MTE granule size: one 4-bit tag per 16 bytes.
pub const GRANULE: u64 = 16;

/// Granules tagged per user-level tagging instruction (`st2g`).
pub const GRANULES_PER_INST: u64 = 2;

/// A sparse 4-bit-per-granule tag store.
///
/// Tags default to 0; only non-zero tags are materialized, so tagging cost
/// accounting works even for address spaces with terabytes of reservations.
#[derive(Debug, Clone, Default)]
pub struct TagStore {
    /// granule index → tag (0 entries elided).
    tags: HashMap<u64, u8>,
    /// Cumulative user-level tagging instructions executed.
    tag_insts: u64,
}

impl TagStore {
    /// An empty tag store (all tags zero).
    pub fn new() -> TagStore {
        TagStore::default()
    }

    /// The tag of the granule containing `addr`.
    pub fn tag_at(&self, addr: u64) -> u8 {
        self.tags.get(&(addr / GRANULE)).copied().unwrap_or(0)
    }

    /// Tags `[addr, addr+len)` with `tag` using user-level instructions,
    /// charging [`GRANULES_PER_INST`] granules per instruction.
    ///
    /// Returns the number of tagging instructions executed.
    pub fn set_range(&mut self, addr: u64, len: u64, tag: u8) -> u64 {
        let tag = tag & 0xF;
        let first = addr / GRANULE;
        let last = (addr + len).div_ceil(GRANULE);
        for g in first..last {
            if tag == 0 {
                self.tags.remove(&g);
            } else {
                self.tags.insert(g, tag);
            }
        }
        let insts = (last - first).div_ceil(GRANULES_PER_INST);
        self.tag_insts += insts;
        insts
    }

    /// Clears tags in `[addr, addr+len)` *without* charging user
    /// instructions — this models the kernel-side discard performed by
    /// `madvise(MADV_DONTNEED)`.
    pub fn clear_range(&mut self, addr: u64, len: u64) {
        let first = addr / GRANULE;
        let last = (addr + len).div_ceil(GRANULE);
        if last - first < self.tags.len() as u64 {
            for g in first..last {
                self.tags.remove(&g);
            }
        } else {
            self.tags.retain(|&g, _| g < first || g >= last);
        }
    }

    /// Total user-level tagging instructions executed so far.
    pub fn tag_insts(&self) -> u64 {
        self.tag_insts
    }

    /// Modeled wall time for user-level tagging of `len` bytes, in
    /// nanoseconds.
    ///
    /// Calibrated against §7's measurement: initializing a 64 KiB linear
    /// memory goes from 79 µs to 2,182 µs with MTE — ≈ 2.1 ms of tagging
    /// overhead for 64 KiB, i.e. ≈ 32 ns per byte (the Pixel's user-level
    /// `st2g` loop, including its fault and barrier costs).
    pub fn user_tag_cost_ns(len: u64) -> f64 {
        const NS_PER_BYTE: f64 = 32.1;
        len as f64 * NS_PER_BYTE
    }

    /// Modeled wall time for the kernel's tag *clearing* during
    /// `madvise(MADV_DONTNEED)`, in nanoseconds (§7, Observation 2:
    /// deallocation goes from 29 µs to 377 µs per 64 KiB instance).
    pub fn kernel_tag_clear_cost_ns(len: u64) -> f64 {
        const NS_PER_BYTE: f64 = 5.3;
        len as f64 * NS_PER_BYTE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        let mut t = TagStore::new();
        t.set_range(0x1000, 64, 0x9);
        assert_eq!(t.tag_at(0x1000), 0x9);
        assert_eq!(t.tag_at(0x103F), 0x9);
        assert_eq!(t.tag_at(0x1040), 0);
    }

    #[test]
    fn instruction_accounting() {
        let mut t = TagStore::new();
        // 64 KiB = 4096 granules = 2048 st2g instructions.
        let insts = t.set_range(0, 65536, 0x3);
        assert_eq!(insts, 2048);
        assert_eq!(t.tag_insts(), 2048);
        // Odd granule counts round up.
        let insts = t.set_range(0x100000, 48, 0x1); // 3 granules
        assert_eq!(insts, 2);
    }

    #[test]
    fn clear_range_is_free() {
        let mut t = TagStore::new();
        t.set_range(0, 4096, 0x5);
        let before = t.tag_insts();
        t.clear_range(0, 4096);
        assert_eq!(t.tag_insts(), before, "kernel discard charges no user instructions");
        assert_eq!(t.tag_at(0), 0);
    }

    #[test]
    fn tag_is_four_bits() {
        let mut t = TagStore::new();
        t.set_range(0, 16, 0xFF);
        assert_eq!(t.tag_at(0), 0xF);
    }

    #[test]
    fn cost_model_matches_paper_scale() {
        // §7: per-instance init overhead ≈ 2,182 µs − 79 µs for 64 KiB.
        let per_instance_us = TagStore::user_tag_cost_ns(65536) / 1000.0;
        assert!((1800.0..=2400.0).contains(&per_instance_us), "got {per_instance_us} µs");
        // And teardown overhead ≈ 377 µs − 29 µs.
        let clear_us = TagStore::kernel_tag_clear_cost_ns(65536) / 1000.0;
        assert!((300.0..=400.0).contains(&clear_us), "got {clear_us} µs");
    }

    #[test]
    fn zero_tag_entries_are_elided() {
        let mut t = TagStore::new();
        t.set_range(0, 4096, 0x2);
        t.set_range(0, 4096, 0x0);
        assert_eq!(t.tags.len(), 0, "zero tags must not accumulate");
    }
}
