//! The address space: VMAs, permissions, lazy page contents.

use std::collections::{BTreeMap, HashMap};

use sfi_x86::emu::{AccessCtx, MemBus};
use sfi_x86::{MemFault, Width};

use crate::chaos::{FaultPlan, SyscallKind};
use crate::mpk::KeyAllocator;
use crate::mte::TagStore;
use crate::tlb::Tlb;

/// OS page size (4 KiB), the granularity of all mapping operations.
pub const OS_PAGE_SIZE: u64 = 4096;

/// Linux's default `vm.max_map_count`.
///
/// Each MPK stripe is a separate VMA, so ColorGuard deployments must raise
/// this limit (§5.1); the model enforces it for the same reason.
pub const DEFAULT_MAX_MAP_COUNT: usize = 65_530;

/// Page protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
}

impl Prot {
    /// `PROT_NONE` — no access; the guard-region protection.
    pub const NONE: Prot = Prot { r: false, w: false };
    /// `PROT_READ`.
    pub const READ: Prot = Prot { r: true, w: false };
    /// `PROT_READ | PROT_WRITE`.
    pub const READ_WRITE: Prot = Prot { r: true, w: true };
}

/// A mapping-operation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// Address or length not page-aligned.
    Unaligned,
    /// The range exceeds the user virtual address space.
    OutOfAddressSpace,
    /// The range overlaps an existing mapping (for non-fixed maps).
    Overlap,
    /// The `vm.max_map_count` limit would be exceeded.
    TooManyMappings,
    /// The range is not fully mapped (for `mprotect`/`madvise`).
    NotMapped,
    /// An invalid or unallocated protection key was used.
    BadKey,
    /// A fault injected by the attached [`FaultPlan`] (models transient
    /// `ENOMEM`/`EAGAIN` from the kernel).
    Injected,
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::Unaligned => f.write_str("address or length not page-aligned"),
            MapError::OutOfAddressSpace => f.write_str("range exceeds user address space"),
            MapError::Overlap => f.write_str("range overlaps an existing mapping"),
            MapError::TooManyMappings => f.write_str("vm.max_map_count exceeded"),
            MapError::NotMapped => f.write_str("range is not fully mapped"),
            MapError::BadKey => f.write_str("invalid protection key"),
            MapError::Injected => f.write_str("injected fault (chaos plan)"),
        }
    }
}

impl std::error::Error for MapError {}

/// One virtual memory area (kernel-style `[start, end)` with uniform
/// attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Vma {
    end: u64,
    prot: Prot,
    /// MPK protection key (0 = default).
    pkey: u8,
    /// Whether MTE tag checking is enabled for this VMA.
    mte: bool,
}

/// A read-only snapshot of a VMA, for inspection and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmaInfo {
    /// Start address (inclusive).
    pub start: u64,
    /// End address (exclusive).
    pub end: u64,
    /// Protection.
    pub prot: Prot,
    /// MPK key.
    pub pkey: u8,
    /// MTE enabled.
    pub mte: bool,
}

/// A sparse model of one process address space.
///
/// Contents are materialized lazily, one 4 KiB page at a time, on first
/// write — so reserving terabytes (as guard-region SFI does) costs only VMA
/// bookkeeping, while executed code still reads and writes real bytes.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    va_bits: u32,
    max_map_count: usize,
    vmas: BTreeMap<u64, Vma>,
    pages: HashMap<u64, Box<[u8]>>,
    /// MPK key allocator (15 user keys).
    pub keys: KeyAllocator,
    /// MTE tag store (tags exist regardless; VMAs opt into checking).
    pub tags: TagStore,
    /// dTLB model, consulted on every emulated access.
    pub dtlb: Tlb,
    mmap_cursor: u64,
    /// Optional deterministic fault-injection plan.
    chaos: Option<FaultPlan>,
    /// High-water mark of [`AddressSpace::map_count`] — the telemetry gauge
    /// behind the `vm.max_map_count` sizing guidance (§5.1).
    peak_map_count: usize,
}

impl AddressSpace {
    /// A 48-bit (47 usable user bits) address space — the x86-64 default.
    pub fn new_48bit() -> AddressSpace {
        AddressSpace::with_va_bits(48)
    }

    /// A 57-bit address space (5-level paging, §8).
    pub fn new_57bit() -> AddressSpace {
        AddressSpace::with_va_bits(57)
    }

    /// An address space with the given total VA width. User space gets half
    /// (one fewer bit), as on Linux.
    pub fn with_va_bits(va_bits: u32) -> AddressSpace {
        assert!((32..=57).contains(&va_bits), "va_bits must be in 32..=57");
        AddressSpace {
            va_bits,
            max_map_count: DEFAULT_MAX_MAP_COUNT,
            vmas: BTreeMap::new(),
            pages: HashMap::new(),
            keys: KeyAllocator::new(),
            tags: TagStore::new(),
            dtlb: Tlb::for_va_bits(va_bits),
            mmap_cursor: 0x10_0000, // skip the traditional NULL-guard low MiB
            chaos: None,
            peak_map_count: 0,
        }
    }

    /// Attaches (or detaches, with `None`) a deterministic fault-injection
    /// plan. An attached plan that never fires leaves behaviour identical
    /// to no plan at all.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.chaos = plan;
    }

    /// The attached fault plan, if any (counters and stats are visible
    /// through it).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_ref()
    }

    /// Consults the chaos plan for one mapping call of `kind`.
    fn chaos_gate(&mut self, kind: SyscallKind) -> Result<(), MapError> {
        match &mut self.chaos {
            Some(plan) => {
                if plan.syscall_fires(kind) {
                    Err(MapError::Injected)
                } else {
                    Ok(())
                }
            }
            None => Ok(()),
        }
    }

    /// Usable user-space bytes (half the VA width, as on Linux).
    pub fn user_span(&self) -> u64 {
        1u64 << (self.va_bits - 1)
    }

    /// Overrides the `vm.max_map_count` limit (the sysctl ColorGuard
    /// deployments raise).
    pub fn set_max_map_count(&mut self, n: usize) {
        self.max_map_count = n;
    }

    /// Current number of VMAs.
    pub fn map_count(&self) -> usize {
        self.vmas.len()
    }

    /// The highest VMA count this space ever reached — the number a
    /// deployment must provision `vm.max_map_count` for.
    pub fn peak_map_count(&self) -> usize {
        self.peak_map_count
    }

    /// Snapshot of all VMAs in address order.
    pub fn vmas(&self) -> Vec<VmaInfo> {
        self.vmas
            .iter()
            .map(|(&start, v)| VmaInfo { start, end: v.end, prot: v.prot, pkey: v.pkey, mte: v.mte })
            .collect()
    }

    /// The VMA containing `addr`, if any.
    pub fn vma_at(&self, addr: u64) -> Option<VmaInfo> {
        let (&start, v) = self.vmas.range(..=addr).next_back()?;
        (addr < v.end)
            .then_some(VmaInfo { start, end: v.end, prot: v.prot, pkey: v.pkey, mte: v.mte })
    }

    fn check_range(&self, addr: u64, len: u64) -> Result<(), MapError> {
        if !addr.is_multiple_of(OS_PAGE_SIZE) || !len.is_multiple_of(OS_PAGE_SIZE) || len == 0 {
            return Err(MapError::Unaligned);
        }
        let end = addr.checked_add(len).ok_or(MapError::OutOfAddressSpace)?;
        if end > self.user_span() {
            return Err(MapError::OutOfAddressSpace);
        }
        Ok(())
    }

    fn overlaps(&self, addr: u64, end: u64) -> bool {
        if let Some((_, v)) = self.vmas.range(..addr).next_back() {
            if v.end > addr {
                return true;
            }
        }
        self.vmas.range(addr..end).next().is_some()
    }

    /// Maps `len` bytes at a kernel-chosen address; returns the address.
    pub fn mmap(&mut self, len: u64, prot: Prot) -> Result<u64, MapError> {
        let len = round_up(len);
        // First-fit from the cursor.
        let mut addr = self.mmap_cursor;
        loop {
            let end = addr.checked_add(len).ok_or(MapError::OutOfAddressSpace)?;
            if end > self.user_span() {
                return Err(MapError::OutOfAddressSpace);
            }
            if !self.overlaps(addr, end) {
                break;
            }
            // Skip past the blocking VMA.
            let (_, v) = self.vmas.range(..end).next_back().expect("overlap implies a vma");
            addr = v.end;
        }
        self.mmap_fixed(addr, len, prot)?;
        self.mmap_cursor = addr + len;
        Ok(addr)
    }

    /// Maps `[addr, addr+len)` (like `mmap(MAP_FIXED_NOREPLACE)`): fails on
    /// overlap.
    pub fn mmap_fixed(&mut self, addr: u64, len: u64, prot: Prot) -> Result<(), MapError> {
        self.chaos_gate(SyscallKind::Mmap)?;
        self.check_range(addr, len)?;
        let end = addr + len;
        if self.overlaps(addr, end) {
            return Err(MapError::Overlap);
        }
        self.insert_vma(addr, Vma { end, prot, pkey: 0, mte: false })?;
        Ok(())
    }

    /// Unmaps `[addr, addr+len)`; pages and their contents are discarded.
    pub fn munmap(&mut self, addr: u64, len: u64) -> Result<(), MapError> {
        self.check_range(addr, len)?;
        let end = addr + len;
        self.split_at(addr)?;
        self.split_at(end)?;
        let keys: Vec<u64> = self.vmas.range(addr..end).map(|(&s, _)| s).collect();
        for k in keys {
            self.vmas.remove(&k);
        }
        self.discard_pages(addr, end);
        Ok(())
    }

    /// Changes protection on a fully mapped range (`mprotect`).
    pub fn mprotect(&mut self, addr: u64, len: u64, prot: Prot) -> Result<(), MapError> {
        self.chaos_gate(SyscallKind::Mprotect)?;
        self.update_range(addr, len, |v| v.prot = prot)
    }

    /// Changes protection *and* assigns an MPK key (`pkey_mprotect`).
    ///
    /// The key must have been allocated from [`AddressSpace::keys`] (key 0,
    /// the default, is always valid).
    pub fn pkey_mprotect(&mut self, addr: u64, len: u64, prot: Prot, key: u8) -> Result<(), MapError> {
        self.chaos_gate(SyscallKind::PkeyMprotect)?;
        if key != 0 && !self.keys.is_allocated(key) {
            return Err(MapError::BadKey);
        }
        self.update_range(addr, len, |v| {
            v.prot = prot;
            v.pkey = key;
        })
    }

    /// Enables or disables MTE checking on a mapped range.
    pub fn set_mte(&mut self, addr: u64, len: u64, enabled: bool) -> Result<(), MapError> {
        self.update_range(addr, len, |v| v.mte = enabled)
    }

    /// `madvise(MADV_DONTNEED)`: zeroes the range's contents while keeping
    /// the mapping — the call Wasm runtimes use to recycle instance slots.
    ///
    /// Faithful to Linux/MTE semantics, this also **discards MTE tags** in
    /// the range (§7, Observation 2) while MPK keys (stored in PTEs) are
    /// left intact.
    pub fn madvise_dontneed(&mut self, addr: u64, len: u64) -> Result<(), MapError> {
        self.chaos_gate(SyscallKind::Madvise)?;
        self.check_range(addr, len)?;
        if !self.fully_mapped(addr, addr + len) {
            return Err(MapError::NotMapped);
        }
        self.discard_pages(addr, addr + len);
        self.tags.clear_range(addr, len);
        Ok(())
    }

    /// Whether `[addr, end)` is covered by mappings without gaps.
    pub fn fully_mapped(&self, addr: u64, end: u64) -> bool {
        let mut at = addr;
        while at < end {
            match self.vma_at(at) {
                Some(v) => at = v.end,
                None => return false,
            }
        }
        true
    }

    /// Reads bytes without permission checks (host/debug access).
    pub fn read_unchecked(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            let page = a / OS_PAGE_SIZE;
            *b = match self.pages.get(&page) {
                Some(p) => p[(a % OS_PAGE_SIZE) as usize],
                None => 0,
            };
        }
    }

    /// Writes bytes without permission checks (host/debug access).
    pub fn write_unchecked(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr + i as u64;
            let page = a / OS_PAGE_SIZE;
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0u8; OS_PAGE_SIZE as usize].into_boxed_slice());
            p[(a % OS_PAGE_SIZE) as usize] = b;
        }
    }

    // ---- internals ----

    fn insert_vma(&mut self, start: u64, vma: Vma) -> Result<(), MapError> {
        let end = vma.end;
        self.vmas.insert(start, vma);
        self.merge_range(start, end);
        if self.vmas.len() > self.max_map_count {
            // Undo-ish: the kernel fails the call; we mirror by removing.
            self.vmas.remove(&start);
            return Err(MapError::TooManyMappings);
        }
        self.peak_map_count = self.peak_map_count.max(self.vmas.len());
        Ok(())
    }

    /// Splits the VMA containing `at` so that `at` becomes a boundary.
    fn split_at(&mut self, at: u64) -> Result<(), MapError> {
        if !at.is_multiple_of(OS_PAGE_SIZE) {
            return Err(MapError::Unaligned);
        }
        if let Some((&start, &v)) = self.vmas.range(..at).next_back() {
            if at > start && at < v.end {
                if self.vmas.len() + 1 > self.max_map_count {
                    return Err(MapError::TooManyMappings);
                }
                self.vmas.insert(start, Vma { end: at, ..v });
                self.vmas.insert(at, v);
                self.peak_map_count = self.peak_map_count.max(self.vmas.len());
            }
        }
        Ok(())
    }

    fn update_range(
        &mut self,
        addr: u64,
        len: u64,
        f: impl Fn(&mut Vma),
    ) -> Result<(), MapError> {
        self.check_range(addr, len)?;
        let end = addr + len;
        if !self.fully_mapped(addr, end) {
            return Err(MapError::NotMapped);
        }
        self.split_at(addr)?;
        self.split_at(end)?;
        let keys: Vec<u64> = self.vmas.range(addr..end).map(|(&s, _)| s).collect();
        for k in &keys {
            f(self.vmas.get_mut(k).expect("collected above"));
        }
        self.merge_range(addr, end);
        Ok(())
    }

    /// Kernel-style merging of adjacent VMAs with identical attributes over
    /// `[lo, hi]` (plus the VMA immediately before `lo`) — this is what
    /// keeps the map count at one-VMA-per-stripe rather than one per call.
    fn merge_range(&mut self, lo: u64, hi: u64) {
        let mut cur = self
            .vmas
            .range(..lo)
            .next_back()
            .map(|(&s, _)| s)
            .or_else(|| self.vmas.range(lo..).next().map(|(&s, _)| s));
        while let Some(s) = cur {
            if s > hi {
                break;
            }
            let Some(&v) = self.vmas.get(&s) else { break };
            let next = self.vmas.range(v.end..).next().map(|(&ns, &nv)| (ns, nv));
            match next {
                Some((ns, nv))
                    if ns == v.end
                        && nv.prot == v.prot
                        && nv.pkey == v.pkey
                        && nv.mte == v.mte =>
                {
                    // Absorb the neighbour and stay put: there may be more.
                    self.vmas.remove(&ns);
                    self.vmas.get_mut(&s).expect("exists").end = nv.end;
                }
                _ => {
                    cur = self.vmas.range(s + 1..).next().map(|(&n, _)| n);
                }
            }
        }
    }

    fn discard_pages(&mut self, addr: u64, end: u64) {
        let first = addr / OS_PAGE_SIZE;
        let last = end.div_ceil(OS_PAGE_SIZE);
        // For huge ranges, sweep the (small) materialized-page map instead
        // of iterating billions of page numbers.
        if last - first < self.pages.len() as u64 {
            for p in first..last {
                self.pages.remove(&p);
            }
        } else {
            self.pages.retain(|&p, _| p < first || p >= last);
        }
    }

    /// The access check shared by loads and stores. Returns the MTE-stripped
    /// address on success.
    fn check_access(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        ctx: AccessCtx,
    ) -> Result<u64, MemFault> {
        // Strip the MTE pointer tag (top byte ignore).
        let ptr_tag = ((addr >> 56) & 0xF) as u8;
        let addr = addr & 0x00FF_FFFF_FFFF_FFFF;
        let vma = self.vma_at(addr).ok_or(MemFault::Unmapped { addr })?;
        if !vma.prot.r || (write && !vma.prot.w) {
            return Err(MemFault::Protection { addr });
        }
        if vma.pkey != 0 {
            let ok = if write { ctx.may_write(vma.pkey) } else { ctx.may_read(vma.pkey) };
            if !ok {
                return Err(MemFault::PkuViolation { addr, key: vma.pkey });
            }
        }
        // Hardware faults per page: an access that straddles out of this VMA
        // must satisfy mapping, protection, and pkey on the tail VMA too.
        // (Widths are <= 16 bytes, so an access spans at most two VMAs.)
        if addr + len > vma.end {
            let tail = self.vma_at(addr + len - 1).ok_or(MemFault::Unmapped { addr: vma.end })?;
            if !tail.prot.r || (write && !tail.prot.w) {
                return Err(MemFault::Protection { addr: vma.end });
            }
            if tail.pkey != 0 {
                let ok =
                    if write { ctx.may_write(tail.pkey) } else { ctx.may_read(tail.pkey) };
                if !ok {
                    return Err(MemFault::PkuViolation { addr: vma.end, key: tail.pkey });
                }
            }
        }
        if vma.mte {
            let mem_tag = self.tags.tag_at(addr);
            if mem_tag != ptr_tag {
                return Err(MemFault::MteTagMismatch { addr, ptr_tag, mem_tag });
            }
        }
        self.dtlb.access(addr);
        Ok(addr)
    }
}

fn round_up(len: u64) -> u64 {
    len.div_ceil(OS_PAGE_SIZE) * OS_PAGE_SIZE
}

impl MemBus for AddressSpace {
    fn load(&mut self, addr: u64, width: Width, ctx: AccessCtx) -> Result<u64, MemFault> {
        if let Some(plan) = &mut self.chaos {
            if let Some(fault) = plan.bus_fires(addr) {
                return Err(fault);
            }
        }
        let addr = self.check_access(addr, width.bytes(), false, ctx)?;
        let mut buf = [0u8; 8];
        self.read_unchecked(addr, &mut buf[..width.bytes() as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    fn store(&mut self, addr: u64, width: Width, val: u64, ctx: AccessCtx) -> Result<(), MemFault> {
        if let Some(plan) = &mut self.chaos {
            if let Some(fault) = plan.bus_fires(addr) {
                return Err(fault);
            }
        }
        let addr = self.check_access(addr, width.bytes(), true, ctx)?;
        self.write_unchecked(addr, &val.to_le_bytes()[..width.bytes() as usize]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_and_rw() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(8192, Prot::READ_WRITE).unwrap();
        let ctx = AccessCtx::ALL_ENABLED;
        s.store(a + 16, Width::Q, 0xABCD, ctx).unwrap();
        assert_eq!(s.load(a + 16, Width::Q, ctx).unwrap(), 0xABCD);
        // Zero-fill on untouched pages.
        assert_eq!(s.load(a + 4096, Width::Q, ctx).unwrap(), 0);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut s = AddressSpace::new_48bit();
        let ctx = AccessCtx::ALL_ENABLED;
        assert!(matches!(s.load(0x5000, Width::D, ctx), Err(MemFault::Unmapped { .. })));
    }

    #[test]
    fn guard_region_faults() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        // Adjacent PROT_NONE guard.
        s.mmap_fixed(a + 4096, 4096, Prot::NONE).unwrap();
        let ctx = AccessCtx::ALL_ENABLED;
        assert!(matches!(
            s.load(a + 4096, Width::D, ctx),
            Err(MemFault::Protection { .. })
        ));
        // Write to read-only also faults.
        s.mprotect(a, 4096, Prot::READ).unwrap();
        assert!(matches!(
            s.store(a, Width::D, 1, ctx),
            Err(MemFault::Protection { .. })
        ));
    }

    #[test]
    fn straddling_access_checks_the_tail_vma() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        let ctx = AccessCtx::ALL_ENABLED;
        // Last byte lands in an adjacent PROT_NONE guard: per-page fault.
        s.mmap_fixed(a + 4096, 4096, Prot::NONE).unwrap();
        assert_eq!(
            s.load(a + 4096 - 2, Width::D, ctx),
            Err(MemFault::Protection { addr: a + 4096 })
        );
        // Last byte lands past the end of the mapping entirely.
        let b = s.mmap(4096, Prot::READ_WRITE).unwrap();
        assert_eq!(
            s.load(b + 4096 - 2, Width::D, ctx),
            Err(MemFault::Unmapped { addr: b + 4096 })
        );
        // Straddling into another readable VMA is fine.
        s.mprotect(a + 4096, 4096, Prot::READ_WRITE).unwrap();
        assert_eq!(s.load(a + 4096 - 2, Width::D, ctx).unwrap(), 0);
    }

    #[test]
    fn straddling_into_a_foreign_pkey_faults() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(8192, Prot::READ_WRITE).unwrap();
        let key = s.keys.pkey_alloc().unwrap();
        s.pkey_mprotect(a + 4096, 4096, Prot::READ_WRITE, key).unwrap();
        let deny = AccessCtx { pkru: 1 << (2 * key) };
        assert_eq!(
            s.load(a + 4096 - 2, Width::D, deny),
            Err(MemFault::PkuViolation { addr: a + 4096, key })
        );
    }

    #[test]
    fn vma_merging_keeps_map_count_low() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096 * 4, Prot::READ_WRITE).unwrap();
        assert_eq!(s.map_count(), 1);
        // mprotect the middle, then back: 3 VMAs then merge to 1.
        s.mprotect(a + 4096, 4096, Prot::READ).unwrap();
        assert_eq!(s.map_count(), 3);
        s.mprotect(a + 4096, 4096, Prot::READ_WRITE).unwrap();
        assert_eq!(s.map_count(), 1);
    }

    #[test]
    fn max_map_count_enforced() {
        let mut s = AddressSpace::new_48bit();
        s.set_max_map_count(4);
        // Alternate protections so VMAs cannot merge.
        let base = 0x10_0000u64;
        for i in 0..4u64 {
            let prot = if i % 2 == 0 { Prot::READ_WRITE } else { Prot::NONE };
            s.mmap_fixed(base + i * 4096, 4096, prot).unwrap();
        }
        assert_eq!(s.map_count(), 4);
        let e = s.mmap_fixed(base + 5 * 4096, 4096, Prot::READ_WRITE);
        assert_eq!(e, Err(MapError::TooManyMappings));
    }

    #[test]
    fn munmap_discards_contents() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        let ctx = AccessCtx::ALL_ENABLED;
        s.store(a, Width::Q, 7, ctx).unwrap();
        s.munmap(a, 4096).unwrap();
        assert!(matches!(s.load(a, Width::Q, ctx), Err(MemFault::Unmapped { .. })));
        // Re-mapping sees zeroes.
        s.mmap_fixed(a, 4096, Prot::READ_WRITE).unwrap();
        assert_eq!(s.load(a, Width::Q, ctx).unwrap(), 0);
    }

    #[test]
    fn madvise_zeroes_but_keeps_mapping() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(8192, Prot::READ_WRITE).unwrap();
        let ctx = AccessCtx::ALL_ENABLED;
        s.store(a + 8, Width::Q, 42, ctx).unwrap();
        s.madvise_dontneed(a, 8192).unwrap();
        assert_eq!(s.load(a + 8, Width::Q, ctx).unwrap(), 0, "madvise zeroes");
        assert_eq!(s.map_count(), 1, "mapping survives");
    }

    #[test]
    fn pkey_checks() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        let key = s.keys.pkey_alloc().unwrap();
        s.pkey_mprotect(a, 4096, Prot::READ_WRITE, key).unwrap();
        // PKRU with this key's access-disable bit set.
        let deny = AccessCtx { pkru: 1 << (2 * key) };
        assert!(matches!(
            s.load(a, Width::D, deny),
            Err(MemFault::PkuViolation { .. })
        ));
        // Write-disable only.
        let ro = AccessCtx { pkru: 1 << (2 * key + 1) };
        assert!(s.load(a, Width::D, ro).is_ok());
        assert!(matches!(s.store(a, Width::D, 1, ro), Err(MemFault::PkuViolation { .. })));
        // All enabled.
        assert!(s.store(a, Width::D, 1, AccessCtx::ALL_ENABLED).is_ok());
    }

    #[test]
    fn unallocated_pkey_rejected() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        assert_eq!(s.pkey_mprotect(a, 4096, Prot::READ_WRITE, 5), Err(MapError::BadKey));
    }

    #[test]
    fn huge_reservations_are_cheap() {
        let mut s = AddressSpace::new_48bit();
        // Reserve 1 TiB; only bookkeeping should happen.
        let a = s.mmap(1 << 40, Prot::NONE).unwrap();
        assert_eq!(s.map_count(), 1);
        s.mprotect(a, 1 << 30, Prot::READ_WRITE).unwrap();
        let ctx = AccessCtx::ALL_ENABLED;
        s.store(a + (1 << 29), Width::Q, 9, ctx).unwrap();
        assert_eq!(s.load(a + (1 << 29), Width::Q, ctx).unwrap(), 9);
    }

    #[test]
    fn address_space_exhaustion() {
        let mut s = AddressSpace::with_va_bits(32); // 2 GiB user space
        assert!(s.mmap(4 << 30, Prot::NONE).is_err());
        let half = s.mmap(1 << 30, Prot::NONE).unwrap();
        assert!(half < 1 << 31);
        // 57-bit spaces fit vastly more.
        let s57 = AddressSpace::new_57bit();
        assert_eq!(s57.user_span(), 1 << 56);
    }

    #[test]
    fn mte_tag_checking() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        s.set_mte(a, 4096, true).unwrap();
        s.tags.set_range(a, 4096, 0x3);
        let ctx = AccessCtx::ALL_ENABLED;
        // Pointer with matching tag in bits 59:56.
        let tagged = a | (0x3u64 << 56);
        assert!(s.load(tagged, Width::D, ctx).is_ok());
        // Mismatched tag traps.
        let bad = a | (0x5u64 << 56);
        assert!(matches!(
            s.load(bad, Width::D, ctx),
            Err(MemFault::MteTagMismatch { ptr_tag: 5, mem_tag: 3, .. })
        ));
    }

    #[test]
    fn madvise_discards_mte_tags_but_not_pkeys() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        let key = s.keys.pkey_alloc().unwrap();
        s.pkey_mprotect(a, 4096, Prot::READ_WRITE, key).unwrap();
        s.set_mte(a, 4096, true).unwrap();
        s.tags.set_range(a, 4096, 0x7);
        s.madvise_dontneed(a, 4096).unwrap();
        // MTE tags gone (reset to 0)…
        assert_eq!(s.tags.tag_at(a), 0);
        // …but the MPK key survives (it lives in the PTE).
        assert_eq!(s.vma_at(a).unwrap().pkey, key);
    }

    #[test]
    fn vma_iteration_and_lookup() {
        let mut s = AddressSpace::new_48bit();
        let a = s.mmap(4096, Prot::READ_WRITE).unwrap();
        let b = s.mmap(4096, Prot::NONE).unwrap();
        let vmas = s.vmas();
        assert_eq!(vmas.len(), 2);
        assert_eq!(s.vma_at(a).unwrap().prot, Prot::READ_WRITE);
        assert_eq!(s.vma_at(b).unwrap().prot, Prot::NONE);
        assert_eq!(s.vma_at(b + 4096), None);
    }

    #[test]
    fn alignment_errors() {
        let mut s = AddressSpace::new_48bit();
        assert_eq!(s.mmap_fixed(0x1001, 4096, Prot::NONE), Err(MapError::Unaligned));
        assert_eq!(s.mmap_fixed(0x1000, 100, Prot::NONE), Err(MapError::Unaligned));
        // mmap rounds the length up instead.
        let a = s.mmap(100, Prot::READ).unwrap();
        assert_eq!(s.vma_at(a).unwrap().end - a, 4096);
    }
}
