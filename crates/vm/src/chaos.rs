//! Deterministic fault injection (the chaos layer).
//!
//! ColorGuard's containment story is only credible if the *error* paths are
//! exercised: mapping syscalls that fail transiently (`ENOMEM`, map-count
//! pressure) or persistently, and memory accesses that trap mid-execution.
//! A [`FaultPlan`] attached to an [`crate::AddressSpace`] injects both,
//! fully deterministically from one seed:
//!
//! - **Syscall faults**: each `mmap`/`mprotect`/`pkey_mprotect`/`madvise`
//!   call is numbered per kind; a call either fails by explicit directive
//!   ([`FaultPlan::fail_at`]) or by a seeded per-call Bernoulli draw
//!   ([`FaultPlan::seeded`]). A fault may be *transient* (that call only)
//!   or *persistent* (that call and every later call of the same kind).
//! - **Bus faults**: emulated loads/stores are numbered; at chosen access
//!   counts the access raises a spurious [`MemFault::Protection`] — the
//!   model of an asynchronous fault landing mid-guest-execution
//!   ([`FaultPlan::bus_fault_at`], or rate-based in [`FaultPlan::seeded`]).
//!
//! Determinism is *stateless per index*: whether call `n` of kind `k`
//! faults is a pure hash of `(seed, k, n)`, so two runs with the same plan
//! and same call sequence observe identical faults, and a plan that never
//! fires leaves behaviour bit-identical to having no plan at all — the
//! property the cross-crate containment test relies on.

use std::collections::BTreeSet;

use sfi_x86::MemFault;

/// The mapping operations the chaos layer can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// `mmap` / `mmap_fixed`.
    Mmap,
    /// `mprotect`.
    Mprotect,
    /// `pkey_mprotect`.
    PkeyMprotect,
    /// `madvise(MADV_DONTNEED)`.
    Madvise,
}

impl SyscallKind {
    /// All injectable kinds.
    pub const ALL: [SyscallKind; 4] =
        [SyscallKind::Mmap, SyscallKind::Mprotect, SyscallKind::PkeyMprotect, SyscallKind::Madvise];

    /// Stable lowercase name, used as the telemetry label value.
    pub fn name(self) -> &'static str {
        match self {
            SyscallKind::Mmap => "mmap",
            SyscallKind::Mprotect => "mprotect",
            SyscallKind::PkeyMprotect => "pkey_mprotect",
            SyscallKind::Madvise => "madvise",
        }
    }

    fn index(self) -> usize {
        match self {
            SyscallKind::Mmap => 0,
            SyscallKind::Mprotect => 1,
            SyscallKind::PkeyMprotect => 2,
            SyscallKind::Madvise => 3,
        }
    }
}

/// Engine-grade fault injections — what the fleet supervisor's chaos mode
/// does to a whole serving member, driven by the same seeded plans as the
/// syscall/bus faults above. These model the host-level failure surface a
/// dense multi-engine deployment actually sees: a wedged accept loop, a
/// scrape connection cut mid-body, a member process dying mid-round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineFault {
    /// The member stops answering its listener: every poll times out until
    /// the member recovers (the aggregator burns its retry budget).
    HangOnAccept,
    /// The member answers but the response is truncated mid-body — the
    /// scrape parses as garbage and counts as a failed attempt.
    TornResponse,
    /// The member panics mid-round: in-flight work is lost and the
    /// supervisor must recover it by checkpoint replay (or retire it).
    MidRoundPanic,
}

impl EngineFault {
    /// All injectable engine fault kinds.
    pub const ALL: [EngineFault; 3] =
        [EngineFault::HangOnAccept, EngineFault::TornResponse, EngineFault::MidRoundPanic];

    /// Stable lowercase name, used as the telemetry label value.
    pub fn name(self) -> &'static str {
        match self {
            EngineFault::HangOnAccept => "hang_on_accept",
            EngineFault::TornResponse => "torn_response",
            EngineFault::MidRoundPanic => "mid_round_panic",
        }
    }

    fn index(self) -> usize {
        match self {
            EngineFault::HangOnAccept => 0,
            EngineFault::TornResponse => 1,
            EngineFault::MidRoundPanic => 2,
        }
    }
}

/// Seeded fault probabilities for [`FaultPlan::seeded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability that any given mapping call fails (per call, per kind).
    pub syscall_fault_rate: f64,
    /// Probability that a fired syscall fault is persistent rather than
    /// transient.
    pub persistent_prob: f64,
    /// Probability that any given emulated memory access raises a spurious
    /// fault.
    pub bus_fault_rate: f64,
    /// Probability that a given (member, round, attempt) poll draws an
    /// [`EngineFault`] (kind chosen by a second seeded draw).
    pub engine_fault_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            syscall_fault_rate: 0.0,
            persistent_prob: 0.0,
            bus_fault_rate: 0.0,
            engine_fault_rate: 0.0,
        }
    }
}

/// Counters of faults actually injected (for reports and assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Mapping calls failed (all kinds).
    pub syscalls_failed: u64,
    /// Mapping calls failed, broken down per [`SyscallKind`] (indexed as
    /// [`SyscallKind::ALL`]) — the telemetry exporter reads this so
    /// injected `mmap` pressure is distinguishable from `madvise` scrub
    /// failures.
    pub syscalls_failed_by_kind: [u64; 4],
    /// Bus accesses failed.
    pub bus_faults: u64,
    /// Engine-grade faults injected (all kinds).
    pub engine_faults: u64,
    /// Engine-grade faults, broken down per [`EngineFault`] (indexed as
    /// [`EngineFault::ALL`]).
    pub engine_faults_by_kind: [u64; 3],
}

impl ChaosStats {
    /// Injected failures of one syscall kind.
    pub fn failed_of(&self, kind: SyscallKind) -> u64 {
        self.syscalls_failed_by_kind[kind.index()]
    }

    /// Injected engine faults of one kind.
    pub fn engine_faults_of(&self, kind: EngineFault) -> u64 {
        self.engine_faults_by_kind[kind.index()]
    }
}

/// A deterministic fault-injection plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    cfg: ChaosConfig,
    /// Explicit one-shot directives: (kind, call index).
    explicit: BTreeSet<(usize, u64)>,
    /// Explicit persistent directives: all calls of `kind` with index ≥ n
    /// fail.
    persistent_from: [Option<u64>; 4],
    /// Explicit bus-fault access indices.
    bus_at: BTreeSet<u64>,
    /// Explicit engine-fault directives: (member, round) → fault kind
    /// index. Fires on the first poll attempt of that round only.
    engine_at: BTreeSet<(u64, u64, usize)>,
    /// Calls observed so far, per kind.
    calls: [u64; 4],
    /// Bus accesses observed so far.
    accesses: u64,
    /// Faults injected so far.
    pub stats: ChaosStats,
}

impl FaultPlan {
    /// An empty plan (never fires). Useful as a base for explicit
    /// directives.
    pub fn new() -> FaultPlan {
        FaultPlan::seeded(0, ChaosConfig::default())
    }

    /// A plan whose faults are Bernoulli draws derived from `seed` — the
    /// "one seed ⇒ whole fault schedule" constructor.
    pub fn seeded(seed: u64, cfg: ChaosConfig) -> FaultPlan {
        FaultPlan {
            seed,
            cfg,
            explicit: BTreeSet::new(),
            persistent_from: [None; 4],
            bus_at: BTreeSet::new(),
            engine_at: BTreeSet::new(),
            calls: [0; 4],
            accesses: 0,
            stats: ChaosStats::default(),
        }
    }

    /// Adds an explicit transient fault: the `n`-th call (0-based) of
    /// `kind` fails.
    #[must_use]
    pub fn fail_at(mut self, kind: SyscallKind, n: u64) -> FaultPlan {
        self.explicit.insert((kind.index(), n));
        self
    }

    /// Adds an explicit persistent fault: every call of `kind` with index
    /// ≥ `n` fails.
    #[must_use]
    pub fn fail_from(mut self, kind: SyscallKind, n: u64) -> FaultPlan {
        let slot = &mut self.persistent_from[kind.index()];
        *slot = Some(slot.map_or(n, |cur| cur.min(n)));
        self
    }

    /// Adds an explicit spurious bus fault at emulated access number `n`
    /// (0-based, counting loads and stores together).
    #[must_use]
    pub fn bus_fault_at(mut self, n: u64) -> FaultPlan {
        self.bus_at.insert(n);
        self
    }

    /// Adds an explicit engine fault: member `member` suffers `fault` in
    /// round `round` (0-based), on the first poll attempt of that round —
    /// retries after recovery re-draw from the seeded stream instead, so a
    /// scheduled kill cannot re-fire forever.
    #[must_use]
    pub fn engine_fail_at(mut self, member: u64, round: u64, fault: EngineFault) -> FaultPlan {
        self.engine_at.insert((member, round, fault.index()));
        self
    }

    /// Calls observed so far for `kind`.
    pub fn calls_observed(&self, kind: SyscallKind) -> u64 {
        self.calls[kind.index()]
    }

    /// Bus accesses observed so far.
    pub fn accesses_observed(&self) -> u64 {
        self.accesses
    }

    /// SplitMix64-style stateless hash of (seed, stream, index) to a
    /// uniform `f64` in [0, 1).
    fn draw(&self, stream: u64, index: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(index.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Records one call of `kind` and decides whether it faults.
    pub(crate) fn syscall_fires(&mut self, kind: SyscallKind) -> bool {
        let k = kind.index();
        let n = self.calls[k];
        self.calls[k] += 1;

        let fires = self.explicit.contains(&(k, n))
            || self.persistent_from[k].is_some_and(|from| n >= from)
            || (self.cfg.syscall_fault_rate > 0.0 && {
                let fault = self.draw(k as u64, n) < self.cfg.syscall_fault_rate;
                // A seeded fault may be persistent: latch it.
                if fault && self.draw(0x50, n ^ (k as u64) << 32) < self.cfg.persistent_prob {
                    self.persistent_from[k] = Some(n);
                }
                fault
            });
        if fires {
            self.stats.syscalls_failed += 1;
            self.stats.syscalls_failed_by_kind[k] += 1;
        }
        fires
    }

    /// Decides whether poll `attempt` (0-based) of `member` in `round`
    /// suffers an engine-grade fault, and which kind. Stateless per index,
    /// like the syscall stream: the decision is a pure function of
    /// `(seed, member, round, attempt)` plus the explicit directives, so a
    /// supervisor replaying a recovered member observes the identical fault
    /// schedule. Explicit [`FaultPlan::engine_fail_at`] directives fire at
    /// attempt 0 only; seeded draws apply to every attempt (a flaky member
    /// can fail retries too). Public, unlike the syscall/bus hooks: the
    /// fleet supervisor lives in another crate.
    pub fn engine_fires(&mut self, member: u64, round: u64, attempt: u32) -> Option<EngineFault> {
        let explicit = if attempt == 0 {
            EngineFault::ALL
                .into_iter()
                .find(|f| self.engine_at.contains(&(member, round, f.index())))
        } else {
            None
        };
        let fired = explicit.or_else(|| {
            if self.cfg.engine_fault_rate <= 0.0 {
                return None;
            }
            // Pack (member, round, attempt) into one index; the stream
            // constant keeps engine draws independent of syscall/bus draws.
            let index = member
                .wrapping_mul(0x1_0000_0000)
                .wrapping_add(round.wrapping_mul(0x1_0000))
                .wrapping_add(attempt as u64);
            if self.draw(0xE1, index) < self.cfg.engine_fault_rate {
                let kind = (self.draw(0xE2, index) * EngineFault::ALL.len() as f64) as usize;
                Some(EngineFault::ALL[kind.min(EngineFault::ALL.len() - 1)])
            } else {
                None
            }
        });
        if let Some(f) = fired {
            self.stats.engine_faults += 1;
            self.stats.engine_faults_by_kind[f.index()] += 1;
        }
        fired
    }

    /// Records one bus access and decides whether it raises a spurious
    /// fault at `addr`.
    pub(crate) fn bus_fires(&mut self, addr: u64) -> Option<MemFault> {
        let n = self.accesses;
        self.accesses += 1;
        let fires = self.bus_at.contains(&n)
            || (self.cfg.bus_fault_rate > 0.0 && self.draw(0xB5, n) < self.cfg.bus_fault_rate);
        if fires {
            self.stats.bus_faults += 1;
            Some(MemFault::Protection { addr })
        } else {
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut p = FaultPlan::new();
        for _ in 0..1000 {
            assert!(!p.syscall_fires(SyscallKind::Mmap));
            assert!(p.bus_fires(0x1000).is_none());
        }
        assert_eq!(p.stats, ChaosStats::default());
    }

    #[test]
    fn explicit_directives_fire_exactly_once() {
        let mut p = FaultPlan::new().fail_at(SyscallKind::Madvise, 2);
        assert!(!p.syscall_fires(SyscallKind::Madvise));
        assert!(!p.syscall_fires(SyscallKind::Madvise));
        assert!(p.syscall_fires(SyscallKind::Madvise));
        assert!(!p.syscall_fires(SyscallKind::Madvise));
        // Other kinds are independent streams.
        assert!(!p.syscall_fires(SyscallKind::Mmap));
        assert_eq!(p.stats.syscalls_failed, 1);
    }

    #[test]
    fn persistent_directives_latch() {
        let mut p = FaultPlan::new().fail_from(SyscallKind::Mprotect, 3);
        let fired: Vec<bool> = (0..6).map(|_| p.syscall_fires(SyscallKind::Mprotect)).collect();
        assert_eq!(fired, [false, false, false, true, true, true]);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let cfg = ChaosConfig {
            syscall_fault_rate: 0.3,
            persistent_prob: 0.2,
            bus_fault_rate: 0.1,
            ..ChaosConfig::default()
        };
        let mut a = FaultPlan::seeded(42, cfg);
        let mut b = FaultPlan::seeded(42, cfg);
        for i in 0..500 {
            let kind = SyscallKind::ALL[i % 4];
            assert_eq!(a.syscall_fires(kind), b.syscall_fires(kind));
            assert_eq!(a.bus_fires(i as u64).is_some(), b.bus_fires(i as u64).is_some());
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.syscalls_failed > 0, "a 30% rate over 500 calls must fire");
        assert!(a.stats.bus_faults > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ChaosConfig { syscall_fault_rate: 0.5, ..ChaosConfig::default() };
        let mut a = FaultPlan::seeded(1, cfg);
        let mut b = FaultPlan::seeded(2, cfg);
        let fa: Vec<bool> = (0..64).map(|_| a.syscall_fires(SyscallKind::Mmap)).collect();
        let fb: Vec<bool> = (0..64).map(|_| b.syscall_fires(SyscallKind::Mmap)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn explicit_engine_faults_fire_on_first_attempt_only() {
        let mut p = FaultPlan::new()
            .engine_fail_at(1, 2, EngineFault::MidRoundPanic)
            .engine_fail_at(0, 0, EngineFault::HangOnAccept);
        assert_eq!(p.engine_fires(0, 0, 0), Some(EngineFault::HangOnAccept));
        assert_eq!(p.engine_fires(0, 0, 1), None, "retry re-draws, directive spent");
        assert_eq!(p.engine_fires(1, 2, 0), Some(EngineFault::MidRoundPanic));
        assert_eq!(p.engine_fires(1, 1, 0), None, "other rounds untouched");
        assert_eq!(p.engine_fires(2, 2, 0), None, "other members untouched");
        assert_eq!(p.stats.engine_faults, 2);
        assert_eq!(p.stats.engine_faults_of(EngineFault::HangOnAccept), 1);
        assert_eq!(p.stats.engine_faults_of(EngineFault::MidRoundPanic), 1);
        assert_eq!(p.stats.engine_faults_of(EngineFault::TornResponse), 0);
    }

    #[test]
    fn seeded_engine_faults_are_deterministic_and_stateless() {
        let cfg = ChaosConfig { engine_fault_rate: 0.25, ..ChaosConfig::default() };
        let mut a = FaultPlan::seeded(7, cfg);
        let mut b = FaultPlan::seeded(7, cfg);
        let mut fired = 0;
        for member in 0..4u64 {
            for round in 0..32u64 {
                for attempt in 0..3u32 {
                    let fa = a.engine_fires(member, round, attempt);
                    assert_eq!(fa, b.engine_fires(member, round, attempt));
                    fired += u64::from(fa.is_some());
                }
            }
        }
        assert!(fired > 0, "a 25% rate over 384 draws must fire");
        assert_eq!(a.stats.engine_faults, fired);
        // Stateless: re-querying the same index gives the same answer, and
        // draws are independent of the syscall/bus call history.
        let first = FaultPlan::seeded(7, cfg).engine_fires(2, 5, 0);
        let mut busy = FaultPlan::seeded(7, cfg);
        for _ in 0..100 {
            busy.syscall_fires(SyscallKind::Mmap);
            busy.bus_fires(0x1000);
        }
        assert_eq!(busy.engine_fires(2, 5, 0), first);
        // A zero rate never fires and an empty plan stays inert.
        let mut off = FaultPlan::new();
        for round in 0..64 {
            assert_eq!(off.engine_fires(0, round, 0), None);
        }
    }

    #[test]
    fn bus_fault_reports_faulting_address() {
        let mut p = FaultPlan::new().bus_fault_at(1);
        assert!(p.bus_fires(0xAAAA).is_none());
        match p.bus_fires(0xBBBB) {
            Some(MemFault::Protection { addr }) => assert_eq!(addr, 0xBBBB),
            other => panic!("expected injected protection fault, got {other:?}"),
        }
    }
}
