//! dTLB simulation.
//!
//! ColorGuard's throughput advantage over multi-process scaling partly comes
//! from TLB behaviour (Figure 7b): process switches flush the (non-PCID)
//! TLB, while in-process sandbox switches keep it warm. The model also
//! carries the §8 observation that 5-level paging (57-bit VA) makes each
//! miss ~25% more expensive by adding one page-table level.

/// A set-associative TLB with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: usize,
    ways: usize,
    /// Page-table levels walked on a miss (4 for 48-bit VA, 5 for 57-bit).
    pub walk_levels: u32,
    entries: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
    flushes: u64,
}

/// Default dTLB geometry: 64 entries, 4-way (typical L1 dTLB).
pub const DEFAULT_ENTRIES: usize = 64;
/// Default associativity.
pub const DEFAULT_WAYS: usize = 4;

impl Tlb {
    /// A TLB with the default geometry and a walk depth derived from the
    /// address-space width (4 levels up to 48 bits, 5 beyond — §8).
    pub fn for_va_bits(va_bits: u32) -> Tlb {
        Tlb::new(DEFAULT_ENTRIES, DEFAULT_WAYS, if va_bits > 48 { 5 } else { 4 })
    }

    /// A TLB with explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways` or the set count is
    /// not a power of two.
    pub fn new(entries: usize, ways: usize, walk_levels: u32) -> Tlb {
        assert_eq!(entries % ways, 0);
        let sets = entries / ways;
        assert!(sets.is_power_of_two());
        Tlb {
            sets,
            ways,
            walk_levels,
            entries: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            clock: 0,
            accesses: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Translates the page containing `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let page = addr >> 12;
        let set = (page as usize) & (self.sets - 1);
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.entries[base + w] == page {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        self.misses += 1;
        let mut victim = 0;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            if self.entries[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < best {
                best = self.stamps[base + w];
                victim = w;
            }
        }
        self.entries[base + victim] = page;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Full flush (a non-PCID address-space switch).
    pub fn flush(&mut self) {
        self.entries.fill(u64::MAX);
        self.stamps.fill(0);
        self.flushes += 1;
    }

    /// Cycles charged per miss: a constant per page-walk level.
    pub fn miss_cycles(&self) -> f64 {
        const CYCLES_PER_LEVEL: f64 = 7.0;
        f64::from(self.walk_levels) * CYCLES_PER_LEVEL
    }

    /// Total translations.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total flushes.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Resets counters (keeps contents).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
        self.flushes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_touch() {
        let mut t = Tlb::for_va_bits(48);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF)); // same page
        assert!(!t.access(0x2000));
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn flush_forces_remisses() {
        let mut t = Tlb::for_va_bits(48);
        t.access(0x1000);
        t.flush();
        assert!(!t.access(0x1000));
        assert_eq!(t.flushes(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn five_level_walks_cost_25_percent_more() {
        let four = Tlb::for_va_bits(48);
        let five = Tlb::for_va_bits(57);
        let ratio = five.miss_cycles() / four.miss_cycles();
        assert!((ratio - 1.25).abs() < 1e-9, "got {ratio}");
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(4, 2, 4); // tiny: 2 sets × 2 ways
        // Four pages mapping to set 0: pages 0, 2, 4, 6 (even pages).
        for p in [0u64, 2, 4, 6] {
            t.access(p << 12);
        }
        // Page 0 was LRU-evicted.
        assert!(!t.access(0));
        // Page 6 is still resident.
        assert!(t.access(6 << 12));
    }
}
