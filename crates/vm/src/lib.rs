//! # sfi-vm: the virtual-memory substrate
//!
//! A deterministic model of the Linux/x86-64 virtual-memory machinery that
//! ColorGuard depends on:
//!
//! - [`AddressSpace`]: a sparse 48-bit (or 57-bit) address space with
//!   kernel-style VMA tracking (`mmap`/`mprotect`/`munmap`/`madvise`),
//!   including the `vm.max_map_count` limit that ColorGuard deployments must
//!   raise (§5.1 of the paper), and lazily materialized page contents so
//!   terabytes of reservations cost only bookkeeping.
//! - **MPK** ([`mpk`]): per-VMA protection keys (`pkey_alloc`,
//!   `pkey_mprotect`) checked against the PKRU value carried on every
//!   emulated access.
//! - **MTE** ([`mte`]): a 4-bit-per-16-byte-granule tag store with the two
//!   system-call behaviours §7 measures — slow user-level bulk tagging and
//!   tag-discarding `madvise(MADV_DONTNEED)`.
//! - **TLB** ([`tlb`]): a set-associative dTLB model whose walk cost depends
//!   on the paging depth (4-level vs 5-level, §8).
//!
//! [`AddressSpace`] implements [`sfi_x86::emu::MemBus`], so compiled SFI code
//! runs directly against this substrate and out-of-bounds accesses surface
//! as the same faults real hardware would raise (unmapped guard page, PKU
//! violation, MTE tag mismatch).
//!
//! For robustness testing, [`chaos`] provides a deterministic fault-injection
//! plan that can be attached to an [`AddressSpace`] to fail mapping calls
//! (transiently or persistently) and raise spurious bus faults, all derived
//! from one seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod mpk;
pub mod mte;
pub mod tlb;

mod space;

pub use chaos::{ChaosConfig, ChaosStats, EngineFault, FaultPlan, SyscallKind};
pub use space::{AddressSpace, MapError, Prot, VmaInfo, DEFAULT_MAX_MAP_COUNT, OS_PAGE_SIZE};
