//! Property-based tests of the address-space model: arbitrary sequences of
//! mapping operations must preserve the kernel's VMA invariants.

use proptest::prelude::*;
use sfi_vm::{AddressSpace, Prot, OS_PAGE_SIZE};

#[derive(Debug, Clone)]
enum OpKind {
    Mmap { pages: u64, prot: u8 },
    MmapFixed { page: u64, pages: u64, prot: u8 },
    Munmap { page: u64, pages: u64 },
    Mprotect { page: u64, pages: u64, prot: u8 },
    Madvise { page: u64, pages: u64 },
    Write { page: u64, val: u8 },
}

fn prot_of(p: u8) -> Prot {
    match p % 3 {
        0 => Prot::NONE,
        1 => Prot::READ,
        _ => Prot::READ_WRITE,
    }
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (1u64..16, any::<u8>()).prop_map(|(pages, prot)| OpKind::Mmap { pages, prot }),
        (0u64..256, 1u64..16, any::<u8>())
            .prop_map(|(page, pages, prot)| OpKind::MmapFixed { page, pages, prot }),
        (0u64..256, 1u64..16).prop_map(|(page, pages)| OpKind::Munmap { page, pages }),
        (0u64..256, 1u64..16, any::<u8>())
            .prop_map(|(page, pages, prot)| OpKind::Mprotect { page, pages, prot }),
        (0u64..256, 1u64..16).prop_map(|(page, pages)| OpKind::Madvise { page, pages }),
        (0u64..256, any::<u8>()).prop_map(|(page, val)| OpKind::Write { page, val }),
    ]
}

/// VMAs must be sorted, non-overlapping, page-aligned, and fully merged
/// (no adjacent VMAs with identical attributes).
fn assert_vma_invariants(space: &AddressSpace) {
    let vmas = space.vmas();
    for w in vmas.windows(2) {
        assert!(w[0].end <= w[1].start, "VMAs overlap: {w:?}");
        if w[0].end == w[1].start {
            assert!(
                w[0].prot != w[1].prot || w[0].pkey != w[1].pkey || w[0].mte != w[1].mte,
                "unmerged identical neighbours: {w:?}"
            );
        }
    }
    for v in &vmas {
        assert!(v.start < v.end, "empty VMA {v:?}");
        assert_eq!(v.start % OS_PAGE_SIZE, 0);
        assert_eq!(v.end % OS_PAGE_SIZE, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn vma_invariants_hold_under_any_op_sequence(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let base = 0x10_0000u64;
        let mut space = AddressSpace::new_48bit();
        for op in ops {
            // Every operation may fail (overlap, unmapped, …) — failures
            // must leave the invariants intact too.
            match op {
                OpKind::Mmap { pages, prot } => {
                    let _ = space.mmap(pages * OS_PAGE_SIZE, prot_of(prot));
                }
                OpKind::MmapFixed { page, pages, prot } => {
                    let _ = space.mmap_fixed(
                        base + page * OS_PAGE_SIZE,
                        pages * OS_PAGE_SIZE,
                        prot_of(prot),
                    );
                }
                OpKind::Munmap { page, pages } => {
                    let _ = space.munmap(base + page * OS_PAGE_SIZE, pages * OS_PAGE_SIZE);
                }
                OpKind::Mprotect { page, pages, prot } => {
                    let _ = space.mprotect(
                        base + page * OS_PAGE_SIZE,
                        pages * OS_PAGE_SIZE,
                        prot_of(prot),
                    );
                }
                OpKind::Madvise { page, pages } => {
                    let _ = space
                        .madvise_dontneed(base + page * OS_PAGE_SIZE, pages * OS_PAGE_SIZE);
                }
                OpKind::Write { page, val } => {
                    space.write_unchecked(base + page * OS_PAGE_SIZE, &[val]);
                }
            }
            assert_vma_invariants(&space);
        }
    }

    #[test]
    fn contents_survive_round_trips(page in 0u64..64, val in any::<u64>()) {
        use sfi_x86::emu::{AccessCtx, MemBus};
        use sfi_x86::Width;
        let mut space = AddressSpace::new_48bit();
        let a = space.mmap(64 * OS_PAGE_SIZE, Prot::READ_WRITE).expect("mmap");
        let addr = a + page * OS_PAGE_SIZE + 8;
        space.store(addr, Width::Q, val, AccessCtx::ALL_ENABLED).expect("store");
        prop_assert_eq!(
            space.load(addr, Width::Q, AccessCtx::ALL_ENABLED).expect("load"),
            val
        );
        // madvise wipes exactly this content.
        space.madvise_dontneed(a, 64 * OS_PAGE_SIZE).expect("madvise");
        prop_assert_eq!(
            space.load(addr, Width::Q, AccessCtx::ALL_ENABLED).expect("load"),
            0
        );
    }

    #[test]
    fn pkru_stripe_is_exclusive(key in 1u8..=14) {
        // Under PKRU restricted to `key`, that stripe is accessible and any
        // other non-zero stripe is not.
        use sfi_vm::mpk::Pkru;
        use sfi_x86::emu::{AccessCtx, MemBus};
        use sfi_x86::Width;
        let mut space = AddressSpace::new_48bit();
        let b = space.mmap(2 * OS_PAGE_SIZE, Prot::READ_WRITE).expect("mmap");
        // Allocate keys 1..=key, then one more as the "other" stripe.
        let mut got = 0;
        while got != key {
            got = space.keys.pkey_alloc().expect("15 keys available");
        }
        let other = space.keys.pkey_alloc().expect("key+1 available");
        space.pkey_mprotect(b, OS_PAGE_SIZE, Prot::READ_WRITE, key).expect("pkey");
        space
            .pkey_mprotect(b + OS_PAGE_SIZE, OS_PAGE_SIZE, Prot::READ_WRITE, other)
            .expect("pkey");
        let ctx = AccessCtx { pkru: Pkru::only_stripe(key).0 };
        prop_assert!(space.load(b, Width::D, ctx).is_ok());
        prop_assert!(space.load(b + OS_PAGE_SIZE, Width::D, ctx).is_err());
    }
}
