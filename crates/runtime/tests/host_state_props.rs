//! Host-state invariants under arbitrary invoke interleavings.
//!
//! Two properties the transition protocol must keep on EVERY exit path —
//! success, guest trap, epoch interruption, host-API error, poisoned
//! rejection, injected map fault:
//!
//! 1. The host's PKRU reads 0 (full access) and the segment base reads 0
//!    after every invocation, however it ended.
//! 2. Transition accounting stays balanced: every entry transition has a
//!    matching exit transition (host out/in legs come in pairs too), so
//!    the cumulative count is always even.

use std::sync::Arc;

use proptest::prelude::*;
use sfi_core::{compile, CompilerConfig, Strategy as SfiStrategy};
use sfi_runtime::{HostApi, InstanceId, Runtime, RuntimeConfig, RuntimeError};

fn guest_module() -> Arc<sfi_core::CompiledModule> {
    let m = sfi_wasm::wat::parse(
        r#"(module (memory 1)
             (func (export "bump") (param $p i32) (result i32)
               local.get $p
               local.get $p i32.load i32.const 1 i32.add
               i32.store
               local.get $p i32.load)
             (func (export "spin") loop br 0 end))"#,
    )
    .expect("parses");
    Arc::new(compile(&m, &CompilerConfig::for_strategy(SfiStrategy::Segue)).expect("compiles"))
}

/// A module whose single export calls out to the host, so the Host-error
/// exit path is reachable (the WAT surface has no import syntax).
fn hostcall_module() -> Arc<sfi_core::CompiledModule> {
    let mut m = sfi_wasm::Module::new(1);
    m.push_import(sfi_wasm::HostImport {
        name: "env.maybe".into(),
        params: vec![],
        result: Some(sfi_wasm::ValType::I32),
    });
    let f = m.push_func(
        sfi_wasm::FuncBuilder::new("callhost")
            .result(sfi_wasm::ValType::I32)
            .body(vec![sfi_wasm::Op::Call(0), sfi_wasm::Op::End])
            .build(),
    );
    m.export("callhost", f);
    Arc::new(compile(&m, &CompilerConfig::for_strategy(SfiStrategy::Segue)).expect("compiles"))
}

struct FlakyHost {
    fail: bool,
}

impl HostApi for FlakyHost {
    fn call(&mut self, _name: &str, _args: &[u64], _heap: &mut [u8]) -> Result<Option<u64>, String> {
        if self.fail {
            Err("host refused".into())
        } else {
            Ok(Some(7))
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// In-bounds store: the Ok path.
    Bump { offset: u32 },
    /// Guard hit: the trap path (poisons, so also exercises the Poisoned
    /// rejection and the recycle + reinstantiate path).
    Oob,
    /// Infinite loop under an epoch budget: the EpochInterrupted path.
    Spin,
    /// Import dispatch, failing or succeeding: the Host(-error) path.
    HostCall { fail: bool },
    /// Deterministic teardown through quarantine, then a fresh instance.
    Recycle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..64).prop_map(|o| Op::Bump { offset: o * 4 }),
        Just(Op::Oob),
        Just(Op::Spin),
        any::<bool>().prop_map(|fail| Op::HostCall { fail }),
        Just(Op::Recycle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn pkru_and_transitions_survive_every_exit_path(
        ops in prop::collection::vec(op_strategy(), 1..32),
    ) {
        let guest = guest_module();
        let hostcall = hostcall_module();
        let mut cfg = RuntimeConfig::small_test(true);
        cfg.epoch_fuel = Some(5_000);
        let mut rt = Runtime::new(cfg).unwrap();
        let mut a: Option<InstanceId> = Some(rt.instantiate(Arc::clone(&guest)).unwrap());
        let h = rt.instantiate(Arc::clone(&hostcall)).unwrap();

        for op in ops {
            match op {
                Op::Bump { offset } => {
                    if let Some(id) = a {
                        match rt.invoke(id, "bump", &[u64::from(offset)]) {
                            Ok(_) | Err(RuntimeError::Poisoned) => {}
                            Err(e) => prop_assert!(false, "bump: unexpected {e:?}"),
                        }
                    }
                }
                Op::Oob => {
                    if let Some(id) = a {
                        let r = rt.invoke(id, "bump", &[65536]);
                        prop_assert!(
                            matches!(r, Err(RuntimeError::Trapped(_) | RuntimeError::Poisoned)),
                            "oob: unexpected {r:?}"
                        );
                    }
                }
                Op::Spin => {
                    if let Some(id) = a {
                        let r = rt.invoke(id, "spin", &[]);
                        prop_assert!(
                            matches!(
                                r,
                                Err(RuntimeError::EpochInterrupted | RuntimeError::Poisoned)
                            ),
                            "spin: unexpected {r:?}"
                        );
                        // Epoch interruption must never poison.
                        if matches!(r, Err(RuntimeError::EpochInterrupted)) {
                            prop_assert_eq!(rt.is_poisoned(id), Some(false));
                        }
                    }
                }
                Op::HostCall { fail } => {
                    let r = rt.invoke_with_host(h, "callhost", &[], &mut FlakyHost { fail });
                    if fail {
                        prop_assert!(matches!(r, Err(RuntimeError::Host(_))), "{r:?}");
                        // Host errors say nothing about the guest.
                        prop_assert_eq!(rt.is_poisoned(h), Some(false));
                    } else {
                        prop_assert_eq!(r.unwrap().result, Some(7));
                    }
                }
                Op::Recycle => {
                    if let Some(id) = a.take() {
                        rt.recycle(id).unwrap();
                    }
                    a = rt.instantiate(Arc::clone(&guest)).ok();
                }
            }

            // Property 1: full host state after every outcome.
            prop_assert_eq!(rt.host_pkru(), 0, "PKRU not restored");
            prop_assert_eq!(rt.host_gs_base(), 0, "segment base not restored");
            // Property 2: entries and exits pair up on every path.
            prop_assert_eq!(rt.transitions.count % 2, 0, "unbalanced transitions");
        }
    }
}
