//! Property-based verification of the compiled-code cache:
//!
//! 1. **Key-collision soundness** — code compiled against one pool's slot
//!    layout must never be served to a runtime with a different layout
//!    contract (guard-elision baked into code is only sound for the layout
//!    it was compiled against);
//! 2. **LRU fidelity** — the implementation tracks a reference model
//!    exactly (membership, hit/miss/eviction/insert counters) for any
//!    operation sequence;
//! 3. **Poison isolation** — a trapped instance and its slot quarantine
//!    must never evict, mutate, or otherwise reach the cached code other
//!    instances are running.

use std::sync::Arc;

use proptest::prelude::*;
use sfi_core::{compile, CompilerConfig, Strategy as SfiStrategy};
use sfi_runtime::{CacheKey, CodeCache, Engine, Runtime, RuntimeConfig};
use sfi_wasm::wat;

fn tiny() -> sfi_wasm::Module {
    wat::parse("(module (memory 1) (func (export \"f\") (result i32) i32.const 9))").unwrap()
}

/// A store probe used to poison an instance (OOB at 128 KiB).
const POKE: &str = r#"(module (memory 1)
    (func (export "poke") (param $p i32) (result i32)
      local.get $p
      i32.const 1
      i32.store
      i32.const 7))"#;

// ---------------------------------------------------------------------------
// 1. Key-collision soundness across pool layouts.
// ---------------------------------------------------------------------------

/// Two runtimes with different pool shapes have different layout contracts,
/// so one engine serving both must keep (and compile) separate entries for
/// the same (module, config) pair.
#[test]
fn different_pool_layouts_never_share_cached_code() {
    let mut rt_mp = Runtime::new(RuntimeConfig::small_test(false)).unwrap();
    let mut rt_cg = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
    assert_ne!(
        rt_mp.layout_fingerprint(),
        rt_cg.layout_fingerprint(),
        "striped and unstriped pools must have distinct layout contracts"
    );

    let mut engine = Engine::new(16);
    let m = tiny();
    let cfg = CompilerConfig::for_strategy(SfiStrategy::Segue);

    let a = rt_mp.spawn(&mut engine, &m, &cfg).unwrap();
    let b = rt_cg.spawn(&mut engine, &m, &cfg).unwrap();
    assert_eq!(engine.cache().len(), 2, "one entry per layout contract");
    assert_eq!(engine.cache().stats().misses, 2, "no cross-layout hit");

    // Same layout → shared entry (and both instances run).
    let a2 = rt_mp.spawn(&mut engine, &m, &cfg).unwrap();
    assert_eq!(engine.cache().stats().hits, 1);
    assert_eq!(rt_mp.invoke(a, "f", &[]).unwrap().result, Some(9));
    assert_eq!(rt_cg.invoke(b, "f", &[]).unwrap().result, Some(9));
    assert_eq!(rt_mp.invoke(a2, "f", &[]).unwrap().result, Some(9));
}

/// The two compiled entries for the two layouts are distinct objects — a
/// collision would hand one pool's guard-elision decisions to the other.
#[test]
fn layout_fingerprint_separates_identical_modules() {
    let mut engine = Engine::new(4);
    let m = tiny();
    let cfg = CompilerConfig::for_strategy(SfiStrategy::Segue);
    let rt_mp = Runtime::new(RuntimeConfig::small_test(false)).unwrap();
    let rt_cg = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
    let a = engine.load(&m, &cfg, rt_mp.layout_fingerprint()).unwrap();
    let b = engine.load(&m, &cfg, rt_cg.layout_fingerprint()).unwrap();
    assert!(!Arc::ptr_eq(&a, &b), "separate layouts must compile separately");
}

// ---------------------------------------------------------------------------
// 2. LRU model-vs-implementation equivalence.
// ---------------------------------------------------------------------------

/// Reference LRU: same tick discipline as `CodeCache`, brute-force scans.
struct ModelLru {
    entries: Vec<(CacheKey, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserts: u64,
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru { entries: Vec::new(), capacity, tick: 0, hits: 0, misses: 0, evictions: 0, inserts: 0 }
    }

    fn get(&mut self, key: CacheKey) -> bool {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: CacheKey) -> Option<CacheKey> {
        self.tick += 1;
        let mut evicted = None;
        let resident = self.entries.iter().any(|(k, _)| *k == key);
        if !resident && self.entries.len() >= self.capacity {
            let (i, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .expect("non-empty at capacity");
            evicted = Some(self.entries.remove(i).0);
            self.evictions += 1;
        }
        self.entries.retain(|(k, _)| *k != key);
        self.entries.push((key, self.tick));
        self.inserts += 1;
        evicted
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u8),
    Insert(u8),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<bool>(), 0u8..12).prop_map(|(g, k)| if g { Op::Get(k) } else { Op::Insert(k) }),
        1..200,
    )
}

fn synthetic_key(k: u8) -> CacheKey {
    CacheKey {
        module_hash: u64::from(k),
        options_fingerprint: 0xC0FFEE,
        layout_fingerprint: u64::from(k % 3),
    }
}

proptest! {
    /// For any operation sequence and capacity, the implementation agrees
    /// with the reference model on membership, the evicted victim, and all
    /// four counters.
    #[test]
    fn lru_matches_the_reference_model(ops in ops_strategy(), capacity in 1usize..6) {
        let code = Arc::new(
            compile(&tiny(), &CompilerConfig::for_strategy(SfiStrategy::Segue)).unwrap(),
        );
        let mut cache = CodeCache::new(capacity);
        let mut model = ModelLru::new(capacity);

        for op in ops {
            match op {
                Op::Get(k) => {
                    let key = synthetic_key(k);
                    let hit = cache.get(&key).is_some();
                    prop_assert_eq!(hit, model.get(key), "get({:?})", key);
                }
                Op::Insert(k) => {
                    let key = synthetic_key(k);
                    let evicted = cache.insert(key, Arc::clone(&code));
                    prop_assert_eq!(evicted, model.insert(key), "insert({:?})", key);
                }
            }
            prop_assert_eq!(cache.len(), model.entries.len());
            prop_assert!(cache.len() <= capacity, "capacity is a hard bound");
            for (k, _) in &model.entries {
                prop_assert!(cache.contains(k), "model key {:?} missing", k);
            }
            let s = cache.stats();
            prop_assert_eq!(
                (s.hits, s.misses, s.evictions, s.inserts),
                (model.hits, model.misses, model.evictions, model.inserts)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Poisoned instances never corrupt the cache.
// ---------------------------------------------------------------------------

/// Trapping an instance and quarantining its slot leaves the cache
/// untouched: same entries, same stats (modulo the reload's hit), and the
/// reloaded code is the very same `Arc` — running it still works.
#[test]
fn poisoned_recycle_never_evicts_or_corrupts_cached_code() {
    let m = wat::parse(POKE).unwrap();
    let cfg = CompilerConfig::for_strategy(SfiStrategy::Segue);
    let mut engine = Engine::new(8);
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
    let fp = rt.layout_fingerprint();

    let id = rt.spawn(&mut engine, &m, &cfg).unwrap();
    let cached = engine.load(&m, &cfg, fp).unwrap();
    let before = engine.cache().stats();
    let len_before = engine.cache().len();

    // Poison: OOB store, then quarantine the slot.
    assert!(rt.invoke(id, "poke", &[0x2_0000]).is_err());
    assert_eq!(rt.is_poisoned(id), Some(true));
    rt.recycle(id).unwrap();

    assert_eq!(engine.cache().len(), len_before, "no entry disappeared");
    assert_eq!(engine.cache().stats(), before, "no counter moved");

    // A respawn is a warm hit on the *same* code object, and it runs.
    let reloaded = engine.load(&m, &cfg, fp).unwrap();
    assert!(Arc::ptr_eq(&cached, &reloaded), "reload must be the identical Arc");
    let id2 = rt.spawn(&mut engine, &m, &cfg).unwrap();
    assert_eq!(rt.invoke(id2, "poke", &[100]).unwrap().result, Some(7));
}

/// Repeated poison/recycle cycles (the chaos-injection slot path) never
/// touch cache counters: warm spawns stay warm throughout.
#[test]
fn poison_cycles_keep_spawns_warm() {
    let m = wat::parse(POKE).unwrap();
    let cfg = CompilerConfig::for_strategy(SfiStrategy::Segue);
    let mut engine = Engine::new(8);
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();

    for round in 0..6 {
        let id = rt.spawn(&mut engine, &m, &cfg).unwrap();
        assert!(rt.invoke(id, "poke", &[0x2_0000]).is_err(), "round {round}");
        rt.recycle(id).unwrap();
    }
    let s = engine.cache().stats();
    assert_eq!(s.misses, 1, "only the first spawn compiles");
    assert_eq!(s.hits, 5, "every later spawn is warm");
    assert_eq!(s.evictions, 0);
}
