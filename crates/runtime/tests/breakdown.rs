//! Per-invocation cycle attribution ([`CycleBreakdown`], DESIGN.md §14):
//! guest buckets match the emulator total bit-for-bit, a cold spawn's
//! compile charge drains into exactly one invocation, and the profile
//! counters surface through the runtime registry.

use sfi_core::{CompilerConfig, Strategy};
use sfi_runtime::{Engine, Runtime, RuntimeConfig};
use sfi_wasm::wat;

fn looping() -> sfi_wasm::Module {
    wat::parse(
        r#"(module (memory 1)
        (func (export "run") (result i32)
          (local $i i32) (local $acc i32)
          block $out
            loop $l
              local.get $i
              i32.const 200
              i32.ge_s
              br_if $out
              i32.const 64
              local.get $i
              i32.const 4
              i32.mul
              local.get $acc
              i32.add
              i32.store
              i32.const 64
              i32.load
              local.set $acc
              local.get $i
              i32.const 1
              i32.add
              local.set $i
              br $l
            end
          end
          local.get $acc))"#,
    )
    .unwrap()
}

#[test]
fn breakdown_accounts_every_cycle_and_drains_compile_once() {
    let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
    let mut engine = Engine::new(8);
    let cfg = CompilerConfig::for_strategy(Strategy::Segue);
    let id = rt.spawn(&mut engine, &looping(), &cfg).unwrap();

    let first = rt.invoke(id, "run", &[]).unwrap();
    let b = first.breakdown;
    assert_eq!(
        b.guest_cycles(),
        first.stats.cycles,
        "guest buckets must sum to the emulator total bit-for-bit"
    );
    assert_eq!(b.transition_cycles, first.transition_cycles);
    assert!(b.compile_cycles > 0.0, "cold spawn charges compile cycles to the first invocation");
    assert_eq!(
        b.total_cycles(),
        b.guest_cycles() + b.transition_cycles + b.compile_cycles
    );

    // The compile charge drains exactly once.
    let second = rt.invoke(id, "run", &[]).unwrap();
    assert_eq!(second.breakdown.compile_cycles, 0.0);
    assert_eq!(second.breakdown.guest_cycles(), second.stats.cycles);

    // A warm spawn of the same module charges nothing.
    let warm = rt.spawn(&mut engine, &looping(), &cfg).unwrap();
    let out = rt.invoke(warm, "run", &[]).unwrap();
    assert_eq!(out.breakdown.compile_cycles, 0.0, "warm spawn skipped codegen");

    // The profile counters surface through the registry.
    let r = rt.telemetry().registry();
    let guest = r
        .counter_value("sfi_profile_cycles_total{provenance=\"guest_compute\"}")
        .unwrap();
    assert!(guest > 0, "guest compute cycles must be counted");
    let trans = r.counter_value("sfi_profile_cycles_total{provenance=\"transition\"}").unwrap();
    assert!(trans > 0, "transition cycles must be counted");
    let compile = r.counter_value("sfi_compile_cycles_total").unwrap();
    assert_eq!(compile, b.compile_cycles.round() as u64, "one cold compile charged");
}

#[test]
fn breakdown_matches_strategy_overheads() {
    // BoundsCheck guards every heap access; Segue pays only the per-call
    // stack check. The per-invocation breakdown must expose that gap.
    let mut engine = Engine::new(8);
    let mut per_strategy = |s: Strategy| {
        let mut rt = Runtime::new(RuntimeConfig::small_test(false)).unwrap();
        let id = rt.spawn(&mut engine, &looping(), &CompilerConfig::for_strategy(s)).unwrap();
        rt.invoke(id, "run", &[]).unwrap().breakdown
    };
    let segue = per_strategy(Strategy::Segue);
    let bc = per_strategy(Strategy::BoundsCheck);
    let bg = sfi_x86::Provenance::BoundsGuard.index();
    assert!(bc.guest_prov_cycles[bg] > 0.0, "BoundsCheck pays guard cycles");
    assert!(
        bc.guest_prov_cycles[bg] > segue.guest_prov_cycles[bg],
        "per-access guards ({}) must outweigh Segue's stack checks ({})",
        bc.guest_prov_cycles[bg],
        segue.guest_prov_cycles[bg]
    );
}
