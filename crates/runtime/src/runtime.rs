//! The multi-instance runtime: pooled instances executing on the virtual
//! address space, with ColorGuard PKRU switching on every transition.

use std::collections::HashMap;
use std::sync::Arc;

use sfi_core::compile::{hostcall, CompiledModule};
use sfi_core::config::regs;
use sfi_core::Strategy;
use sfi_pool::{MemoryPool, PoolConfig, PoolError, QuarantineOutcome, SlotHandle};
use sfi_vm::mpk::Pkru;
use sfi_vm::{AddressSpace, MapError, Prot};
use sfi_wasm::PAGE_SIZE;
use sfi_x86::cost::RunStats;
use sfi_x86::emu::{Machine, RegFile};
use sfi_x86::{Gpr, Provenance, Trap};

use sfi_telemetry::TraceKind;

use crate::fault::SandboxFault;
use crate::telemetry::RuntimeTelemetry;
use crate::transition::{TransitionKind, TransitionModel, TransitionStats};

/// The low runtime region (header, globals, table, native stack) mapped at
/// startup and scrubbed before every invocation.
const LOW_REGION_BASE: u64 = 0x1000;
const LOW_REGION_LEN: u64 = 0xF_F000; // 4 KiB .. 1 MiB

/// A host API: named functions the sandbox may import (mini-WASI).
pub trait HostApi {
    /// Handles the import `name` with `args`; may return a value. `heap`
    /// is the calling instance's linear memory (host functions access guest
    /// memory through it, like WASI does).
    fn call(&mut self, name: &str, args: &[u64], heap: &mut [u8]) -> Result<Option<u64>, String>;
}

/// A host API that rejects everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHostApi;

impl HostApi for NoHostApi {
    fn call(&mut self, name: &str, _args: &[u64], _heap: &mut [u8]) -> Result<Option<u64>, String> {
        Err(format!("no host function bound for {name}"))
    }
}

/// Identifies a live instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceId(u64);

impl InstanceId {
    /// The raw numeric id — stable across the instance's lifetime, used as
    /// the `sandbox` field of flight-recorder events.
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Instance {
    module: Arc<CompiledModule>,
    slot: SlotHandle,
    globals: Vec<u64>,
    mem_pages: u32,
    /// Set when a guest trap makes this instance's state untrusted. A
    /// poisoned instance refuses further invocations; its slot can only be
    /// returned through [`Runtime::recycle`].
    poisoned: bool,
    /// The classified cause of the most recent failed invocation.
    last_fault: Option<SandboxFault>,
    /// Modeled compile cycles charged by a cold spawn, drained into the
    /// first successful invocation's [`CycleBreakdown`] (0 after that, and
    /// always 0 for warm spawns).
    pending_compile_cycles: f64,
}

/// Runtime failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Pool allocation failed.
    Pool(PoolError),
    /// Mapping runtime regions failed.
    Map(MapError),
    /// Unknown instance.
    BadInstance,
    /// Unknown export.
    NoSuchExport(String),
    /// The module was compiled with an incompatible configuration.
    IncompatibleModule(String),
    /// Compiling the module failed (spawn fast path).
    Compile(sfi_core::CompileError),
    /// The sandbox trapped.
    Trapped(Trap),
    /// The instance exceeded its epoch budget (cooperative preemption).
    EpochInterrupted,
    /// A host function failed.
    Host(String),
    /// The instance previously trapped and its state is untrusted; it must
    /// be recycled.
    Poisoned,
    /// A host-side heap access was out of the instance's memory bounds.
    HeapOutOfBounds {
        /// Requested offset into the heap.
        offset: u64,
        /// Requested length.
        len: u64,
        /// The instance's current memory size in bytes.
        size: u64,
    },
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::Pool(e) => write!(f, "pool: {e}"),
            RuntimeError::Map(e) => write!(f, "map: {e}"),
            RuntimeError::BadInstance => f.write_str("unknown instance"),
            RuntimeError::NoSuchExport(n) => write!(f, "no export named {n}"),
            RuntimeError::IncompatibleModule(m) => write!(f, "incompatible module: {m}"),
            RuntimeError::Compile(e) => write!(f, "compile: {e}"),
            RuntimeError::Trapped(t) => write!(f, "trap: {t}"),
            RuntimeError::EpochInterrupted => f.write_str("epoch interrupted"),
            RuntimeError::Host(m) => write!(f, "host: {m}"),
            RuntimeError::Poisoned => f.write_str("instance is poisoned (previous trap)"),
            RuntimeError::HeapOutOfBounds { offset, len, size } => {
                write!(f, "heap access [{offset:#x}, +{len}) out of bounds (memory is {size} bytes)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<PoolError> for RuntimeError {
    fn from(e: PoolError) -> Self {
        RuntimeError::Pool(e)
    }
}

impl From<MapError> for RuntimeError {
    fn from(e: MapError) -> Self {
        RuntimeError::Map(e)
    }
}

/// The result of an invocation.
#[derive(Debug, Clone)]
pub struct InvokeOutcome {
    /// Return value (if the export returns one).
    pub result: Option<u64>,
    /// Emulator counters for the guest execution.
    pub stats: RunStats,
    /// Modeled transition cycles charged for this invocation (entry + exit
    /// + one pair per host call).
    pub transition_cycles: f64,
    /// Where every modeled cycle of this invocation went (DESIGN.md §14).
    pub breakdown: CycleBreakdown,
}

/// Penalty bucket labels for [`CycleBreakdown::penalty_cycles`], in index
/// order.
pub const PENALTY_NAMES: [&str; 3] = ["icache", "dcache", "branch"];

/// Modeled cycles charged for compiling a module on a cold spawn: a fixed
/// per-emitted-instruction cost (single-pass baseline codegen is linear in
/// output size). Deterministic — same module, same charge — and surfaced
/// through [`CycleBreakdown::compile_cycles`] and
/// `sfi_compile_cycles_total` rather than folded into guest cycles, so
/// benchmark guest numbers are unchanged by the profiler.
pub fn modeled_compile_cycles(emitted_insts: usize) -> f64 {
    150.0 * emitted_insts as f64
}

/// Per-invocation cycle attribution: one bucket for every modeled cycle
/// the request cost, none counted twice (the DESIGN.md §14 contract).
///
/// The guest buckets are the emulator's provenance attribution
/// ([`RunStats::prov_cycles`] and the penalty buckets), so
/// [`CycleBreakdown::guest_cycles`] equals the run's `stats.cycles`
/// bit-for-bit. Transition cycles are the host-side save/restore protocol
/// (entry + exit + one pair per host call); compile cycles appear only on
/// the first invocation after a cold spawn.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleBreakdown {
    /// Transition save/restore cycles for this invocation.
    pub transition_cycles: f64,
    /// Guest cycles by instruction provenance (indexed per
    /// [`Provenance::index`]).
    pub guest_prov_cycles: [f64; Provenance::COUNT],
    /// Micro-architectural penalty buckets, indexed per [`PENALTY_NAMES`]:
    /// icache misses, dcache misses, branch mispredictions.
    pub penalty_cycles: [f64; 3],
    /// Modeled compile cycles drained from a cold spawn (0 on warm paths).
    pub compile_cycles: f64,
}

impl CycleBreakdown {
    /// Builds the breakdown for one completed run.
    pub fn from_run(stats: &RunStats, transition_cycles: f64, compile_cycles: f64) -> CycleBreakdown {
        CycleBreakdown {
            transition_cycles,
            guest_prov_cycles: stats.prov_cycles,
            penalty_cycles: [
                stats.icache_penalty_cycles,
                stats.dcache_penalty_cycles,
                stats.branch_penalty_cycles,
            ],
            compile_cycles,
        }
    }

    /// Guest cycles: provenance buckets + penalty buckets, summed in the
    /// same fixed order as [`RunStats::attributed_cycles`] — equal to the
    /// run's total modeled guest cycles bit-for-bit.
    pub fn guest_cycles(&self) -> f64 {
        let mut total = 0.0;
        for c in self.guest_prov_cycles {
            total += c;
        }
        total + self.penalty_cycles[0] + self.penalty_cycles[1] + self.penalty_cycles[2]
    }

    /// Every modeled cycle this invocation cost: guest + transition +
    /// compile.
    pub fn total_cycles(&self) -> f64 {
        self.guest_cycles() + self.transition_cycles + self.compile_cycles
    }
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The pool configuration.
    pub pool: PoolConfig,
    /// Enable ColorGuard: stripe slots with MPK and switch PKRU on
    /// transitions.
    pub colorguard: bool,
    /// Transition cost model.
    pub transition: TransitionModel,
    /// Guest instruction budget per invocation (epoch interruption);
    /// `None` = unlimited.
    pub epoch_fuel: Option<u64>,
    /// Flight-recorder capacity in events (0 disables tracing — the
    /// telemetry-off configuration of the overhead gate).
    pub recorder_capacity: usize,
}

impl RuntimeConfig {
    /// A small test configuration: 64 KiB memories, 8 slots.
    pub fn small_test(colorguard: bool) -> RuntimeConfig {
        RuntimeConfig {
            pool: PoolConfig {
                num_slots: 8,
                max_memory_bytes: PAGE_SIZE,
                expected_slot_bytes: 4 * PAGE_SIZE,
                guard_bytes: 4 * PAGE_SIZE,
                guard_before_slots: true,
                num_pkeys_available: if colorguard { 15 } else { 0 },
                total_memory_bytes: 1 << 31,
            },
            colorguard,
            transition: TransitionModel::default(),
            epoch_fuel: None,
            recorder_capacity: 256,
        }
    }
}

/// The multi-instance runtime.
pub struct Runtime {
    space: AddressSpace,
    pool: MemoryPool,
    machine: Machine,
    config: RuntimeConfig,
    instances: HashMap<u64, Instance>,
    next_id: u64,
    /// Cumulative transition accounting.
    pub transitions: TransitionStats,
    /// Metrics registry, flight recorder and virtual clock.
    telemetry: RuntimeTelemetry,
}

impl Runtime {
    /// Creates a runtime: maps the low runtime regions (header, globals,
    /// table, stack) and the instance pool.
    pub fn new(config: RuntimeConfig) -> Result<Runtime, RuntimeError> {
        let mut space = AddressSpace::new_48bit();
        // Low runtime regions (key 0, always accessible).
        space.mmap_fixed(LOW_REGION_BASE, LOW_REGION_LEN, Prot::READ_WRITE)?;
        let pool = MemoryPool::create(&mut space, &config.pool)?;
        let telemetry = RuntimeTelemetry::new(config.recorder_capacity, 0);
        Ok(Runtime {
            space,
            pool,
            machine: Machine::new(),
            config,
            instances: HashMap::new(),
            next_id: 0,
            transitions: TransitionStats::default(),
            telemetry,
        })
    }

    /// The pool (e.g. for capacity checks).
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// The telemetry bundle (registry, flight recorder, virtual clock).
    /// Gauges are synced lazily: call [`Runtime::sync_telemetry`] first for
    /// a snapshot that reflects current occupancies.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.telemetry
    }

    /// Mutable telemetry access (sharded hosts stamp their own events and
    /// merge registries through this).
    pub fn telemetry_mut(&mut self) -> &mut RuntimeTelemetry {
        &mut self.telemetry
    }

    /// Syncs occupancy gauges and scrapes the pool / chaos counters into
    /// the registry. Call before exporting.
    pub fn sync_telemetry(&mut self) {
        self.telemetry.scrape(&self.pool, &self.space, self.instances.len());
    }

    /// A deterministic JSON metrics snapshot (gauges synced first).
    pub fn telemetry_snapshot(&mut self) -> String {
        self.sync_telemetry();
        sfi_telemetry::export::json_snapshot(self.telemetry.registry())
    }

    /// The post-mortem report for an instance whose last invocation failed:
    /// the classified fault, the slot and MPK color it ran in, and the
    /// flight recorder's recent events for that sandbox. `None` when the
    /// instance is unknown or has never faulted.
    pub fn fault_report(&self, id: InstanceId) -> Option<String> {
        let inst = self.instances.get(&id.0)?;
        let fault = inst.last_fault.as_ref()?;
        let mut out = format!(
            "fault: {fault}\ninstance: {} slot: {} color: {}\nrecent events:\n",
            id.0, inst.slot.index, inst.slot.pkey
        );
        for e in self.telemetry.recorder.last_for_sandbox(id.0, 16) {
            out.push_str(&e.dump_line());
            out.push('\n');
        }
        Some(out)
    }

    /// The address space (for test assertions).
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Attaches a deterministic fault-injection plan to the runtime's
    /// address space (see [`sfi_vm::chaos`]).
    pub fn set_fault_plan(&mut self, plan: Option<sfi_vm::FaultPlan>) {
        self.space.set_fault_plan(plan);
    }

    /// Sets the pool's crash-containment policy.
    pub fn set_quarantine_policy(&mut self, policy: sfi_pool::QuarantinePolicy) {
        self.pool.set_quarantine_policy(policy);
    }

    /// Live instance count.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Instantiates a compiled module: allocates a slot, installs data
    /// segments, snapshots globals.
    pub fn instantiate(&mut self, module: Arc<CompiledModule>) -> Result<InstanceId, RuntimeError> {
        if module.config.strategy == Strategy::Native {
            return Err(RuntimeError::IncompatibleModule(
                "Native-strategy modules bake an absolute heap base and cannot be pooled".into(),
            ));
        }
        let mem_bytes = u64::from(module.mem_min_pages) * PAGE_SIZE;
        if mem_bytes > self.pool.layout().max_memory_bytes {
            return Err(RuntimeError::IncompatibleModule(format!(
                "module needs {mem_bytes} bytes, slots hold {}",
                self.pool.layout().max_memory_bytes
            )));
        }
        let slot = self.pool.allocate(&mut self.space)?;
        for (off, bytes) in &module.data {
            self.space.write_unchecked(slot.heap_base + u64::from(*off), bytes);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.instances.insert(
            id,
            Instance {
                globals: module.globals_init.clone(),
                mem_pages: module.mem_min_pages,
                module,
                slot,
                poisoned: false,
                last_fault: None,
                pending_compile_cycles: 0.0,
            },
        );
        self.telemetry.trace(TraceKind::Spawn, id, slot.index);
        Ok(InstanceId(id))
    }

    /// The pool's slot-layout contract fingerprint — the third component of
    /// the engine's cache key.
    pub fn layout_fingerprint(&self) -> u64 {
        self.pool.layout().contract_fingerprint()
    }

    /// The spawn fast path: obtains compiled code from the engine's cache
    /// (compiling only on a miss) and instantiates it. A warm spawn —
    /// module already cached for this pool's layout contract — skips
    /// `sfi-core` codegen entirely; observationally it is identical to a
    /// cold spawn.
    pub fn spawn(
        &mut self,
        engine: &mut crate::cache::Engine,
        module: &sfi_wasm::Module,
        config: &sfi_core::CompilerConfig,
    ) -> Result<InstanceId, RuntimeError> {
        let misses_before = engine.cache().stats().misses;
        let cm = engine
            .load(module, config, self.layout_fingerprint())
            .map_err(RuntimeError::Compile)?;
        let cold = engine.cache().stats().misses > misses_before;
        let id = self.instantiate(cm)?;
        if cold {
            self.telemetry.trace(TraceKind::Compile, id.0, 0);
            self.charge_compile(id);
        }
        self.telemetry.scrape_cache(engine.cache().stats());
        Ok(id)
    }

    /// Charges a cold spawn's modeled compile cycles to the instance; the
    /// first successful invocation drains them into its
    /// [`CycleBreakdown::compile_cycles`].
    fn charge_compile(&mut self, id: InstanceId) {
        let inst = self.instances.get_mut(&id.0).expect("just instantiated");
        inst.pending_compile_cycles = modeled_compile_cycles(inst.module.image.program().len());
    }

    /// The tiered spawn path: like [`Runtime::spawn`], but hot modules are
    /// recompiled at the optimizing tier once they cross the engine's
    /// [`TierPolicy`](crate::cache::TierPolicy) threshold. Promotions are
    /// traced ([`TraceKind::Promote`]) and counted
    /// (`sfi_tier_promotions_total`); invocations of the returned instance
    /// land in the per-tier cycle histogram automatically, because the tier
    /// rides in the compiled module's config.
    pub fn spawn_tiered(
        &mut self,
        engine: &mut crate::cache::Engine,
        module: &sfi_wasm::Module,
        config: &sfi_core::CompilerConfig,
    ) -> Result<(InstanceId, crate::cache::Tier), RuntimeError> {
        let misses_before = engine.cache().stats().misses;
        let promotions_before = engine.tier_stats().promotions;
        let (cm, tier) = engine
            .load_tiered(module, config, self.layout_fingerprint())
            .map_err(RuntimeError::Compile)?;
        let cold = engine.cache().stats().misses > misses_before;
        let id = self.instantiate(cm)?;
        if cold {
            self.telemetry.trace(TraceKind::Compile, id.0, 0);
            self.charge_compile(id);
        }
        if engine.tier_stats().promotions > promotions_before {
            self.telemetry.trace(TraceKind::Promote, id.0, engine.tier_stats().promotions);
        }
        self.telemetry.scrape_cache(engine.cache().stats());
        self.telemetry.scrape_tiers(engine.tier_stats());
        Ok((id, tier))
    }

    /// Destroys a healthy instance, recycling its slot (`madvise`).
    /// Poisoned instances are routed through [`Runtime::recycle`] so their
    /// slot never skips quarantine.
    pub fn terminate(&mut self, id: InstanceId) -> Result<(), RuntimeError> {
        if self.instances.get(&id.0).ok_or(RuntimeError::BadInstance)?.poisoned {
            self.recycle(id)?;
            return Ok(());
        }
        let inst = self.instances.remove(&id.0).ok_or(RuntimeError::BadInstance)?;
        self.pool.deallocate(&mut self.space, inst.slot)?;
        Ok(())
    }

    /// Deterministic teardown of an instance whose sandbox trapped: the
    /// instance is destroyed and its slot goes through the pool's
    /// quarantine path (heap scrubbed with `madvise(MADV_DONTNEED)`,
    /// fenced `PROT_NONE`, stripe color re-applied on rehabilitation, slot
    /// retired after repeated faults).
    pub fn recycle(&mut self, id: InstanceId) -> Result<QuarantineOutcome, RuntimeError> {
        let inst = self.instances.remove(&id.0).ok_or(RuntimeError::BadInstance)?;
        let outcome = self.pool.quarantine(&mut self.space, inst.slot)?;
        self.telemetry
            .trace(TraceKind::Recycle, id.0, u64::from(outcome == QuarantineOutcome::Retired));
        self.sync_telemetry();
        Ok(outcome)
    }

    /// Whether `id` is poisoned (trapped and awaiting recycle). `None` for
    /// unknown instances.
    pub fn is_poisoned(&self, id: InstanceId) -> Option<bool> {
        self.instances.get(&id.0).map(|i| i.poisoned)
    }

    /// The classified cause of `id`'s most recent failed invocation.
    pub fn last_fault(&self, id: InstanceId) -> Option<&SandboxFault> {
        self.instances.get(&id.0)?.last_fault.as_ref()
    }

    /// The heap base of `id`'s slot in the shared address space — the frame
    /// in which guard/color fault addresses are reported. `None` for
    /// unknown instances.
    pub fn heap_base(&self, id: InstanceId) -> Option<u64> {
        self.instances.get(&id.0).map(|i| i.slot.heap_base)
    }

    /// The host's PKRU view after the last invocation (0 = full access —
    /// the value every exit path must restore).
    pub fn host_pkru(&self) -> u32 {
        self.machine.regs.pkru
    }

    /// The host's segment base after the last invocation (0 = restored).
    pub fn host_gs_base(&self) -> u64 {
        self.machine.regs.gs_base
    }

    /// Invokes an export with no host API.
    pub fn invoke(
        &mut self,
        id: InstanceId,
        export: &str,
        args: &[u64],
    ) -> Result<InvokeOutcome, RuntimeError> {
        self.invoke_with_host(id, export, args, &mut NoHostApi)
    }

    /// Invokes `export(args)` on instance `id`, dispatching imports to
    /// `host`. Models the full transition protocol: PKRU is narrowed to the
    /// instance's stripe on entry and restored on exit (and around every
    /// host call), the segment base is set on entry.
    pub fn invoke_with_host(
        &mut self,
        id: InstanceId,
        export: &str,
        args: &[u64],
        host: &mut dyn HostApi,
    ) -> Result<InvokeOutcome, RuntimeError> {
        let inst = self.instances.get(&id.0).ok_or(RuntimeError::BadInstance)?;
        if inst.poisoned {
            return Err(RuntimeError::Poisoned);
        }
        let module = Arc::clone(&inst.module);
        let entry = module
            .export_entry(export)
            .ok_or_else(|| RuntimeError::NoSuchExport(export.to_owned()))?;
        let fidx = module.exports[export];
        let has_result = module.func_has_result[fidx as usize];
        let regions = module.config.regions;
        let heap_base = inst.slot.heap_base;
        let pkey = inst.slot.pkey;
        let max_pages =
            (self.pool.layout().max_memory_bytes / PAGE_SIZE).min(u64::from(module.mem_max_pages));

        // Scrub the shared low regions (header, globals, table, stack)
        // before writing this instance's state in. Unconditional: a trap in
        // a previous invocation must not leave another instance's state —
        // or a partially clobbered table — visible to this one.
        self.space.madvise_dontneed(LOW_REGION_BASE, LOW_REGION_LEN)?;

        // Install per-instance runtime state into the shared low regions.
        self.space.write_unchecked(
            u64::from(regions.header_base),
            &inst.mem_pages.to_le_bytes(),
        );
        self.space
            .write_unchecked(u64::from(regions.header_base) + 8, &heap_base.to_le_bytes());
        for (i, g) in inst.globals.iter().enumerate() {
            self.space
                .write_unchecked(u64::from(regions.globals_base) + 8 * i as u64, &g.to_le_bytes());
        }
        self.space
            .write_unchecked(u64::from(regions.table_base), &module.table_bytes);

        // Architectural entry protocol.
        let enter = TransitionKind {
            colorguard: self.config.colorguard,
            set_segment_base: module.config.strategy.segue_loads()
                || module.config.strategy.segue_stores(),
            ..TransitionKind::default()
        };
        let exit =
            TransitionKind { colorguard: self.config.colorguard, ..TransitionKind::default() };
        self.transitions.record(&self.config.transition, enter);
        let mut invocation_transition_cycles = self.config.transition.cycles(enter);
        self.telemetry.on_transition(enter, self.config.transition.cycles(enter));
        self.telemetry.trace(TraceKind::Enter, id.0, u64::from(pkey));

        self.machine.regs = RegFile::default();
        self.machine.regs.gs_base = heap_base;
        self.machine.set_gpr(regs::HEAP_BASE, heap_base);
        if self.config.colorguard {
            self.machine.regs.pkru = Pkru::only_stripe(pkey).0;
        }
        let mut sp = u64::from(regions.stack_top);
        for &a in args {
            sp -= 8;
            self.space.write_unchecked(sp, &a.to_le_bytes());
        }
        self.machine.set_gpr(Gpr::Rsp, sp);
        if let Some(fuel) = self.config.epoch_fuel {
            self.machine.set_fuel(fuel);
        }

        // Host dispatcher: imports + builtins. Host calls transition out of
        // the sandbox (restore PKRU) and back in.
        let header_base = u64::from(regions.header_base);
        let colorguard = self.config.colorguard;
        let tm = self.config.transition;
        let mut host_transition_cycles = 0.0f64;
        let mut host_transitions = 0u64;
        let mut host_err: Option<String> = None;
        let imports: Vec<String> =
            (0..module.num_imports).map(|i| format!("import{i}")).collect();
        let _ = imports;

        let stats = {
            let space = &mut self.space;
            let module_ref = &module;
            let mut handler = |fid: u32, regs_: &mut RegFile, bus: &mut AddressSpace| -> Result<f64, Trap> {
                // Transition out + back in for the host work.
                let pair = tm.cycles(exit)
                    + tm.cycles(TransitionKind { colorguard, ..TransitionKind::default() });
                host_transition_cycles += pair;
                host_transitions += 2;
                let saved_pkru = regs_.pkru;
                regs_.pkru = 0; // host runs with full access

                let rsp = regs_.gpr(Gpr::Rsp);
                let read_arg = |bus: &mut AddressSpace, i: u64| -> u64 {
                    let mut b = [0u8; 8];
                    bus.read_unchecked(rsp + 8 * i, &mut b);
                    u64::from_le_bytes(b)
                };
                let r = match fid {
                    hostcall::MEMORY_GROW => {
                        let delta = read_arg(bus, 0) as u32;
                        let mut cur_b = [0u8; 4];
                        bus.read_unchecked(header_base, &mut cur_b);
                        let cur = u32::from_le_bytes(cur_b);
                        let new = u64::from(cur) + u64::from(delta);
                        if new > max_pages {
                            regs_.set_gpr(Gpr::Rax, u64::from(u32::MAX));
                        } else {
                            bus.write_unchecked(header_base, &(new as u32).to_le_bytes());
                            regs_.set_gpr(Gpr::Rax, u64::from(cur));
                        }
                        Ok(60.0)
                    }
                    hostcall::MEMORY_COPY | hostcall::MEMORY_FILL => {
                        let len = read_arg(bus, 0) as u32 as u64;
                        let b_arg = read_arg(bus, 1);
                        let dst = read_arg(bus, 2) as u32 as u64;
                        let mut cur_b = [0u8; 4];
                        bus.read_unchecked(header_base, &mut cur_b);
                        let cur_bytes = u64::from(u32::from_le_bytes(cur_b)) * PAGE_SIZE;
                        if dst + len > cur_bytes
                            || (fid == hostcall::MEMORY_COPY
                                && (b_arg as u32 as u64) + len > cur_bytes)
                        {
                            return Err(Trap::Mem(sfi_x86::MemFault::Unmapped {
                                addr: heap_base + dst + len,
                            }));
                        }
                        if fid == hostcall::MEMORY_COPY {
                            let src = b_arg as u32 as u64;
                            let mut buf = vec![0u8; len as usize];
                            bus.read_unchecked(heap_base + src, &mut buf);
                            bus.write_unchecked(heap_base + dst, &buf);
                        } else {
                            let buf = vec![b_arg as u8; len as usize];
                            bus.write_unchecked(heap_base + dst, &buf);
                        }
                        Ok(10.0 + len as f64 / 16.0)
                    }
                    import_id if (import_id as usize) < module_ref.num_imports as usize => {
                        // Dispatch to the host API by import name.
                        let name = module_ref
                            .import_names
                            .get(import_id as usize)
                            .cloned()
                            .unwrap_or_else(|| format!("import{import_id}"));
                        let argc = module_ref
                            .import_arg_counts
                            .get(import_id as usize)
                            .copied()
                            .unwrap_or(0) as u64;
                        let args: Vec<u64> = (0..argc).map(|i| read_arg(bus, argc - 1 - i)).collect();
                        // Give the host a copy-in/copy-out heap view.
                        let mut cur_b = [0u8; 4];
                        bus.read_unchecked(header_base, &mut cur_b);
                        let cur_bytes = u64::from(u32::from_le_bytes(cur_b)) * PAGE_SIZE;
                        let mut heap = vec![0u8; cur_bytes as usize];
                        bus.read_unchecked(heap_base, &mut heap);
                        match host.call(&name, &args, &mut heap) {
                            Ok(r) => {
                                bus.write_unchecked(heap_base, &heap);
                                if let Some(v) = r {
                                    regs_.set_gpr(Gpr::Rax, v);
                                }
                                Ok(150.0) // host work dispatch cost
                            }
                            Err(msg) => {
                                host_err = Some(msg);
                                Err(Trap::Undefined)
                            }
                        }
                    }
                    other => Err(Trap::BadControlFlow { target: u64::from(other) }),
                };
                regs_.pkru = saved_pkru;
                r
            };
            self.machine.run_image_from(&module.image, entry, space, &mut handler)
        };

        // Exit transition: restore the full host state (PKRU and segment
        // base) on every path — success, trap, epoch, host error.
        self.transitions.record(&self.config.transition, exit);
        invocation_transition_cycles += self.config.transition.cycles(exit);
        invocation_transition_cycles += host_transition_cycles;
        self.transitions.count += host_transitions;
        self.transitions.cycles += host_transition_cycles;
        self.transitions.wrpkru += if colorguard { host_transitions } else { 0 };
        self.telemetry.on_transition(exit, self.config.transition.cycles(exit));
        // Each host-call transition is architecturally an `exit`-shaped
        // transition (restore/narrow PKRU, no segment-base change).
        for _ in 0..host_transitions {
            self.telemetry.on_transition(exit, tm.cycles(exit));
        }
        self.machine.regs.pkru = 0;
        self.machine.regs.gs_base = 0;

        let stats = match stats {
            Ok(s) => s,
            Err(Trap::FuelExhausted) if self.config.epoch_fuel.is_some() => {
                let inst = self.instances.get_mut(&id.0).expect("checked above");
                inst.last_fault = Some(SandboxFault::EpochInterrupted);
                self.telemetry.on_fault(&SandboxFault::EpochInterrupted);
                return Err(RuntimeError::EpochInterrupted);
            }
            Err(t) => {
                let inst = self.instances.get_mut(&id.0).expect("checked above");
                let (err, fault) = match host_err {
                    Some(m) => {
                        // Host API errors say nothing about the guest: the
                        // instance stays healthy and re-invocable.
                        let fault = SandboxFault::HostError(m.clone());
                        inst.last_fault = Some(fault.clone());
                        (RuntimeError::Host(m), fault)
                    }
                    None => {
                        // A guest trap: the sandbox violated its contract,
                        // so its state is untrusted from here on.
                        let fault = SandboxFault::from_trap(&t);
                        inst.last_fault = Some(fault.clone());
                        inst.poisoned = true;
                        (RuntimeError::Trapped(t), fault)
                    }
                };
                self.telemetry.on_fault(&fault);
                let trap_arg = match &fault {
                    SandboxFault::GuardHit { addr }
                    | SandboxFault::ColorFault { addr, .. }
                    | SandboxFault::TagFault { addr, .. } => *addr,
                    SandboxFault::BadControlFlow { target } => *target,
                    _ => 0,
                };
                self.telemetry.trace(TraceKind::Trap, id.0, trap_arg);
                return Err(err);
            }
        };
        self.telemetry.clock.advance_cycles(stats.cycles);
        self.telemetry.on_guest_mem_accesses(stats.loads, stats.stores);
        let tier = match module.config.opt_level {
            sfi_core::OptLevel::Optimized => crate::cache::Tier::Optimized,
            _ => crate::cache::Tier::Baseline,
        };
        self.telemetry.observe_guest_cycles(tier, stats.cycles);
        self.telemetry.observe_invocation_transition_cycles(invocation_transition_cycles);
        self.telemetry
            .trace(TraceKind::Exit, id.0, invocation_transition_cycles.round() as u64);

        // Attribute this invocation's cycles (DESIGN.md §14). A cold
        // spawn's compile charge drains into the first successful
        // invocation; trapped runs keep it pending.
        let compile_cycles = std::mem::take(
            &mut self.instances.get_mut(&id.0).expect("checked above").pending_compile_cycles,
        );
        let breakdown =
            CycleBreakdown::from_run(&stats, invocation_transition_cycles, compile_cycles);
        self.telemetry.observe_breakdown(&breakdown);
        self.telemetry.observe_speculation(&stats, module.config.mitigation);

        // Read back per-instance state.
        let mut hdr = [0u8; 4];
        self.space.read_unchecked(u64::from(regions.header_base), &mut hdr);
        let globals_len = {
            let inst = self.instances.get_mut(&id.0).expect("checked above");
            inst.mem_pages = u32::from_le_bytes(hdr);
            inst.globals.len()
        };
        for i in 0..globals_len {
            let mut b = [0u8; 8];
            self.space
                .read_unchecked(u64::from(regions.globals_base) + 8 * i as u64, &mut b);
            self.instances.get_mut(&id.0).expect("checked").globals[i] = u64::from_le_bytes(b);
        }

        Ok(InvokeOutcome {
            result: has_result.then(|| self.machine.gpr(regs::RET)),
            stats,
            transition_cycles: invocation_transition_cycles,
            breakdown,
        })
    }

    /// Bounds-checks a host-side heap access against the instance's
    /// *current* memory size (the host must not reach into guard space or a
    /// neighbouring slot on behalf of a caller).
    fn heap_access(inst: &Instance, offset: u64, len: usize) -> Result<u64, RuntimeError> {
        let size = u64::from(inst.mem_pages) * PAGE_SIZE;
        let oob = RuntimeError::HeapOutOfBounds { offset, len: len as u64, size };
        let end = offset.checked_add(len as u64).ok_or(oob.clone())?;
        if end > size {
            return Err(oob);
        }
        Ok(inst.slot.heap_base + offset)
    }

    /// Reads bytes from an instance's heap (host-side inspection).
    /// Fails with [`RuntimeError::HeapOutOfBounds`] if the range leaves the
    /// instance's memory.
    pub fn read_heap(&self, id: InstanceId, offset: u64, buf: &mut [u8]) -> Result<(), RuntimeError> {
        let inst = self.instances.get(&id.0).ok_or(RuntimeError::BadInstance)?;
        let addr = Self::heap_access(inst, offset, buf.len())?;
        self.space.read_unchecked(addr, buf);
        Ok(())
    }

    /// Writes bytes into an instance's heap, with the same bounds check as
    /// [`Runtime::read_heap`].
    pub fn write_heap(&mut self, id: InstanceId, offset: u64, bytes: &[u8]) -> Result<(), RuntimeError> {
        let inst = self.instances.get(&id.0).ok_or(RuntimeError::BadInstance)?;
        let addr = Self::heap_access(inst, offset, bytes.len())?;
        self.space.write_unchecked(addr, bytes);
        Ok(())
    }

    /// An instance's current global value.
    pub fn global(&self, id: InstanceId, idx: usize) -> Option<u64> {
        self.instances.get(&id.0)?.globals.get(idx).copied()
    }
}
