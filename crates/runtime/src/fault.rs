//! The sandbox fault taxonomy and per-fault recovery contract.
//!
//! Every way a sandboxed invocation can go wrong maps to one
//! [`SandboxFault`], and every fault prescribes one [`RecoveryAction`].
//! The split matters for containment: *guest* faults (the sandbox touched
//! a guard page, another stripe's color, a mismatched MTE tag, or an
//! illegal control-flow target) mean the instance's internal state can no
//! longer be trusted — the runtime poisons it and its slot must go through
//! the quarantine teardown. *Infrastructure* faults (map-count pressure,
//! pool exhaustion, injected `ENOMEM`) say nothing about the guest: they
//! are retryable. Host-API errors and epoch interruption leave the
//! instance healthy.

use sfi_vm::MapError;
use sfi_x86::{MemFault, Trap};

/// Classified cause of a failed invocation or runtime operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SandboxFault {
    /// The sandbox hit a guard region (unmapped or `PROT_NONE` page) — the
    /// classic SFI bounds violation.
    GuardHit {
        /// Faulting virtual address.
        addr: u64,
    },
    /// The sandbox touched memory colored with another stripe's MPK key
    /// while PKRU denied it — ColorGuard's containment boundary.
    ColorFault {
        /// Faulting virtual address.
        addr: u64,
        /// The page's protection key.
        key: u8,
    },
    /// MTE tag mismatch between the pointer's top byte and the granule.
    TagFault {
        /// Faulting virtual address.
        addr: u64,
        /// Tag carried in the pointer.
        ptr_tag: u8,
        /// Tag stored on the granule.
        mem_tag: u8,
    },
    /// An indirect branch or call left the sandbox's valid target set.
    BadControlFlow {
        /// The offending target.
        target: u64,
    },
    /// Any other guest-originated trap (divide error, `ud2`, forbidden
    /// privileged instruction).
    GuestTrap(Trap),
    /// The invocation ran past its epoch budget (cooperative preemption).
    EpochInterrupted,
    /// A host API function returned an error.
    HostError(String),
    /// The pool had no free slot.
    PoolExhausted,
    /// A mapping operation failed (`vm.max_map_count`, injected `ENOMEM`…).
    MapFault(MapError),
}

/// What the runtime (or an orchestrator above it) should do about a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The instance's state is untrusted: it is poisoned and its slot must
    /// be recycled through quarantine before reuse.
    PoisonAndRecycle,
    /// Transient infrastructure failure: retry (with backoff) on a fresh
    /// slot or after resources free up.
    Retry,
    /// The instance is healthy and may be resumed or re-invoked as-is.
    Resume,
    /// Surface the error to the caller; the instance stays healthy.
    Propagate,
}

impl SandboxFault {
    /// Classifies a guest trap.
    pub fn from_trap(trap: &Trap) -> SandboxFault {
        match *trap {
            Trap::Mem(MemFault::Unmapped { addr }) | Trap::Mem(MemFault::Protection { addr }) => {
                SandboxFault::GuardHit { addr }
            }
            Trap::Mem(MemFault::PkuViolation { addr, key }) => SandboxFault::ColorFault { addr, key },
            Trap::Mem(MemFault::MteTagMismatch { addr, ptr_tag, mem_tag }) => {
                SandboxFault::TagFault { addr, ptr_tag, mem_tag }
            }
            Trap::BadControlFlow { target } => SandboxFault::BadControlFlow { target },
            Trap::FuelExhausted => SandboxFault::EpochInterrupted,
            ref t => SandboxFault::GuestTrap(t.clone()),
        }
    }

    /// The prescribed recovery for this fault.
    pub fn recovery(&self) -> RecoveryAction {
        match self {
            SandboxFault::GuardHit { .. }
            | SandboxFault::ColorFault { .. }
            | SandboxFault::TagFault { .. }
            | SandboxFault::BadControlFlow { .. }
            | SandboxFault::GuestTrap(_) => RecoveryAction::PoisonAndRecycle,
            SandboxFault::EpochInterrupted => RecoveryAction::Resume,
            SandboxFault::HostError(_) => RecoveryAction::Propagate,
            SandboxFault::PoolExhausted | SandboxFault::MapFault(_) => RecoveryAction::Retry,
        }
    }

    /// Whether this fault means the guest escaped its contract (and the
    /// instance must be poisoned).
    pub fn poisons(&self) -> bool {
        self.recovery() == RecoveryAction::PoisonAndRecycle
    }

    /// Stable taxonomy name, used as the telemetry label value (one
    /// counter series per variant).
    pub fn kind_name(&self) -> &'static str {
        match self {
            SandboxFault::GuardHit { .. } => "guard_hit",
            SandboxFault::ColorFault { .. } => "color_fault",
            SandboxFault::TagFault { .. } => "tag_fault",
            SandboxFault::BadControlFlow { .. } => "bad_control_flow",
            SandboxFault::GuestTrap(_) => "guest_trap",
            SandboxFault::EpochInterrupted => "epoch_interrupted",
            SandboxFault::HostError(_) => "host_error",
            SandboxFault::PoolExhausted => "pool_exhausted",
            SandboxFault::MapFault(_) => "map_fault",
        }
    }

    /// All taxonomy names, in declaration order — the telemetry layer
    /// pre-registers one counter per name so a fault-free run still exports
    /// explicit zeros.
    pub const KIND_NAMES: [&'static str; 9] = [
        "guard_hit",
        "color_fault",
        "tag_fault",
        "bad_control_flow",
        "guest_trap",
        "epoch_interrupted",
        "host_error",
        "pool_exhausted",
        "map_fault",
    ];
}

impl core::fmt::Display for SandboxFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SandboxFault::GuardHit { addr } => write!(f, "guard hit at {addr:#x}"),
            SandboxFault::ColorFault { addr, key } => {
                write!(f, "PKRU color fault at {addr:#x} (key {key})")
            }
            SandboxFault::TagFault { addr, ptr_tag, mem_tag } => {
                write!(f, "MTE tag fault at {addr:#x} (ptr {ptr_tag:#x}, mem {mem_tag:#x})")
            }
            SandboxFault::BadControlFlow { target } => {
                write!(f, "bad control-flow target {target:#x}")
            }
            SandboxFault::GuestTrap(t) => write!(f, "guest trap: {t}"),
            SandboxFault::EpochInterrupted => f.write_str("epoch interrupted"),
            SandboxFault::HostError(m) => write!(f, "host error: {m}"),
            SandboxFault::PoolExhausted => f.write_str("pool exhausted"),
            SandboxFault::MapFault(e) => write!(f, "map fault: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_traps_poison() {
        let faults = [
            SandboxFault::from_trap(&Trap::Mem(MemFault::Unmapped { addr: 0x1000 })),
            SandboxFault::from_trap(&Trap::Mem(MemFault::PkuViolation { addr: 0x2000, key: 3 })),
            SandboxFault::from_trap(&Trap::Mem(MemFault::MteTagMismatch {
                addr: 0x3000,
                ptr_tag: 1,
                mem_tag: 2,
            })),
            SandboxFault::from_trap(&Trap::BadControlFlow { target: 99 }),
            SandboxFault::from_trap(&Trap::DivideError),
            SandboxFault::from_trap(&Trap::PrivilegedInstruction),
        ];
        for fault in faults {
            assert_eq!(fault.recovery(), RecoveryAction::PoisonAndRecycle, "{fault}");
            assert!(fault.poisons());
        }
    }

    #[test]
    fn classification_is_structural() {
        assert_eq!(
            SandboxFault::from_trap(&Trap::Mem(MemFault::Protection { addr: 7 })),
            SandboxFault::GuardHit { addr: 7 }
        );
        assert_eq!(
            SandboxFault::from_trap(&Trap::Mem(MemFault::PkuViolation { addr: 7, key: 4 })),
            SandboxFault::ColorFault { addr: 7, key: 4 }
        );
        assert_eq!(
            SandboxFault::from_trap(&Trap::FuelExhausted),
            SandboxFault::EpochInterrupted
        );
    }

    #[test]
    fn non_guest_faults_do_not_poison() {
        assert_eq!(SandboxFault::EpochInterrupted.recovery(), RecoveryAction::Resume);
        assert_eq!(
            SandboxFault::HostError("x".into()).recovery(),
            RecoveryAction::Propagate
        );
        assert_eq!(SandboxFault::PoolExhausted.recovery(), RecoveryAction::Retry);
        assert_eq!(
            SandboxFault::MapFault(MapError::Injected).recovery(),
            RecoveryAction::Retry
        );
        for fault in [
            SandboxFault::EpochInterrupted,
            SandboxFault::HostError("x".into()),
            SandboxFault::PoolExhausted,
        ] {
            assert!(!fault.poisons());
        }
    }
}
