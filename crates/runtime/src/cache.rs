//! The compiled-code cache and the [`Engine`] that fronts `sfi-core`.
//!
//! Per-invoke compilation dominates FaaS spawn cost (Kolosick et al. — the
//! transition/setup tax), so the engine memoizes compilation keyed on
//! *everything* that can change the emitted bytes:
//!
//! - the module's content hash ([`sfi_core::module_hash`]),
//! - the compile-options fingerprint ([`CompilerConfig::cache_fingerprint`]
//!   — strategy, vectorizer, stack checks, memory layout, runtime regions),
//! - the allocator's [`SlotLayout::contract_fingerprint`] — guard-elision
//!   decisions baked into code are sound only for the slot layout they were
//!   compiled against (the Table 1 contract), so code must never migrate
//!   between pools with different layouts.
//!
//! Eviction is deterministic LRU (least-recently-*used* by a monotonic
//! logical tick, ties impossible because ticks are unique), and the cache
//! keeps hit/miss/eviction counters so benches can report warm-path rates.
//!
//! [`SlotLayout::contract_fingerprint`]: sfi_pool::SlotLayout::contract_fingerprint

use std::collections::HashMap;
use std::sync::Arc;

use sfi_core::{compile, CompileError, CompiledModule, CompilerConfig};
use sfi_wasm::Module;

/// The full cache key: module content × compile options × layout contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content hash of the module ([`sfi_core::module_hash`]).
    pub module_hash: u64,
    /// Fingerprint of the [`CompilerConfig`] (strategy, vectorizer flags,
    /// layout contract fields, runtime regions).
    pub options_fingerprint: u64,
    /// The pool's slot-layout contract fingerprint.
    pub layout_fingerprint: u64,
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache (no codegen).
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted by LRU capacity pressure.
    pub evictions: u64,
    /// Entries inserted (== misses unless insertion failed).
    pub inserts: u64,
    /// Entries dropped by [`CodeCache::poison`] (compiled code implicated
    /// in repeated guest faults — never serve it warm again).
    pub poisons: u64,
}

struct CacheEntry {
    module: Arc<CompiledModule>,
    /// Logical last-use tick; strictly increasing, so LRU order is total
    /// and eviction is deterministic.
    last_used: u64,
}

/// An LRU-bounded map from [`CacheKey`] to compiled code.
pub struct CodeCache {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl CodeCache {
    /// Creates a cache holding at most `capacity` compiled modules
    /// (`capacity` 0 disables caching: every load is a miss and nothing is
    /// retained).
    pub fn new(capacity: usize) -> CodeCache {
        CodeCache { entries: HashMap::new(), capacity, tick: 0, stats: CacheStats::default() }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CompiledModule>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&e.module))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without touching LRU order or counters.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts compiled code under `key`, evicting the least-recently-used
    /// entry if the cache is at capacity. Returns the evicted key, if any.
    pub fn insert(&mut self, key: CacheKey, module: Arc<CompiledModule>) -> Option<CacheKey> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Unique ticks make min_by_key deterministic.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty at capacity");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
            evicted = Some(victim);
        }
        self.entries.insert(key, CacheEntry { module, last_used: self.tick });
        self.stats.inserts += 1;
        evicted
    }

    /// Drops `key` from the cache because its compiled code is implicated
    /// in repeated guest faults — the next load recompiles from scratch.
    /// Returns whether the entry was resident.
    pub fn poison(&mut self, key: &CacheKey) -> bool {
        let hit = self.entries.remove(key).is_some();
        if hit {
            self.stats.poisons += 1;
        }
        hit
    }
}

/// The engine: a [`CodeCache`] plus the compile path that fills it.
///
/// `Engine::load` is the only compilation entry point a sharded FaaS host
/// needs: a warm spawn is a cache hit (an `Arc` clone), a cold spawn pays
/// `sfi_core::compile`.
pub struct Engine {
    cache: CodeCache,
}

impl Engine {
    /// Creates an engine with a cache of `capacity` modules.
    pub fn new(capacity: usize) -> Engine {
        Engine { cache: CodeCache::new(capacity) }
    }

    /// The cache (for stats and direct inspection).
    pub fn cache(&self) -> &CodeCache {
        &self.cache
    }

    /// Mutable cache access (tests exercise LRU behaviour directly).
    pub fn cache_mut(&mut self) -> &mut CodeCache {
        &mut self.cache
    }

    /// The cache key `load` would use for this (module, config, layout)
    /// triple.
    pub fn key_for(module: &Module, config: &CompilerConfig, layout_fingerprint: u64) -> CacheKey {
        CacheKey {
            module_hash: sfi_core::module_hash(module),
            options_fingerprint: config.cache_fingerprint(),
            layout_fingerprint,
        }
    }

    /// Returns compiled code for `module` under `config`, bound to the pool
    /// layout identified by `layout_fingerprint` — from the cache when
    /// possible, compiling (and caching) otherwise.
    pub fn load(
        &mut self,
        module: &Module,
        config: &CompilerConfig,
        layout_fingerprint: u64,
    ) -> Result<Arc<CompiledModule>, CompileError> {
        let key = Self::key_for(module, config, layout_fingerprint);
        if let Some(cm) = self.cache.get(&key) {
            return Ok(cm);
        }
        let cm = Arc::new(compile(module, config)?);
        self.cache.insert(key, Arc::clone(&cm));
        Ok(cm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_core::Strategy;
    use sfi_wasm::wat;

    fn tiny(n: u32) -> Module {
        wat::parse(&format!(
            "(module (memory 1) (func (export \"f\") (result i32) i32.const {n}))"
        ))
        .unwrap()
    }

    #[test]
    fn warm_load_is_a_hit_and_shares_the_arc() {
        let mut eng = Engine::new(4);
        let m = tiny(7);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let a = eng.load(&m, &cfg, 1).unwrap();
        let b = eng.load(&m, &cfg, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache hit must return the same code");
        let s = eng.cache().stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn any_key_component_separates_entries() {
        let mut eng = Engine::new(8);
        let m = tiny(7);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let base = eng.load(&m, &cfg, 1).unwrap();

        let other_module = eng.load(&tiny(8), &cfg, 1).unwrap();
        assert!(!Arc::ptr_eq(&base, &other_module));

        let other_cfg = eng.load(&m, &CompilerConfig::for_strategy(Strategy::BoundsCheck), 1).unwrap();
        assert!(!Arc::ptr_eq(&base, &other_cfg));

        let other_layout = eng.load(&m, &cfg, 2).unwrap();
        assert!(!Arc::ptr_eq(&base, &other_layout));

        assert_eq!(eng.cache().len(), 4);
        assert_eq!(eng.cache().stats().hits, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut eng = Engine::new(2);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let (m1, m2, m3) = (tiny(1), tiny(2), tiny(3));
        eng.load(&m1, &cfg, 0).unwrap();
        eng.load(&m2, &cfg, 0).unwrap();
        eng.load(&m1, &cfg, 0).unwrap(); // refresh m1 → m2 is now LRU
        eng.load(&m3, &cfg, 0).unwrap(); // evicts m2
        assert_eq!(eng.cache().stats().evictions, 1);
        assert!(eng.cache().contains(&Engine::key_for(&m1, &cfg, 0)), "m1 kept (recently used)");
        assert!(!eng.cache().contains(&Engine::key_for(&m2, &cfg, 0)), "m2 evicted");
        assert!(eng.cache().contains(&Engine::key_for(&m3, &cfg, 0)));
    }

    #[test]
    fn poison_drops_the_entry_and_counts() {
        let mut eng = Engine::new(4);
        let m = tiny(9);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let key = Engine::key_for(&m, &cfg, 1);
        let a = eng.load(&m, &cfg, 1).unwrap();
        assert!(eng.cache_mut().poison(&key), "resident entry dropped");
        assert!(!eng.cache_mut().poison(&key), "second poison is a no-op");
        let b = eng.load(&m, &cfg, 1).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "poisoned code is recompiled, not served warm");
        let s = eng.cache().stats();
        assert_eq!((s.poisons, s.misses), (1, 2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut eng = Engine::new(0);
        let m = tiny(1);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let a = eng.load(&m, &cfg, 0).unwrap();
        let b = eng.load(&m, &cfg, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "nothing retained at capacity 0");
        assert_eq!(eng.cache().stats().misses, 2);
        assert_eq!(eng.cache().len(), 0);
    }
}
