//! The compiled-code cache and the [`Engine`] that fronts `sfi-core`.
//!
//! Per-invoke compilation dominates FaaS spawn cost (Kolosick et al. — the
//! transition/setup tax), so the engine memoizes compilation keyed on
//! *everything* that can change the emitted bytes:
//!
//! - the module's content hash ([`sfi_core::module_hash`]),
//! - the compile-options fingerprint ([`CompilerConfig::cache_fingerprint`]
//!   — strategy, vectorizer, stack checks, memory layout, runtime regions),
//! - the allocator's [`SlotLayout::contract_fingerprint`] — guard-elision
//!   decisions baked into code are sound only for the slot layout they were
//!   compiled against (the Table 1 contract), so code must never migrate
//!   between pools with different layouts.
//!
//! Eviction is deterministic LRU (least-recently-*used* by a monotonic
//! logical tick, ties impossible because ticks are unique), and the cache
//! keeps hit/miss/eviction counters so benches can report warm-path rates.
//!
//! [`SlotLayout::contract_fingerprint`]: sfi_pool::SlotLayout::contract_fingerprint

use std::collections::HashMap;
use std::sync::Arc;

use sfi_core::{compile, CompileError, CompiledModule, CompilerConfig};
use sfi_wasm::Module;

/// The full cache key: module content × compile options × layout contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content hash of the module ([`sfi_core::module_hash`]).
    pub module_hash: u64,
    /// Fingerprint of the [`CompilerConfig`] (strategy, vectorizer flags,
    /// layout contract fields, runtime regions).
    pub options_fingerprint: u64,
    /// The pool's slot-layout contract fingerprint.
    pub layout_fingerprint: u64,
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache (no codegen).
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted by LRU capacity pressure.
    pub evictions: u64,
    /// Entries inserted (== misses unless insertion failed).
    pub inserts: u64,
    /// Entries dropped by [`CodeCache::poison`] (compiled code implicated
    /// in repeated guest faults — never serve it warm again).
    pub poisons: u64,
}

struct CacheEntry {
    module: Arc<CompiledModule>,
    /// Logical last-use tick; strictly increasing, so LRU order is total
    /// and eviction is deterministic.
    last_used: u64,
}

/// An LRU-bounded map from [`CacheKey`] to compiled code.
pub struct CodeCache {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl CodeCache {
    /// Creates a cache holding at most `capacity` compiled modules
    /// (`capacity` 0 disables caching: every load is a miss and nothing is
    /// retained).
    pub fn new(capacity: usize) -> CodeCache {
        CodeCache { entries: HashMap::new(), capacity, tick: 0, stats: CacheStats::default() }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CompiledModule>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&e.module))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without touching LRU order or counters.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts compiled code under `key`, evicting the least-recently-used
    /// entry if the cache is at capacity. Returns the evicted key, if any.
    pub fn insert(&mut self, key: CacheKey, module: Arc<CompiledModule>) -> Option<CacheKey> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Unique ticks make min_by_key deterministic.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty at capacity");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
            evicted = Some(victim);
        }
        self.entries.insert(key, CacheEntry { module, last_used: self.tick });
        self.stats.inserts += 1;
        evicted
    }

    /// Drops `key` from the cache because its compiled code is implicated
    /// in repeated guest faults — the next load recompiles from scratch.
    /// Returns whether the entry was resident.
    pub fn poison(&mut self, key: &CacheKey) -> bool {
        let hit = self.entries.remove(key).is_some();
        if hit {
            self.stats.poisons += 1;
        }
        hit
    }
}

/// Which compiler tier produced a served module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The single-pass baseline compiler (cold spawns).
    Baseline,
    /// The optimizing tier (hot modules past the promotion threshold).
    Optimized,
}

impl Tier {
    /// Stable lowercase name (metric label value).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Baseline => "baseline",
            Tier::Optimized => "optimized",
        }
    }
}

/// When to recompile a module at the optimizing tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPolicy {
    /// Number of baseline loads of the same key after which the next load
    /// recompiles at [`Tier::Optimized`]. `u64::MAX` disables promotion.
    pub promote_after: u64,
}

impl Default for TierPolicy {
    fn default() -> TierPolicy {
        TierPolicy { promote_after: 8 }
    }
}

/// Tiering observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Hot-count threshold crossings that compiled an optimized body.
    pub promotions: u64,
    /// Demotions (optimized entry poisoned, hot count reset).
    pub demotions: u64,
}

/// The engine: a [`CodeCache`] plus the compile path that fills it.
///
/// `Engine::load` is the only compilation entry point a sharded FaaS host
/// needs: a warm spawn is a cache hit (an `Arc` clone), a cold spawn pays
/// `sfi_core::compile`. [`Engine::load_tiered`] adds hot-count promotion on
/// top: cold modules are served by the baseline single-pass compiler, and a
/// module loaded more than [`TierPolicy::promote_after`] times is
/// recompiled at the optimizing tier (a *different* cache key — the tier is
/// part of [`CompilerConfig::cache_fingerprint`], so a stale baseline body
/// can never be served as optimized or vice versa).
pub struct Engine {
    cache: CodeCache,
    tier_policy: TierPolicy,
    tier_stats: TierStats,
    /// Baseline-key → load count (reset by [`Engine::demote`]).
    hot_counts: HashMap<CacheKey, u64>,
}

impl Engine {
    /// Creates an engine with a cache of `capacity` modules.
    pub fn new(capacity: usize) -> Engine {
        Engine {
            cache: CodeCache::new(capacity),
            tier_policy: TierPolicy::default(),
            tier_stats: TierStats::default(),
            hot_counts: HashMap::new(),
        }
    }

    /// Creates an engine with an explicit promotion policy.
    pub fn with_tier_policy(capacity: usize, policy: TierPolicy) -> Engine {
        Engine { tier_policy: policy, ..Engine::new(capacity) }
    }

    /// The active promotion policy.
    pub fn tier_policy(&self) -> TierPolicy {
        self.tier_policy
    }

    /// Tiering counters snapshot.
    pub fn tier_stats(&self) -> TierStats {
        self.tier_stats
    }

    /// The baseline load count for this (module, config, layout) triple.
    pub fn hot_count(&self, module: &Module, config: &CompilerConfig, layout_fingerprint: u64) -> u64 {
        let key = Self::key_for(module, &Self::baseline_config(config), layout_fingerprint);
        self.hot_counts.get(&key).copied().unwrap_or(0)
    }

    /// The cache (for stats and direct inspection).
    pub fn cache(&self) -> &CodeCache {
        &self.cache
    }

    /// Mutable cache access (tests exercise LRU behaviour directly).
    pub fn cache_mut(&mut self) -> &mut CodeCache {
        &mut self.cache
    }

    /// The cache key `load` would use for this (module, config, layout)
    /// triple.
    pub fn key_for(module: &Module, config: &CompilerConfig, layout_fingerprint: u64) -> CacheKey {
        CacheKey {
            module_hash: sfi_core::module_hash(module),
            options_fingerprint: config.cache_fingerprint(),
            layout_fingerprint,
        }
    }

    /// Returns compiled code for `module` under `config`, bound to the pool
    /// layout identified by `layout_fingerprint` — from the cache when
    /// possible, compiling (and caching) otherwise.
    pub fn load(
        &mut self,
        module: &Module,
        config: &CompilerConfig,
        layout_fingerprint: u64,
    ) -> Result<Arc<CompiledModule>, CompileError> {
        let key = Self::key_for(module, config, layout_fingerprint);
        if let Some(cm) = self.cache.get(&key) {
            return Ok(cm);
        }
        let cm = Arc::new(compile(module, config)?);
        self.cache.insert(key, Arc::clone(&cm));
        Ok(cm)
    }

    fn baseline_config(config: &CompilerConfig) -> CompilerConfig {
        let mut c = config.clone();
        c.opt_level = sfi_core::OptLevel::Baseline;
        c
    }

    /// Tiered load: serves the optimizing tier when this module is hot,
    /// the baseline otherwise.
    ///
    /// - If an optimized body is resident it is served immediately (no
    ///   hot-count bump — the module already earned its tier).
    /// - Otherwise the baseline load count is bumped; once it exceeds
    ///   [`TierPolicy::promote_after`], the module is recompiled at
    ///   [`Tier::Optimized`] under its own cache key.
    /// - Below the threshold, this is exactly [`Engine::load`] with the
    ///   baseline config.
    ///
    /// Returns the compiled module and the tier that produced it.
    pub fn load_tiered(
        &mut self,
        module: &Module,
        config: &CompilerConfig,
        layout_fingerprint: u64,
    ) -> Result<(Arc<CompiledModule>, Tier), CompileError> {
        let base_cfg = Self::baseline_config(config);
        let opt_cfg = base_cfg.clone().optimized();
        let opt_key = Self::key_for(module, &opt_cfg, layout_fingerprint);

        // A resident optimized body wins outright. `contains` first so a
        // cold module does not pollute the miss counter with a speculative
        // optimized-tier probe.
        if self.cache.contains(&opt_key) {
            let cm = self.cache.get(&opt_key).expect("checked residency");
            return Ok((cm, Tier::Optimized));
        }

        let base_key = Self::key_for(module, &base_cfg, layout_fingerprint);
        let count = self.hot_counts.entry(base_key).or_insert(0);
        *count += 1;
        if *count > self.tier_policy.promote_after {
            let cm = self.load(module, &opt_cfg, layout_fingerprint)?;
            self.tier_stats.promotions += 1;
            return Ok((cm, Tier::Optimized));
        }
        let cm = self.load(module, &base_cfg, layout_fingerprint)?;
        Ok((cm, Tier::Baseline))
    }

    /// Demotes a module: poisons its optimized-tier cache entry and resets
    /// its hot count, so subsequent loads fall back to the still-cached
    /// baseline body *without recompiling or re-validating anything*.
    /// Returns whether an optimized body was resident.
    pub fn demote(
        &mut self,
        module: &Module,
        config: &CompilerConfig,
        layout_fingerprint: u64,
    ) -> bool {
        let base_cfg = Self::baseline_config(config);
        let opt_key = Self::key_for(module, &base_cfg.clone().optimized(), layout_fingerprint);
        let base_key = Self::key_for(module, &base_cfg, layout_fingerprint);
        self.hot_counts.remove(&base_key);
        let dropped = self.cache.poison(&opt_key);
        self.tier_stats.demotions += 1;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_core::Strategy;
    use sfi_wasm::wat;

    fn tiny(n: u32) -> Module {
        wat::parse(&format!(
            "(module (memory 1) (func (export \"f\") (result i32) i32.const {n}))"
        ))
        .unwrap()
    }

    #[test]
    fn warm_load_is_a_hit_and_shares_the_arc() {
        let mut eng = Engine::new(4);
        let m = tiny(7);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let a = eng.load(&m, &cfg, 1).unwrap();
        let b = eng.load(&m, &cfg, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache hit must return the same code");
        let s = eng.cache().stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn any_key_component_separates_entries() {
        let mut eng = Engine::new(8);
        let m = tiny(7);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let base = eng.load(&m, &cfg, 1).unwrap();

        let other_module = eng.load(&tiny(8), &cfg, 1).unwrap();
        assert!(!Arc::ptr_eq(&base, &other_module));

        let other_cfg = eng.load(&m, &CompilerConfig::for_strategy(Strategy::BoundsCheck), 1).unwrap();
        assert!(!Arc::ptr_eq(&base, &other_cfg));

        let other_layout = eng.load(&m, &cfg, 2).unwrap();
        assert!(!Arc::ptr_eq(&base, &other_layout));

        assert_eq!(eng.cache().len(), 4);
        assert_eq!(eng.cache().stats().hits, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut eng = Engine::new(2);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let (m1, m2, m3) = (tiny(1), tiny(2), tiny(3));
        eng.load(&m1, &cfg, 0).unwrap();
        eng.load(&m2, &cfg, 0).unwrap();
        eng.load(&m1, &cfg, 0).unwrap(); // refresh m1 → m2 is now LRU
        eng.load(&m3, &cfg, 0).unwrap(); // evicts m2
        assert_eq!(eng.cache().stats().evictions, 1);
        assert!(eng.cache().contains(&Engine::key_for(&m1, &cfg, 0)), "m1 kept (recently used)");
        assert!(!eng.cache().contains(&Engine::key_for(&m2, &cfg, 0)), "m2 evicted");
        assert!(eng.cache().contains(&Engine::key_for(&m3, &cfg, 0)));
    }

    #[test]
    fn poison_drops_the_entry_and_counts() {
        let mut eng = Engine::new(4);
        let m = tiny(9);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let key = Engine::key_for(&m, &cfg, 1);
        let a = eng.load(&m, &cfg, 1).unwrap();
        assert!(eng.cache_mut().poison(&key), "resident entry dropped");
        assert!(!eng.cache_mut().poison(&key), "second poison is a no-op");
        let b = eng.load(&m, &cfg, 1).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "poisoned code is recompiled, not served warm");
        let s = eng.cache().stats();
        assert_eq!((s.poisons, s.misses), (1, 2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut eng = Engine::new(0);
        let m = tiny(1);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let a = eng.load(&m, &cfg, 0).unwrap();
        let b = eng.load(&m, &cfg, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "nothing retained at capacity 0");
        assert_eq!(eng.cache().stats().misses, 2);
        assert_eq!(eng.cache().len(), 0);
    }

    #[test]
    fn tier_fingerprints_differ_so_promotion_cannot_hit_stale_code() {
        let m = tiny(5);
        let base = CompilerConfig::for_strategy(Strategy::Segue);
        let opt = base.clone().optimized();
        let bk = Engine::key_for(&m, &base, 1);
        let ok = Engine::key_for(&m, &opt, 1);
        assert_ne!(
            bk.options_fingerprint, ok.options_fingerprint,
            "the optimizing tier must land under its own cache key"
        );
    }

    #[test]
    fn promotion_recompiles_under_a_distinct_key_after_the_threshold() {
        let mut eng = Engine::with_tier_policy(8, TierPolicy { promote_after: 2 });
        let m = tiny(11);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);

        let (a, t1) = eng.load_tiered(&m, &cfg, 1).unwrap();
        let (b, t2) = eng.load_tiered(&m, &cfg, 1).unwrap();
        assert_eq!((t1, t2), (Tier::Baseline, Tier::Baseline));
        assert!(Arc::ptr_eq(&a, &b), "warm baseline served while cold");

        let (c, t3) = eng.load_tiered(&m, &cfg, 1).unwrap();
        assert_eq!(t3, Tier::Optimized, "third spawn crosses promote_after = 2");
        assert!(!Arc::ptr_eq(&a, &c), "promotion is a real recompile, not a stale hit");
        assert_eq!(eng.tier_stats().promotions, 1);
        assert_eq!(eng.cache().len(), 2, "baseline and optimized coexist under distinct keys");

        let (d, t4) = eng.load_tiered(&m, &cfg, 1).unwrap();
        assert_eq!(t4, Tier::Optimized);
        assert!(Arc::ptr_eq(&c, &d), "later spawns hit the optimized entry directly");
        assert_eq!(eng.tier_stats().promotions, 1, "a warm optimized hit is not a new promotion");
    }

    #[test]
    fn demote_falls_back_to_warm_baseline_without_revalidation() {
        let mut eng = Engine::with_tier_policy(8, TierPolicy { promote_after: 1 });
        let m = tiny(13);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);

        let (base_code, _) = eng.load_tiered(&m, &cfg, 1).unwrap();
        let (_, tier) = eng.load_tiered(&m, &cfg, 1).unwrap();
        assert_eq!(tier, Tier::Optimized);

        let misses_before = eng.cache().stats().misses;
        assert!(eng.demote(&m, &cfg, 1), "optimized entry was resident and dropped");
        assert_eq!(eng.tier_stats().demotions, 1);

        let (after, tier) = eng.load_tiered(&m, &cfg, 1).unwrap();
        assert_eq!(tier, Tier::Baseline, "demoted module restarts at the baseline tier");
        assert!(
            Arc::ptr_eq(&base_code, &after),
            "fallback serves the still-resident baseline entry"
        );
        assert_eq!(
            eng.cache().stats().misses,
            misses_before,
            "demotion fallback must not recompile anything"
        );
    }

    #[test]
    fn tiering_respects_explicitly_requested_opt_levels() {
        // A caller who asks for the optimized config outright still goes
        // through the hot-count ladder: load_tiered normalizes to baseline
        // first so tier decisions stay deterministic per module.
        let mut eng = Engine::with_tier_policy(8, TierPolicy { promote_after: 1 });
        let m = tiny(17);
        let opt_cfg = CompilerConfig::for_strategy(Strategy::Segue).optimized();
        let (_, t1) = eng.load_tiered(&m, &opt_cfg, 1).unwrap();
        assert_eq!(t1, Tier::Baseline, "first spawn is cold regardless of requested level");
        let (_, t2) = eng.load_tiered(&m, &opt_cfg, 1).unwrap();
        assert_eq!(t2, Tier::Optimized);
    }
}
