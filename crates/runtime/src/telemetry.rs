//! Runtime telemetry: the metrics registry, flight recorder and virtual
//! clock threaded through [`crate::Runtime`].
//!
//! Everything here is deterministic: the clock advances only by *modeled*
//! cycles (never wall time), counters are bumped at well-defined lifecycle
//! edges, and gauges are synced by scraping the pool / address space /
//! code cache at snapshot time. Two same-seed runs therefore export
//! byte-identical Prometheus text, JSON snapshots and flight-recorder
//! dumps — the acceptance property the telemetry CI gate checks.

use sfi_pool::{MemoryPool, QuarantineStats};
use sfi_telemetry::{
    CounterId, FlightRecorder, GaugeId, HistogramId, Registry, SampledCounterId, TraceEvent,
    TraceKind, VirtualClock,
};
use sfi_vm::{AddressSpace, ChaosStats, SyscallKind};

use sfi_x86::Provenance;

use crate::cache::{CacheStats, Tier, TierStats};
use crate::fault::SandboxFault;
use crate::runtime::{CycleBreakdown, PENALTY_NAMES};
use crate::transition::TransitionKind;

/// Sampling rate of the per-access `sfi_guest_mem_accesses_total` series
/// (declared in its `sample_rate` label; estimate = value × rate, with
/// absolute error bounded below one rate's worth of trials).
pub const MEM_ACCESS_SAMPLE_RATE: u64 = 256;

/// The telemetry bundle owned by one [`crate::Runtime`] (or one FaaS
/// shard): a registry with every runtime metric pre-registered, a bounded
/// flight recorder, and the virtual clock that stamps its events.
#[derive(Debug)]
pub struct RuntimeTelemetry {
    registry: Registry,
    /// The flight recorder (capacity 0 = disabled).
    pub recorder: FlightRecorder,
    /// Virtual time: modeled cycles, advanced by the transition and guest
    /// cost models.
    pub clock: VirtualClock,
    core: u32,

    t_total: CounterId,
    t_wrpkru: CounterId,
    t_wrgsbase: CounterId,
    t_arch_prctl: CounterId,
    t_async: CounterId,
    h_transition_cycles: HistogramId,
    faults: [CounterId; SandboxFault::KIND_NAMES.len()],
    q_quarantines: CounterId,
    q_rehabilitations: CounterId,
    q_retirements: CounterId,
    g_quarantine_depth: GaugeId,
    g_quarantine_peak: GaugeId,
    c_hits: CounterId,
    c_misses: CounterId,
    c_evictions: CounterId,
    c_inserts: CounterId,
    c_poisons: CounterId,
    tier_promotions: CounterId,
    tier_demotions: CounterId,
    /// Guest cycle histograms keyed by compiler tier
    /// (indexed like [`Tier::Baseline`], [`Tier::Optimized`]).
    h_tier_cycles: [HistogramId; 2],
    chaos_failed: [CounterId; 4],
    chaos_bus: CounterId,
    g_slots_in_use: GaugeId,
    g_slots_capacity: GaugeId,
    g_slots_retired: GaugeId,
    g_map_count: GaugeId,
    g_peak_map_count: GaugeId,
    g_instances: GaugeId,
    s_mem_accesses: SampledCounterId,
    /// Cycle-attribution profile counters (DESIGN.md §14): guest cycles by
    /// provenance, penalties by kind, plus the host-side transition and
    /// compile charges — together they account for every modeled cycle.
    p_prov: [CounterId; Provenance::COUNT],
    p_pen: [CounterId; PENALTY_NAMES.len()],
    p_transition: CounterId,
    c_compile_cycles: CounterId,
    /// Speculation counters (DESIGN.md §16): window flushes, detected
    /// transient leaks, and mitigation-sequence cycles by level.
    spec_flushes: CounterId,
    spec_leaks: CounterId,
    spec_mitigation_cycles: [CounterId; sfi_core::MitigationLevel::ALL.len()],

    /// Last scraped snapshots, so scraping adds deltas into monotonic
    /// counters instead of double counting.
    last_quarantine: QuarantineStats,
    last_cache: CacheStats,
    last_chaos: ChaosStats,
    last_tiers: TierStats,
}

impl RuntimeTelemetry {
    /// Builds the bundle, pre-registering every metric (name collisions
    /// panic here — the startup gate). `recorder_capacity` 0 disables the
    /// flight recorder; `core` stamps this runtime's trace events (a
    /// sharded host passes the shard index).
    pub fn new(recorder_capacity: usize, core: u32) -> RuntimeTelemetry {
        let mut r = Registry::new();
        let faults = SandboxFault::KIND_NAMES
            .map(|name| r.counter_with("sfi_faults_total", &[("kind", name)]));
        let chaos_failed = [
            SyscallKind::Mmap,
            SyscallKind::Mprotect,
            SyscallKind::PkeyMprotect,
            SyscallKind::Madvise,
        ]
        .map(|k| r.counter_with("sfi_chaos_syscalls_failed_total", &[("kind", k.name())]));
        let p_prov = Provenance::ALL
            .map(|p| r.counter_with("sfi_profile_cycles_total", &[("provenance", p.name())]));
        let p_pen = PENALTY_NAMES
            .map(|p| r.counter_with("sfi_profile_penalty_cycles_total", &[("penalty", p)]));
        let spec_mitigation_cycles = sfi_core::MitigationLevel::ALL
            .map(|l| r.counter_with("sfi_spec_mitigation_cycles_total", &[("level", l.name())]));
        RuntimeTelemetry {
            t_total: r.counter("sfi_transitions_total"),
            t_wrpkru: r.counter_with("sfi_transition_ops_total", &[("op", "wrpkru")]),
            t_wrgsbase: r.counter_with("sfi_transition_ops_total", &[("op", "wrgsbase")]),
            t_arch_prctl: r.counter_with("sfi_transition_ops_total", &[("op", "arch_prctl")]),
            t_async: r.counter_with("sfi_transition_ops_total", &[("op", "async_stack_switch")]),
            h_transition_cycles: r.histogram("sfi_invocation_transition_cycles"),
            faults,
            q_quarantines: r.counter("sfi_quarantine_total"),
            q_rehabilitations: r.counter("sfi_quarantine_rehabilitations_total"),
            q_retirements: r.counter("sfi_quarantine_retirements_total"),
            g_quarantine_depth: r.gauge("sfi_quarantine_ring_depth"),
            g_quarantine_peak: r.gauge("sfi_quarantine_ring_peak"),
            c_hits: r.counter("sfi_code_cache_hits_total"),
            c_misses: r.counter("sfi_code_cache_misses_total"),
            c_evictions: r.counter("sfi_code_cache_evictions_total"),
            c_inserts: r.counter("sfi_code_cache_inserts_total"),
            c_poisons: r.counter("sfi_code_cache_poisons_total"),
            tier_promotions: r.counter("sfi_tier_promotions_total"),
            tier_demotions: r.counter("sfi_tier_demotions_total"),
            h_tier_cycles: [Tier::Baseline, Tier::Optimized].map(|t| {
                r.try_histogram("sfi_tier_guest_cycles", &[("tier", t.name())])
                    .expect("metric registration")
            }),
            chaos_failed,
            chaos_bus: r.counter("sfi_chaos_bus_faults_total"),
            g_slots_in_use: r.gauge("sfi_pool_slots_in_use"),
            g_slots_capacity: r.gauge("sfi_pool_slots_capacity"),
            g_slots_retired: r.gauge("sfi_pool_slots_retired"),
            g_map_count: r.gauge("sfi_vm_map_count"),
            g_peak_map_count: r.gauge("sfi_vm_peak_map_count"),
            g_instances: r.gauge("sfi_instances_live"),
            // Guest memory accesses are per-*instruction* events — orders of
            // magnitude hotter than any lifecycle counter — so the series is
            // sampled 1-in-N (rate declared in its `sample_rate` label,
            // scrapers un-bias with value × rate). The phase is seeded from
            // the core index so shards sample out of lockstep yet every run
            // with the same topology exports identical bytes.
            p_prov,
            p_pen,
            p_transition: r
                .counter_with("sfi_profile_cycles_total", &[("provenance", "transition")]),
            c_compile_cycles: r.counter("sfi_compile_cycles_total"),
            spec_flushes: r.counter("sfi_spec_flushes_total"),
            spec_leaks: r.counter("sfi_spec_leaks_total"),
            spec_mitigation_cycles,
            s_mem_accesses: r.sampled_counter(
                "sfi_guest_mem_accesses_total",
                &[],
                MEM_ACCESS_SAMPLE_RATE,
                0x00D1_CE5A ^ u64::from(core),
            ),
            last_quarantine: QuarantineStats::default(),
            last_cache: CacheStats::default(),
            last_chaos: ChaosStats::default(),
            last_tiers: TierStats::default(),
            registry: r,
            recorder: FlightRecorder::new(recorder_capacity),
            clock: VirtualClock::new(),
            core,
        }
    }

    /// The registry (export via [`sfi_telemetry::export`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records a trace event at the current virtual tick.
    pub fn trace(&mut self, kind: TraceKind, sandbox: u64, arg: u64) {
        let ev = TraceEvent { tick: self.clock.now(), core: self.core, sandbox, kind, arg };
        self.recorder.record(ev);
    }

    /// Accounts one transition: total + per-op counters, and the virtual
    /// clock advances by its modeled cycles.
    pub fn on_transition(&mut self, kind: TransitionKind, cycles: f64) {
        self.registry.inc(self.t_total);
        if kind.colorguard {
            self.registry.inc(self.t_wrpkru);
        }
        if kind.set_segment_base {
            if kind.segment_base_via_syscall {
                self.registry.inc(self.t_arch_prctl);
            } else {
                self.registry.inc(self.t_wrgsbase);
            }
        }
        if kind.async_stack_switch {
            self.registry.inc(self.t_async);
        }
        self.clock.advance_cycles(cycles);
    }

    /// Observes one invocation's total transition cycles (entry + exit +
    /// host-call pairs) into the cycle histogram.
    pub fn observe_invocation_transition_cycles(&mut self, cycles: f64) {
        self.registry.observe(self.h_transition_cycles, cycles.round() as u64);
    }

    /// Feeds one invocation's guest loads + stores as sampling trials into
    /// the 1-in-N `sfi_guest_mem_accesses_total` series. Batch form: the
    /// interpreter already counts accesses per run, and batch selection is
    /// O(1), so this costs the same whether the guest touched ten words or
    /// ten million.
    pub fn on_guest_mem_accesses(&mut self, loads: u64, stores: u64) {
        self.registry.sample_trials(self.s_mem_accesses, loads + stores);
    }

    /// Counts one classified fault.
    pub fn on_fault(&mut self, fault: &SandboxFault) {
        let idx = SandboxFault::KIND_NAMES
            .iter()
            .position(|n| *n == fault.kind_name())
            .expect("every fault kind is pre-registered");
        self.registry.inc(self.faults[idx]);
    }

    /// Syncs gauges and scrapes the pool's quarantine counters and the
    /// address space's chaos counters (delta-based, so repeated scrapes
    /// never double count).
    pub fn scrape(&mut self, pool: &MemoryPool, space: &AddressSpace, instances: usize) {
        self.registry.set(self.g_slots_in_use, pool.in_use() as i64);
        self.registry.set(self.g_slots_capacity, pool.capacity() as i64);
        self.registry.set(self.g_slots_retired, pool.retired() as i64);
        self.registry.set(self.g_quarantine_depth, pool.quarantined() as i64);
        self.registry.set(self.g_map_count, space.map_count() as i64);
        self.registry.set(self.g_peak_map_count, space.peak_map_count() as i64);
        self.registry.set(self.g_instances, instances as i64);

        let q = pool.quarantine_stats();
        self.registry.add(self.q_quarantines, q.quarantines - self.last_quarantine.quarantines);
        self.registry.add(
            self.q_rehabilitations,
            q.rehabilitations - self.last_quarantine.rehabilitations,
        );
        self.registry.add(self.q_retirements, q.retirements - self.last_quarantine.retirements);
        self.registry.set(self.g_quarantine_peak, q.peak_quarantined as i64);
        self.last_quarantine = q;

        if let Some(plan) = space.fault_plan() {
            let c = plan.stats;
            for (i, id) in self.chaos_failed.iter().enumerate() {
                self.registry.add(
                    *id,
                    c.syscalls_failed_by_kind[i] - self.last_chaos.syscalls_failed_by_kind[i],
                );
            }
            self.registry.add(self.chaos_bus, c.bus_faults - self.last_chaos.bus_faults);
            self.last_chaos = c;
        }
    }

    /// Scrapes code-cache counters (the cache lives in the [`crate::Engine`]
    /// above the runtime, so the owner hands in its stats).
    pub fn scrape_cache(&mut self, stats: CacheStats) {
        self.registry.add(self.c_hits, stats.hits - self.last_cache.hits);
        self.registry.add(self.c_misses, stats.misses - self.last_cache.misses);
        self.registry.add(self.c_evictions, stats.evictions - self.last_cache.evictions);
        self.registry.add(self.c_inserts, stats.inserts - self.last_cache.inserts);
        self.registry.add(self.c_poisons, stats.poisons - self.last_cache.poisons);
        self.last_cache = stats;
    }

    /// Scrapes the engine's tiering counters (delta-based, like the cache
    /// scrape).
    pub fn scrape_tiers(&mut self, stats: TierStats) {
        self.registry.add(self.tier_promotions, stats.promotions - self.last_tiers.promotions);
        self.registry.add(self.tier_demotions, stats.demotions - self.last_tiers.demotions);
        self.last_tiers = stats;
    }

    /// Observes one invocation's guest cycles into the per-tier histogram.
    pub fn observe_guest_cycles(&mut self, tier: Tier, cycles: f64) {
        let idx = match tier {
            Tier::Baseline => 0,
            Tier::Optimized => 1,
        };
        self.registry.observe(self.h_tier_cycles[idx], cycles.round() as u64);
    }

    /// Accounts one invocation's [`CycleBreakdown`] into the profile
    /// counters: guest cycles by provenance, penalties by kind, the
    /// host-side transition charge (under `provenance="transition"`), and
    /// any drained cold-spawn compile cycles. Cycles are rounded per
    /// invocation — the counters are a profile surface, not the benchmark
    /// numbers, which stay exact f64 in [`sfi_x86::cost::RunStats`].
    pub fn observe_breakdown(&mut self, b: &CycleBreakdown) {
        for (i, id) in self.p_prov.iter().enumerate() {
            self.registry.add(*id, b.guest_prov_cycles[i].round() as u64);
        }
        for (i, id) in self.p_pen.iter().enumerate() {
            self.registry.add(*id, b.penalty_cycles[i].round() as u64);
        }
        self.registry.add(self.p_transition, b.transition_cycles.round() as u64);
        self.registry.add(self.c_compile_cycles, b.compile_cycles.round() as u64);
    }

    /// Accounts one completed run's speculation counters (DESIGN.md §16):
    /// window flushes, detected transient leaks, and the cycles spent in
    /// the compiled-in mitigation sequences, labeled with the module's
    /// mitigation level. Runs without a speculation window contribute
    /// zero flushes/leaks but still attribute their mitigation cycles —
    /// hardened code pays its overhead whether or not the emulator models
    /// the transient window.
    pub fn observe_speculation(
        &mut self,
        stats: &sfi_x86::cost::RunStats,
        level: sfi_core::MitigationLevel,
    ) {
        self.registry.add(self.spec_flushes, stats.spec_flushes);
        self.registry.add(self.spec_leaks, stats.spec_leaks);
        let idx = sfi_core::MitigationLevel::ALL
            .iter()
            .position(|&l| l == level)
            .expect("ALL covers every level");
        self.registry.add(
            self.spec_mitigation_cycles[idx],
            stats.prov_cycles[Provenance::SpecMitigation.index()].round() as u64,
        );
    }

    /// Merges another bundle's registry into this one (sharded hosts merge
    /// per-core registries at export).
    pub fn merge_registry_from(&mut self, other: &RuntimeTelemetry) {
        self.registry.merge_from(&other.registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_telemetry::export::json_snapshot;

    #[test]
    fn preregistered_metrics_export_zeros() {
        let t = RuntimeTelemetry::new(0, 0);
        let snap = json_snapshot(t.registry());
        assert!(snap.contains("\"sfi_faults_total{kind=\\\"color_fault\\\"}\": 0"), "{snap}");
        assert!(snap.contains("\"sfi_transitions_total\": 0"));
        assert!(snap.contains("\"sfi_code_cache_poisons_total\": 0"));
    }

    #[test]
    fn transition_accounting_advances_the_clock() {
        let mut t = RuntimeTelemetry::new(8, 3);
        let kind = TransitionKind { colorguard: true, ..Default::default() };
        t.on_transition(kind, 113.3);
        t.trace(TraceKind::Enter, 7, 2);
        assert_eq!(t.clock.now(), 113);
        assert_eq!(t.registry().counter_value("sfi_transitions_total"), Some(1));
        assert_eq!(
            t.registry().counter_value("sfi_transition_ops_total{op=\"wrpkru\"}"),
            Some(1)
        );
        let ev = t.recorder.events();
        assert_eq!((ev[0].tick, ev[0].core, ev[0].sandbox), (113, 3, 7));
    }

    #[test]
    fn fault_taxonomy_counts_by_kind() {
        let mut t = RuntimeTelemetry::new(0, 0);
        t.on_fault(&SandboxFault::GuardHit { addr: 0x1000 });
        t.on_fault(&SandboxFault::ColorFault { addr: 0x2000, key: 3 });
        t.on_fault(&SandboxFault::ColorFault { addr: 0x3000, key: 4 });
        let r = t.registry();
        assert_eq!(r.counter_value("sfi_faults_total{kind=\"guard_hit\"}"), Some(1));
        assert_eq!(r.counter_value("sfi_faults_total{kind=\"color_fault\"}"), Some(2));
        assert_eq!(r.counter_value("sfi_faults_total{kind=\"tag_fault\"}"), Some(0));
    }

    #[test]
    fn guest_mem_accesses_sample_deterministically() {
        let feed = |batches: &[(u64, u64)]| {
            let mut t = RuntimeTelemetry::new(0, 1);
            for &(l, s) in batches {
                t.on_guest_mem_accesses(l, s);
            }
            t.registry()
                .counter_value(&format!(
                    "sfi_guest_mem_accesses_total{{sample_rate=\"{MEM_ACCESS_SAMPLE_RATE}\"}}"
                ))
                .unwrap()
        };
        // Same trials → same sampled value, however they are batched.
        let a = feed(&[(700, 300), (4_000, 1_000)]);
        let b = feed(&[(0, 1_000), (700, 0), (4_000, 300)]);
        assert_eq!(a, b, "batching must not change selection");
        // Unbiased within one rate's worth of trials: 6000 trials at 1/256.
        let est = a * MEM_ACCESS_SAMPLE_RATE;
        assert!(est.abs_diff(6_000) < MEM_ACCESS_SAMPLE_RATE, "estimate {est}");
        // Cores sample out of phase but each is self-consistent.
        let t0 = RuntimeTelemetry::new(0, 0);
        let t1 = RuntimeTelemetry::new(0, 1);
        assert_eq!(t0.registry().len(), t1.registry().len());
    }

    #[test]
    fn speculation_series_cover_query_and_json_surfaces() {
        use sfi_telemetry::export::{json_is_valid, prometheus_text};
        use sfi_telemetry::tsdb::Selector;

        let mut t = RuntimeTelemetry::new(0, 0);
        let mut stats = sfi_x86::cost::RunStats {
            spec_flushes: 3,
            spec_leaks: 2,
            ..Default::default()
        };
        stats.prov_cycles[Provenance::SpecMitigation.index()] = 41.7;
        t.observe_speculation(&stats, sfi_core::MitigationLevel::Lfence);

        let r = t.registry();
        assert_eq!(r.counter_value("sfi_spec_flushes_total"), Some(3));
        assert_eq!(r.counter_value("sfi_spec_leaks_total"), Some(2));
        assert_eq!(
            r.counter_value("sfi_spec_mitigation_cycles_total{level=\"lfence\"}"),
            Some(42)
        );
        // Other levels are preregistered and untouched.
        assert_eq!(
            r.counter_value("sfi_spec_mitigation_cycles_total{level=\"none\"}"),
            Some(0)
        );

        // The tsdb selector grammar (the `/query?expr=` front end) reaches
        // the labeled series.
        let sel = Selector::parse("sfi_spec_mitigation_cycles_total{level=\"lfence\"}").unwrap();
        assert!(sel.matches("sfi_spec_mitigation_cycles_total{level=\"lfence\"}"));
        assert!(!sel.matches("sfi_spec_mitigation_cycles_total{level=\"slh\"}"));

        // Both export surfaces carry the new series, and the JSON snapshot
        // passes the offline validator.
        let snap = json_snapshot(r);
        assert!(json_is_valid(&snap), "snapshot must be valid JSON: {snap}");
        assert!(snap.contains("\"sfi_spec_flushes_total\": 3"), "{snap}");
        assert!(snap.contains("sfi_spec_mitigation_cycles_total{level=\\\"lfence\\\"}"));
        let text = prometheus_text(r);
        assert!(text.contains("sfi_spec_leaks_total 2"), "{text}");
        assert!(text.contains("sfi_spec_mitigation_cycles_total{level=\"lfence\"} 42"));
    }

    #[test]
    fn cache_scrape_is_delta_based() {
        let mut t = RuntimeTelemetry::new(0, 0);
        let mut s = CacheStats { hits: 5, misses: 2, ..CacheStats::default() };
        t.scrape_cache(s);
        t.scrape_cache(s); // same snapshot again: no change
        assert_eq!(t.registry().counter_value("sfi_code_cache_hits_total"), Some(5));
        s.hits = 9;
        t.scrape_cache(s);
        assert_eq!(t.registry().counter_value("sfi_code_cache_hits_total"), Some(9));
        assert_eq!(t.registry().counter_value("sfi_code_cache_misses_total"), Some(2));
    }
}
