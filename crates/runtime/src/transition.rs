//! Host↔guest transition cost model (§6.4.1).
//!
//! Wasmtime's transitions switch stacks, set exception handlers and adjust
//! for Wasm's ABI; the paper measures 30.34 ns per transition on its pinned
//! 2.2 GHz machine. ColorGuard adds one `wrpkru` per transition direction —
//! measured as a ~44-cycle (≈20 ns) increase to 51.52 ns. Segue adds a
//! `wrgsbase` when entering a different module's memory, which is far
//! cheaper and amortized (§3.1 "Other considerations").

/// Tunable transition-cost parameters (cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionModel {
    /// Baseline one-way transition cost (stack switch, handlers, ABI).
    /// 30.34 ns × 2.2 GHz ≈ 66.7 cycles.
    pub base_cycles: f64,
    /// `wrpkru` cost, paid once per direction under ColorGuard.
    pub wrpkru_cycles: f64,
    /// `wrgsbase` cost, paid on entry when the segment base must change
    /// (Segue), elided for same-module reentry.
    pub wrgsbase_cycles: f64,
    /// Fallback cost when FSGSBASE is unavailable and the base must be set
    /// via `arch_prctl(2)` — the legacy-CPU path Firefox must handle (§4.1).
    pub arch_prctl_cycles: f64,
    /// Extra cycles for an async (fiber) stack swap over the sync path.
    pub async_extra_cycles: f64,
    /// Core frequency (GHz) for ns conversions; the paper pins 2.2 GHz.
    pub freq_ghz: f64,
}

impl Default for TransitionModel {
    fn default() -> Self {
        TransitionModel {
            base_cycles: 66.7,
            wrpkru_cycles: 46.6,
            wrgsbase_cycles: 12.0,
            arch_prctl_cycles: 700.0,
            async_extra_cycles: 55.0,
            freq_ghz: 2.2,
        }
    }
}

/// What a transition must do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionKind {
    /// Switch the PKRU stripe (ColorGuard).
    pub colorguard: bool,
    /// Set the segment base (Segue entering a different memory).
    pub set_segment_base: bool,
    /// Use the syscall fallback for the segment base (no FSGSBASE).
    pub segment_base_via_syscall: bool,
    /// An async (fiber) transition: Wasmtime's async entries swap a whole
    /// separate stack rather than adjusting the current one (§6.4.1
    /// measures transitions "for a variety of contexts — sync vs. async").
    pub async_stack_switch: bool,
}

impl TransitionModel {
    /// Cycles for one transition (one direction).
    pub fn cycles(&self, kind: TransitionKind) -> f64 {
        let mut c = self.base_cycles;
        if kind.colorguard {
            c += self.wrpkru_cycles;
        }
        if kind.set_segment_base {
            c += if kind.segment_base_via_syscall {
                self.arch_prctl_cycles
            } else {
                self.wrgsbase_cycles
            };
        }
        if kind.async_stack_switch {
            c += self.async_extra_cycles;
        }
        c
    }

    /// Nanoseconds for one transition.
    pub fn ns(&self, kind: TransitionKind) -> f64 {
        self.cycles(kind) / self.freq_ghz
    }
}

/// Cumulative transition accounting, broken down by what each transition
/// had to do — `wrpkru` vs `wrgsbase` vs the `arch_prctl` fallback are the
/// separable costs §6.4.1 measures, so telemetry keeps them separable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransitionStats {
    /// Transitions performed (each direction counts).
    pub count: u64,
    /// Total modeled cycles spent transitioning.
    pub cycles: f64,
    /// Transitions that wrote PKRU (ColorGuard).
    pub wrpkru: u64,
    /// Transitions that set the segment base via FSGSBASE (Segue).
    pub wrgsbase: u64,
    /// Transitions that set the segment base via the `arch_prctl` syscall
    /// fallback.
    pub arch_prctl: u64,
    /// Async (fiber) stack-swap transitions.
    pub async_switches: u64,
}

impl TransitionStats {
    /// Records one transition.
    pub fn record(&mut self, model: &TransitionModel, kind: TransitionKind) {
        self.count += 1;
        self.cycles += model.cycles(kind);
        if kind.colorguard {
            self.wrpkru += 1;
        }
        if kind.set_segment_base {
            if kind.segment_base_via_syscall {
                self.arch_prctl += 1;
            } else {
                self.wrgsbase += 1;
            }
        }
        if kind.async_stack_switch {
            self.async_switches += 1;
        }
    }

    /// Mean ns per transition.
    pub fn mean_ns(&self, model: &TransitionModel) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.cycles / self.count as f64 / model.freq_ghz
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_measurements() {
        let m = TransitionModel::default();
        let plain = m.ns(TransitionKind::default());
        let cg = m.ns(TransitionKind { colorguard: true, ..Default::default() });
        assert!((plain - 30.34).abs() < 1.0, "baseline ≈30.34 ns, got {plain}");
        assert!((cg - 51.52).abs() < 2.0, "ColorGuard ≈51.52 ns, got {cg}");
        assert!((cg - plain - 20.0).abs() < 2.0, "increase ≈20 ns, got {}", cg - plain);
    }

    #[test]
    fn segment_base_costs_are_ordered() {
        let m = TransitionModel::default();
        let fast = m.cycles(TransitionKind { set_segment_base: true, ..Default::default() });
        let slow = m.cycles(TransitionKind {
            set_segment_base: true,
            segment_base_via_syscall: true,
            ..Default::default()
        });
        assert!(fast < slow, "FSGSBASE must beat arch_prctl");
        let m0 = m.cycles(TransitionKind::default());
        assert!(
            (slow - m0) > 10.0 * (fast - m0),
            "the syscall's marginal cost is an order of magnitude worse"
        );
    }

    #[test]
    fn async_transitions_cost_more_but_colorguard_delta_is_constant() {
        // The ~21 ns ColorGuard increase holds across transition contexts
        // ("sync vs. async transitions, function calls vs. jumps" — §5.1).
        let m = TransitionModel::default();
        let sync_plain = m.ns(TransitionKind::default());
        let sync_cg = m.ns(TransitionKind { colorguard: true, ..Default::default() });
        let async_plain =
            m.ns(TransitionKind { async_stack_switch: true, ..Default::default() });
        let async_cg = m.ns(TransitionKind {
            async_stack_switch: true,
            colorguard: true,
            ..Default::default()
        });
        assert!(async_plain > sync_plain);
        let d_sync = sync_cg - sync_plain;
        let d_async = async_cg - async_plain;
        assert!((d_sync - d_async).abs() < 1e-9, "the wrpkru delta is context-independent");
    }

    #[test]
    fn stats_accumulate() {
        let m = TransitionModel::default();
        let mut s = TransitionStats::default();
        for _ in 0..10 {
            s.record(&m, TransitionKind { colorguard: true, ..Default::default() });
        }
        assert_eq!(s.count, 10);
        assert!((s.mean_ns(&m) - 51.52).abs() < 2.0);
    }

    #[test]
    fn mean_ns_of_zero_transitions_is_zero_not_nan() {
        // A fresh runtime scraped before its first invocation must report a
        // clean 0.0, not NaN — NaN would poison every downstream mean and
        // fail JSON validation in the exported snapshot.
        let s = TransitionStats::default();
        let v = s.mean_ns(&TransitionModel::default());
        assert_eq!(v, 0.0);
        assert!(!v.is_nan());
    }

    #[test]
    fn stats_break_down_by_kind() {
        let m = TransitionModel::default();
        let mut s = TransitionStats::default();
        s.record(&m, TransitionKind { colorguard: true, ..Default::default() });
        s.record(&m, TransitionKind { set_segment_base: true, ..Default::default() });
        s.record(&m, TransitionKind {
            set_segment_base: true,
            segment_base_via_syscall: true,
            ..Default::default()
        });
        s.record(&m, TransitionKind { async_stack_switch: true, ..Default::default() });
        s.record(&m, TransitionKind::default());
        assert_eq!(
            (s.count, s.wrpkru, s.wrgsbase, s.arch_prctl, s.async_switches),
            (5, 1, 1, 1, 1)
        );
    }
}
