//! # sfi-runtime: a multi-instance Wasm runtime with ColorGuard
//!
//! Ties the reproduction's layers together the way Wasmtime ties its own:
//! compiled modules (`sfi-core`) are instantiated into pool slots
//! (`sfi-pool`) inside one virtual address space (`sfi-vm`), and executed
//! on the deterministic emulator (`sfi-x86`). The runtime implements the
//! transition protocol §6.4.1 measures: entering a sandbox narrows PKRU to
//! the instance's stripe and sets the Segue segment base; host calls
//! transition out (restoring full access) and back in; epoch interruption
//! bounds guest execution.
//!
//! ```
//! use std::sync::Arc;
//! use sfi_core::{compile, CompilerConfig, Strategy};
//! use sfi_runtime::{Runtime, RuntimeConfig};
//!
//! let module = sfi_wasm::wat::parse(r#"
//!   (module (memory 1)
//!     (func (export "bump") (param $p i32) (result i32)
//!       local.get $p
//!       local.get $p i32.load
//!       i32.const 1 i32.add
//!       i32.store
//!       local.get $p i32.load))
//! "#).unwrap();
//! let cm = Arc::new(compile(&module, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap());
//!
//! let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
//! let a = rt.instantiate(Arc::clone(&cm)).unwrap();
//! let b = rt.instantiate(cm).unwrap();
//! assert_eq!(rt.invoke(a, "bump", &[64]).unwrap().result, Some(1));
//! assert_eq!(rt.invoke(a, "bump", &[64]).unwrap().result, Some(2));
//! // b has its own memory: its counter starts fresh.
//! assert_eq!(rt.invoke(b, "bump", &[64]).unwrap().result, Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fault;
mod runtime;
mod telemetry;
mod transition;

pub use cache::{CacheKey, CacheStats, CodeCache, Engine, Tier, TierPolicy, TierStats};
pub use fault::{RecoveryAction, SandboxFault};
pub use runtime::{
    modeled_compile_cycles, CycleBreakdown, HostApi, InstanceId, InvokeOutcome, NoHostApi,
    Runtime, RuntimeConfig, RuntimeError, PENALTY_NAMES,
};
pub use sfi_pool::{QuarantineOutcome, QuarantinePolicy, QuarantineStats};
pub use telemetry::{RuntimeTelemetry, MEM_ACCESS_SAMPLE_RATE};
pub use transition::{TransitionKind, TransitionModel, TransitionStats};

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_core::{compile, CompilerConfig, Strategy};
    use std::sync::Arc;

    fn module(src: &str, strategy: Strategy) -> Arc<sfi_core::CompiledModule> {
        let m = sfi_wasm::wat::parse(src).unwrap();
        Arc::new(compile(&m, &CompilerConfig::for_strategy(strategy)).unwrap())
    }

    const COUNTER: &str = r#"(module (memory 1)
        (global $calls (mut i32) (i32.const 0))
        (func (export "bump") (param $p i32) (result i32)
          global.get $calls i32.const 1 i32.add global.set $calls
          local.get $p
          local.get $p i32.load
          i32.const 1 i32.add
          i32.store
          local.get $p i32.load)
        (func (export "calls") (result i32)
          global.get $calls))"#;

    #[test]
    fn instances_have_isolated_memory_and_globals() {
        let cm = module(COUNTER, Strategy::Segue);
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(Arc::clone(&cm)).unwrap();
        let b = rt.instantiate(Arc::clone(&cm)).unwrap();
        for i in 1..=3 {
            assert_eq!(rt.invoke(a, "bump", &[0]).unwrap().result, Some(i));
        }
        assert_eq!(rt.invoke(b, "bump", &[0]).unwrap().result, Some(1));
        // Globals are per-instance too.
        assert_eq!(rt.invoke(a, "calls", &[]).unwrap().result, Some(3));
        assert_eq!(rt.invoke(b, "calls", &[]).unwrap().result, Some(1));
    }

    const POKE: &str = r#"(module (memory 1)
        (func (export "poke") (param $p i32)
          local.get $p
          i32.const 1
          i32.store))"#;

    #[test]
    fn oob_access_just_past_memory_traps() {
        // The first byte past the 64 KiB memory is guard space (PROT_NONE)
        // in both striped and unstriped pools.
        for colorguard in [false, true] {
            let cm = module(POKE, Strategy::Segue);
            let mut rt = Runtime::new(RuntimeConfig::small_test(colorguard)).unwrap();
            let a = rt.instantiate(Arc::clone(&cm)).unwrap();
            rt.invoke(a, "poke", &[100]).unwrap();
            let oob = rt.invoke(a, "poke", &[65536]);
            assert!(matches!(oob, Err(RuntimeError::Trapped(_))), "{oob:?}");
        }
    }

    #[test]
    fn colorguard_stripes_protect_neighbouring_slots() {
        // The crux of §3.2: with tiny (sub-4 GiB) slot reservations, a
        // 32-bit index *can* reach the neighbouring slot's mapped memory.
        // Plain guard pools are only safe because production reservations
        // are 4 GiB + guard; ColorGuard makes dense packing safe by giving
        // neighbours different colors.
        let cm = module(POKE, Strategy::Segue);

        // Without ColorGuard: the dense layout is demonstrably unsafe —
        // the store lands in the neighbour's memory.
        let mut rt = Runtime::new(RuntimeConfig::small_test(false)).unwrap();
        let a = rt.instantiate(Arc::clone(&cm)).unwrap();
        let b = rt.instantiate(Arc::clone(&cm)).unwrap();
        let stride = rt.pool().layout().slot_bytes;
        assert!(stride < 4 << 30, "test relies on a dense (sub-4 GiB) layout");
        rt.invoke(a, "poke", &[stride]).expect("unstriped dense pool cannot stop this");
        let mut leak = [0u8; 1];
        rt.read_heap(b, 0, &mut leak).unwrap();
        assert_eq!(leak[0], 1, "neighbour was corrupted — hence 4 GiB reservations");

        // With ColorGuard: same dense layout, but the neighbour has a
        // different MPK color → the store traps and b stays clean.
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(Arc::clone(&cm)).unwrap();
        let b = rt.instantiate(Arc::clone(&cm)).unwrap();
        let stride = rt.pool().layout().slot_bytes;
        let oob = rt.invoke(a, "poke", &[stride]);
        assert!(matches!(oob, Err(RuntimeError::Trapped(_))), "{oob:?}");
        let mut clean = [0u8; 1];
        rt.read_heap(b, 0, &mut clean).unwrap();
        assert_eq!(clean[0], 0, "stripe protected the neighbour");
    }

    #[test]
    fn transition_costs_accumulate() {
        let cm = module(COUNTER, Strategy::Segue);
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(cm).unwrap();
        let out = rt.invoke(a, "bump", &[0]).unwrap();
        assert!(out.transition_cycles > 0.0);
        assert_eq!(rt.transitions.count, 2, "entry + exit");
        // ColorGuard transitions cost more than plain ones.
        let plain = TransitionModel::default().cycles(TransitionKind::default());
        assert!(rt.transitions.cycles > 2.0 * plain);
    }

    #[test]
    fn colorguard_off_means_no_pkru_cost() {
        let cm = module(COUNTER, Strategy::Segue);
        let mut on = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let mut off = Runtime::new(RuntimeConfig::small_test(false)).unwrap();
        let ai = on.instantiate(Arc::clone(&cm)).unwrap();
        let bi = off.instantiate(cm).unwrap();
        on.invoke(ai, "bump", &[0]).unwrap();
        off.invoke(bi, "bump", &[0]).unwrap();
        assert!(on.transitions.cycles > off.transitions.cycles);
    }

    #[test]
    fn epoch_interruption_preempts() {
        let src = r#"(module (memory 1)
            (func (export "spin")
              loop br 0 end))"#;
        let cm = module(src, Strategy::Segue);
        let mut cfg = RuntimeConfig::small_test(true);
        cfg.epoch_fuel = Some(10_000);
        let mut rt = Runtime::new(cfg).unwrap();
        let a = rt.instantiate(cm).unwrap();
        assert!(matches!(
            rt.invoke(a, "spin", &[]),
            Err(RuntimeError::EpochInterrupted)
        ));
    }

    #[test]
    fn host_api_dispatch() {
        let src = r#"(module (memory 1)
            (func (export "answer") (result i32)
              call 0))"#;
        // Build with an import.
        let mut m = sfi_wasm::Module::new(1);
        m.push_import(sfi_wasm::HostImport {
            name: "env.answer".into(),
            params: vec![],
            result: Some(sfi_wasm::ValType::I32),
        });
        let f = m.push_func(
            sfi_wasm::FuncBuilder::new("answer")
                .result(sfi_wasm::ValType::I32)
                .body(vec![sfi_wasm::Op::Call(0), sfi_wasm::Op::End])
                .build(),
        );
        m.export("answer", f);
        let _ = src;
        let cm = Arc::new(
            compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap(),
        );

        struct Api;
        impl HostApi for Api {
            fn call(
                &mut self,
                name: &str,
                _args: &[u64],
                heap: &mut [u8],
            ) -> Result<Option<u64>, String> {
                assert_eq!(name, "env.answer");
                heap[0] = 0xAA; // host may write guest memory
                Ok(Some(42))
            }
        }
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(cm).unwrap();
        let out = rt.invoke_with_host(a, "answer", &[], &mut Api).unwrap();
        assert_eq!(out.result, Some(42));
        let mut b = [0u8; 1];
        rt.read_heap(a, 0, &mut b).unwrap();
        assert_eq!(b[0], 0xAA);
        // Entry + exit + host out/in = 4 transitions.
        assert_eq!(rt.transitions.count, 4);
    }

    #[test]
    fn terminate_recycles_slots() {
        let cm = module(COUNTER, Strategy::Segue);
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let cap = rt.pool().capacity();
        let mut ids = Vec::new();
        for _ in 0..cap {
            ids.push(rt.instantiate(Arc::clone(&cm)).unwrap());
        }
        assert!(matches!(
            rt.instantiate(Arc::clone(&cm)),
            Err(RuntimeError::Pool(sfi_pool::PoolError::Exhausted))
        ));
        // Dirty one, terminate it, reinstantiate: memory must be zeroed.
        rt.invoke(ids[0], "bump", &[0]).unwrap();
        rt.terminate(ids[0]).unwrap();
        let fresh = rt.instantiate(Arc::clone(&cm)).unwrap();
        assert_eq!(rt.invoke(fresh, "bump", &[0]).unwrap().result, Some(1));
    }

    #[test]
    fn trap_poisons_instance_until_recycled() {
        let cm = module(POKE, Strategy::Segue);
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(Arc::clone(&cm)).unwrap();
        assert_eq!(rt.is_poisoned(a), Some(false));

        let oob = rt.invoke(a, "poke", &[65536]);
        assert!(matches!(oob, Err(RuntimeError::Trapped(_))), "{oob:?}");
        assert_eq!(rt.is_poisoned(a), Some(true));
        assert!(
            matches!(rt.last_fault(a), Some(SandboxFault::GuardHit { .. })),
            "{:?}",
            rt.last_fault(a)
        );
        assert_eq!(rt.last_fault(a).unwrap().recovery(), RecoveryAction::PoisonAndRecycle);

        // Poisoned: every further invoke refuses, even in-bounds ones.
        assert!(matches!(rt.invoke(a, "poke", &[0]), Err(RuntimeError::Poisoned)));
        assert!(matches!(rt.invoke(a, "poke", &[0]), Err(RuntimeError::Poisoned)));

        // Recycle tears it down; the id is gone and capacity recovers
        // (through quarantine, so allocate until the slot circulates back).
        rt.recycle(a).unwrap();
        assert_eq!(rt.is_poisoned(a), None);
        assert!(matches!(rt.invoke(a, "poke", &[0]), Err(RuntimeError::BadInstance)));
        let fresh = rt.instantiate(cm).unwrap();
        rt.invoke(fresh, "poke", &[0]).unwrap();
    }

    #[test]
    fn neighbour_trap_does_not_disturb_interleaved_instance() {
        // Satellite regression: interleave two instances across a trap. B's
        // observable behaviour must be identical to a fault-free run — the
        // low regions are scrubbed and rewritten on every invoke, so A's
        // trapped invocation leaves nothing behind for B to see.
        let cm = module(COUNTER, Strategy::Segue);

        // Reference: B alone, three bumps.
        let mut reference = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let rb = reference.instantiate(Arc::clone(&cm)).unwrap();
        let expect: Vec<_> =
            (0..3).map(|_| reference.invoke(rb, "bump", &[8]).unwrap().result).collect();

        // Interleaved: A bumps, B bumps, A traps, B bumps, B bumps.
        let pm = module(POKE, Strategy::Segue);
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(pm).unwrap();
        let b = rt.instantiate(Arc::clone(&cm)).unwrap();
        rt.invoke(a, "poke", &[0]).unwrap();
        let got1 = rt.invoke(b, "bump", &[8]).unwrap().result;
        assert!(rt.invoke(a, "poke", &[65536]).is_err(), "A traps");
        let got2 = rt.invoke(b, "bump", &[8]).unwrap().result;
        let got3 = rt.invoke(b, "bump", &[8]).unwrap().result;
        assert_eq!(vec![got1, got2, got3], expect);
        assert_eq!(rt.invoke(b, "calls", &[]).unwrap().result, Some(3));
    }

    #[test]
    fn host_state_restored_on_every_exit_path() {
        // PKRU and the segment base must read as host values (0) after Ok,
        // Trapped, EpochInterrupted and Host-error outcomes alike.
        let cm = module(POKE, Strategy::Segue);
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(Arc::clone(&cm)).unwrap();

        rt.invoke(a, "poke", &[0]).unwrap();
        assert_eq!((rt.host_pkru(), rt.host_gs_base()), (0, 0), "after Ok");

        assert!(rt.invoke(a, "poke", &[65536]).is_err());
        assert_eq!((rt.host_pkru(), rt.host_gs_base()), (0, 0), "after trap");

        let spin = module(
            r#"(module (memory 1) (func (export "spin") loop br 0 end))"#,
            Strategy::Segue,
        );
        let mut cfg = RuntimeConfig::small_test(true);
        cfg.epoch_fuel = Some(1_000);
        let mut rt2 = Runtime::new(cfg).unwrap();
        let s = rt2.instantiate(spin).unwrap();
        assert!(matches!(rt2.invoke(s, "spin", &[]), Err(RuntimeError::EpochInterrupted)));
        assert_eq!((rt2.host_pkru(), rt2.host_gs_base()), (0, 0), "after epoch");
        // Epoch interruption does not poison.
        assert_eq!(rt2.is_poisoned(s), Some(false));
    }

    #[test]
    fn heap_access_is_bounds_checked() {
        let cm = module(COUNTER, Strategy::Segue);
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();
        let a = rt.instantiate(cm).unwrap();
        let mem = 65536u64; // 1 Wasm page

        let mut buf = [0u8; 4];
        rt.read_heap(a, mem - 4, &mut buf).unwrap();
        assert!(matches!(
            rt.read_heap(a, mem - 3, &mut buf),
            Err(RuntimeError::HeapOutOfBounds { .. })
        ));
        assert!(matches!(
            rt.read_heap(a, u64::MAX - 1, &mut buf),
            Err(RuntimeError::HeapOutOfBounds { .. })
        ));

        rt.write_heap(a, 16, &[1, 2, 3, 4]).unwrap();
        rt.read_heap(a, 16, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert!(matches!(
            rt.write_heap(a, mem, &[9]),
            Err(RuntimeError::HeapOutOfBounds { .. })
        ));
    }

    #[test]
    fn native_modules_rejected() {
        let cm = module(COUNTER, Strategy::Native);
        let mut rt = Runtime::new(RuntimeConfig::small_test(false)).unwrap();
        assert!(matches!(
            rt.instantiate(cm),
            Err(RuntimeError::IncompatibleModule(_))
        ));
    }

    #[test]
    fn guard_region_strategy_works_in_pool_without_colorguard() {
        // Baseline guard-region modules run in unstriped pools.
        let cm = module(COUNTER, Strategy::GuardRegion);
        let mut rt = Runtime::new(RuntimeConfig::small_test(false)).unwrap();
        let a = rt.instantiate(cm).unwrap();
        assert_eq!(rt.invoke(a, "bump", &[8]).unwrap().result, Some(1));
    }

    #[test]
    fn tiered_spawns_promote_hot_modules_and_record_telemetry() {
        let m = sfi_wasm::wat::parse(COUNTER).unwrap();
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let mut eng = Engine::with_tier_policy(8, TierPolicy { promote_after: 2 });
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();

        // Two cold spawns stay at baseline; the third crosses the threshold.
        let (a, t1) = rt.spawn_tiered(&mut eng, &m, &cfg).unwrap();
        let (_, t2) = rt.spawn_tiered(&mut eng, &m, &cfg).unwrap();
        let (c, t3) = rt.spawn_tiered(&mut eng, &m, &cfg).unwrap();
        assert_eq!((t1, t2, t3), (Tier::Baseline, Tier::Baseline, Tier::Optimized));

        // Both tiers compute the same answers on the same heap offsets.
        assert_eq!(rt.invoke(a, "bump", &[8]).unwrap().result, Some(1));
        assert_eq!(rt.invoke(c, "bump", &[8]).unwrap().result, Some(1));
        assert_eq!(rt.invoke(c, "bump", &[8]).unwrap().result, Some(2));

        // The promotion landed in the counter and the flight recorder…
        let reg = rt.telemetry().registry();
        assert_eq!(reg.counter_value("sfi_tier_promotions_total"), Some(1));
        let promotes: Vec<_> = rt
            .telemetry()
            .recorder
            .events()
            .into_iter()
            .filter(|e| e.kind == sfi_telemetry::TraceKind::Promote)
            .collect();
        assert_eq!(promotes.len(), 1, "exactly one promotion trace");

        // …and invocations split across the per-tier cycle histograms.
        let base_h = reg
            .histogram_values("sfi_tier_guest_cycles{tier=\"baseline\"}")
            .expect("baseline histogram registered");
        let opt_h = reg
            .histogram_values("sfi_tier_guest_cycles{tier=\"optimized\"}")
            .expect("optimized histogram registered");
        assert_eq!(base_h.count(), 1, "one baseline invocation observed");
        assert_eq!(opt_h.count(), 2, "two optimized invocations observed");
    }

    #[test]
    fn demoted_module_spawns_fall_back_to_baseline() {
        let m = sfi_wasm::wat::parse(COUNTER).unwrap();
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let mut eng = Engine::with_tier_policy(8, TierPolicy { promote_after: 1 });
        let mut rt = Runtime::new(RuntimeConfig::small_test(true)).unwrap();

        let (_, t1) = rt.spawn_tiered(&mut eng, &m, &cfg).unwrap();
        let (_, t2) = rt.spawn_tiered(&mut eng, &m, &cfg).unwrap();
        assert_eq!((t1, t2), (Tier::Baseline, Tier::Optimized));

        assert!(eng.demote(&m, &cfg, rt.layout_fingerprint()));
        let (d, t3) = rt.spawn_tiered(&mut eng, &m, &cfg).unwrap();
        assert_eq!(t3, Tier::Baseline, "demoted module restarts cold");
        assert_eq!(rt.invoke(d, "bump", &[8]).unwrap().result, Some(1));
        rt.telemetry_mut().scrape_tiers(eng.tier_stats());
        let reg = rt.telemetry().registry();
        assert_eq!(reg.counter_value("sfi_tier_demotions_total"), Some(1));
    }
}
