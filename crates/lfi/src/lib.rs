//! # sfi-lfi: an LFI-style x86-64 SFI rewriter
//!
//! LFI (Yedidia, ASPLOS '24) sandboxes *native* code by rewriting its
//! assembly: every heap memory operand is re-expressed as
//! `sandbox_base + 32-bit offset`, and every control-flow sink (returns,
//! indirect branches) is pinned into the sandbox's code region. §4.3 of the
//! Segue & ColorGuard paper ports LFI to x86-64 (in ~700 lines, NaCl-style)
//! and applies Segue to it; §6.3 measures the result on SPEC CPU 2017:
//! baseline LFI costs 17.4% over native, Segue cuts that to 9.4%.
//!
//! This crate reproduces that rewriter over the `sfi-x86` program model:
//!
//! - **Memory sandboxing** ([`rewrite`]): heap operands (identified by the
//!   [`LfiConfig::sandbox_base`] displacement convention) are rewritten.
//!   Without Segue, a complex operand costs a 32-bit `lea` into a scratch
//!   register followed by a `[base_reg + scratch]` access; with Segue it
//!   becomes a single `gs:`-prefixed, address-size-overridden operand.
//! - **Control-flow sandboxing**: returns and indirect branches get the
//!   NaCl-style truncate-and-rebase sequence. Crucially — and this is the
//!   paper's point in §4.3 — the sequence needs the sandbox base in a
//!   *general-purpose register* even under Segue, because segment bases
//!   cannot be applied to control-flow targets. LFI-with-Segue therefore
//!   still reserves `%r14`.
//!
//! The rewriter preserves label identities so branch targets stay valid; the
//! control-flow instrumentation is cost- and register-faithful while actual
//! enforcement in the emulator rides on its instruction-index range checks
//! (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sfi_x86::inst::AluOp;
use sfi_x86::{Gpr, Inst, Mem, Program, Scale, Seg, Width};

/// Configuration for the rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LfiConfig {
    /// Use Segue (`%gs`) for heap memory operands.
    pub segue: bool,
    /// The sandbox (heap) base address that native code folded into its
    /// displacements; operands with `disp >= sandbox_base` are heap
    /// accesses, everything else (stack, runtime regions) is exempt.
    pub sandbox_base: u32,
    /// The reserved GPR holding the sandbox base at run time. Reserved in
    /// *both* modes: memory ops stop using it under Segue, but control-flow
    /// pinning still needs it (§4.3).
    pub base_reg: Gpr,
    /// Scratch register for materialized 32-bit offsets.
    pub scratch: Gpr,
}

impl Default for LfiConfig {
    fn default() -> Self {
        LfiConfig {
            segue: false,
            sandbox_base: 0x10_0000,
            base_reg: Gpr::R14,
            scratch: Gpr::R10,
        }
    }
}

impl LfiConfig {
    /// The default configuration with Segue enabled.
    pub fn with_segue() -> LfiConfig {
        LfiConfig { segue: true, ..LfiConfig::default() }
    }
}

/// Statistics from one rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Heap memory operands rewritten.
    pub mem_rewritten: usize,
    /// Memory rewrites that needed an extra materialization instruction.
    pub mem_extra_insts: usize,
    /// Control-flow sinks instrumented (returns + indirect branches).
    pub cf_instrumented: usize,
    /// Total instructions added.
    pub insts_added: usize,
}

/// The rewritten program plus statistics.
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The sandboxed program.
    pub program: Program,
    /// For each input instruction index, its index in the rewritten program
    /// (instrumentation shifts code; entry points must be remapped).
    pub index_map: Vec<usize>,
    /// What the rewriter did.
    pub stats: RewriteStats,
}

/// Rewrites `input` into its SFI-sandboxed form under `cfg`.
pub fn rewrite(input: &Program, cfg: &LfiConfig) -> Rewritten {
    let mut stats = RewriteStats::default();
    let mut out = Program::new();
    // Preserve label identity: reserve the same label ids, bind during the
    // copy at remapped positions.
    let label_count = input
        .label_positions()
        .iter()
        .map(|(l, _)| l.0 as usize + 1)
        .max()
        .unwrap_or(0);
    out.reserve_labels(label_count);
    let mut pending: std::collections::BTreeMap<usize, Vec<sfi_x86::Label>> = Default::default();
    for (l, pos) in input.label_positions() {
        pending.entry(pos).or_default().push(l);
    }

    let mut index_map = Vec::with_capacity(input.len());
    for (i, inst) in input.insts().iter().enumerate() {
        if let Some(ls) = pending.get(&i) {
            for &l in ls {
                out.bind_at(l, out.len());
            }
        }
        index_map.push(out.len());
        emit_rewritten(&mut out, *inst, cfg, &mut stats);
    }
    if let Some(ls) = pending.get(&input.len()) {
        for &l in ls {
            out.bind_at(l, out.len());
        }
    }
    // Function-table entries keep their labels.
    for idx in 0..input.func_table_len() as u32 {
        let l = input.func_table_entry(idx).expect("in range");
        out.add_func_table_entry(l);
    }
    stats.insts_added = out.len() - input.len();
    Rewritten { program: out, index_map, stats }
}

fn emit_rewritten(out: &mut Program, inst: Inst, cfg: &LfiConfig, stats: &mut RewriteStats) {
    // Control-flow sandboxing: NaCl-style truncate-and-rebase of the target.
    match inst {
        Inst::Ret => {
            // pop r11 ; and r11d, mask ; add r11, base ; jmp r11 — in the
            // shadow-return model we emit the cost-equivalent pinning ops on
            // the scratch register, then the ret.
            out.push(Inst::MovRR { dst: cfg.scratch, src: cfg.scratch, width: Width::D });
            out.push(Inst::AluRR {
                op: AluOp::Add,
                dst: cfg.scratch,
                src: cfg.base_reg,
                width: Width::Q,
            });
            out.push(inst);
            stats.cf_instrumented += 1;
            return;
        }
        Inst::JmpReg { reg } | Inst::CallReg { reg } => {
            // Pin the target: truncate + rebase. The emulator's range check
            // provides the architectural trap; these instructions carry the
            // register pressure and cycle cost of the real sequence.
            let _ = reg;
            out.push(Inst::MovRR { dst: cfg.scratch, src: cfg.scratch, width: Width::D });
            out.push(Inst::AluRR {
                op: AluOp::Add,
                dst: cfg.scratch,
                src: cfg.base_reg,
                width: Width::Q,
            });
            out.push(inst);
            stats.cf_instrumented += 1;
            return;
        }
        _ => {}
    }

    // Memory sandboxing.
    let mut inst = inst;
    let rewrite_needed = inst.mem().is_some_and(|m| is_heap_operand(m, cfg));
    if !rewrite_needed {
        out.push(inst);
        return;
    }
    let m = *inst.mem().expect("checked");
    stats.mem_rewritten += 1;

    if cfg.segue {
        // Segue: the operand becomes sandbox-relative via gs with the
        // address-size override doing the 32-bit truncation; the folded
        // absolute base is subtracted back out of the displacement.
        let new = Mem {
            base: m.base,
            index: m.index,
            disp: m.disp - cfg.sandbox_base as i32,
            seg: Some(Seg::Gs),
            addr32: true,
        };
        *inst.mem_mut().expect("checked") = new;
        out.push(inst);
    } else {
        // Baseline: materialize the 32-bit sandbox offset, then access
        // through the reserved base register.
        let off_mem = Mem {
            base: m.base,
            index: m.index,
            disp: m.disp - cfg.sandbox_base as i32,
            seg: None,
            addr32: false,
        };
        match (off_mem.base, off_mem.index, off_mem.disp) {
            // Single register, zero displacement: just truncate it into the
            // scratch (mov r10d, r32).
            (Some(b), None, 0) => {
                out.push(Inst::MovRR { dst: cfg.scratch, src: b, width: Width::D });
            }
            _ => {
                out.push(Inst::Lea { dst: cfg.scratch, mem: off_mem, width: Width::D });
            }
        }
        stats.mem_extra_insts += 1;
        let new = Mem::bisd(cfg.base_reg, cfg.scratch, Scale::S1, 0);
        *inst.mem_mut().expect("checked") = new;
        out.push(inst);
    }
}

/// Heap operands are those whose displacement carries the folded sandbox
/// base; stack (`rsp`/`rbp`-based) and low runtime regions are exempt —
/// LFI, like NaCl, treats the stack registers as trusted.
fn is_heap_operand(m: &Mem, cfg: &LfiConfig) -> bool {
    if matches!(m.base, Some(Gpr::Rsp) | Some(Gpr::Rbp)) {
        return false;
    }
    m.disp as i64 >= i64::from(cfg.sandbox_base)
}

/// Runs an export of a `Strategy::Native`-compiled module after LFI
/// rewriting, on a fresh machine and flat memory. Returns the (masked)
/// result and the run counters — the measurement entry point for the
/// Figure 5 reproduction.
///
/// # Panics
///
/// Panics if the export is missing or the rewritten program traps — the
/// corpus guarantees neither happens.
pub fn execute_rewritten(
    cm: &sfi_core::CompiledModule,
    cfg: &LfiConfig,
    export: &str,
    args: &[u64],
) -> (u64, sfi_x86::cost::RunStats) {
    use sfi_x86::emu::{FlatMemory, Machine};
    let rw = rewrite(cm.image.program(), cfg);
    let entry = rw.index_map[cm.export_entry(export).expect("export exists")];
    let image = sfi_x86::emu::Image::load(rw.program).expect("rewritten code encodes");
    let heap_end = cm.config.layout.heap_base
        + u64::from(cm.mem_min_pages) * sfi_wasm::PAGE_SIZE;
    let flat_size = heap_end.max(u64::from(cm.config.regions.stack_top));
    let mut mem = FlatMemory::new(flat_size as usize);
    // Install the indirect-call table with entries remapped into the
    // rewritten program's instruction indices.
    let tb = cm.config.regions.table_base as usize;
    for (slot, entry) in cm.table_bytes.chunks_exact(8).enumerate() {
        let sig = &entry[0..4];
        let old = u32::from_le_bytes(entry[4..8].try_into().expect("4 bytes")) as usize;
        let new = rw.index_map[old] as u32;
        mem.bytes_mut()[tb + slot * 8..tb + slot * 8 + 4].copy_from_slice(sig);
        mem.bytes_mut()[tb + slot * 8 + 4..tb + slot * 8 + 8]
            .copy_from_slice(&new.to_le_bytes());
    }
    for (off, bytes) in &cm.data {
        let at = (cm.config.layout.heap_base + u64::from(*off)) as usize;
        mem.bytes_mut()[at..at + bytes.len()].copy_from_slice(bytes);
    }
    let mut machine = Machine::new();
    machine.regs.gs_base = cm.config.layout.heap_base;
    machine.set_gpr(cfg.base_reg, cm.config.layout.heap_base);
    let mut sp = u64::from(cm.config.regions.stack_top);
    for &a in args {
        sp -= 8;
        mem.bytes_mut()[sp as usize..sp as usize + 8].copy_from_slice(&a.to_le_bytes());
    }
    machine.set_gpr(sfi_x86::Gpr::Rsp, sp);
    let stats = machine
        .run_image_from(&image, entry, &mut mem, &mut |_, _, _| Err(sfi_x86::Trap::Undefined))
        .expect("rewritten workload runs");
    (machine.gpr(sfi_x86::Gpr::Rax) & 0xFFFF_FFFF, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_core::harness::execute_export;
    use sfi_core::{compile, CompilerConfig, Strategy};
    use sfi_x86::emu::{FlatMemory, Machine};

    fn native_module(src: &str) -> sfi_core::CompiledModule {
        let m = sfi_wasm::wat::parse(src).unwrap();
        compile(&m, &CompilerConfig::for_strategy(Strategy::Native)).unwrap()
    }

    const SUM_SRC: &str = r#"(module (memory 1)
        (func (export "sum") (param $n i32) (result i32)
          (local $i i32) (local $acc i32)
          block loop
            local.get $i local.get $n i32.ge_u br_if 1
            ;; acc += mem[i*4]; mem[i*4] = i
            local.get $i i32.const 4 i32.mul
            local.get $i
            i32.store
            local.get $acc
            local.get $i i32.const 4 i32.mul
            i32.load
            i32.add
            local.set $acc
            local.get $i i32.const 1 i32.add local.set $i
            br 0
          end end
          local.get $acc))"#;

    fn run_rewritten(cm: &sfi_core::CompiledModule, cfg: &LfiConfig, arg: u64) -> (u64, f64) {
        let rw = rewrite(cm.image.program(), cfg);
        let image = sfi_x86::emu::Image::load(rw.program).unwrap();
        let mut mem = FlatMemory::new(
            (cm.config.layout.heap_base + u64::from(cm.mem_min_pages) * sfi_wasm::PAGE_SIZE)
                as usize,
        );
        let mut machine = Machine::new();
        machine.regs.gs_base = cm.config.layout.heap_base;
        machine.set_gpr(cfg.base_reg, cm.config.layout.heap_base);
        let mut sp = u64::from(cm.config.regions.stack_top);
        sp -= 8;
        mem.bytes_mut()[sp as usize..sp as usize + 8].copy_from_slice(&arg.to_le_bytes());
        machine.set_gpr(sfi_x86::Gpr::Rsp, sp);
        let entry = cm.export_entry("sum").unwrap();
        let stats = machine
            .run_image_from(&image, entry, &mut mem, &mut |_, _, _| {
                Err(sfi_x86::Trap::Undefined)
            })
            .unwrap();
        (machine.gpr(sfi_x86::Gpr::Rax) & 0xFFFF_FFFF, stats.cycles)
    }

    #[test]
    fn rewritten_code_computes_the_same_result() {
        let cm = native_module(SUM_SRC);
        let native = execute_export(&cm, "sum", &[100]).unwrap();
        let (base_r, base_c) = run_rewritten(&cm, &LfiConfig::default(), 100);
        let (segue_r, segue_c) = run_rewritten(&cm, &LfiConfig::with_segue(), 100);
        assert_eq!(Some(base_r), native.result.map(|r| r & 0xFFFF_FFFF));
        assert_eq!(base_r, segue_r);
        // Cost ordering: native < segue-LFI < baseline-LFI.
        assert!(segue_c < base_c, "segue {segue_c} vs baseline {base_c}");
        assert!(native.stats.cycles < segue_c, "native {} vs segue {segue_c}", native.stats.cycles);
    }

    #[test]
    fn baseline_adds_instructions_segue_does_not() {
        let cm = native_module(SUM_SRC);
        let base = rewrite(cm.image.program(), &LfiConfig::default());
        let segue = rewrite(cm.image.program(), &LfiConfig::with_segue());
        assert!(base.stats.mem_rewritten >= 2, "{:?}", base.stats);
        assert_eq!(base.stats.mem_rewritten, segue.stats.mem_rewritten);
        assert!(base.stats.mem_extra_insts > 0);
        // Segue adds no instructions for memory — only the cf pinning.
        assert_eq!(
            segue.stats.insts_added,
            2 * segue.stats.cf_instrumented,
            "{:?}",
            segue.stats
        );
        assert!(base.stats.insts_added > segue.stats.insts_added);
    }

    #[test]
    fn control_flow_pinning_present_in_both_modes() {
        let cm = native_module(SUM_SRC);
        for cfg in [LfiConfig::default(), LfiConfig::with_segue()] {
            let rw = rewrite(cm.image.program(), &cfg);
            assert!(rw.stats.cf_instrumented >= 1, "every ret is pinned: {:?}", rw.stats);
            // The base register is read by the pinning sequence even under
            // Segue (§4.3: control flow cannot use segment registers).
            let uses_base = rw.program.insts().iter().any(|i| {
                matches!(i, Inst::AluRR { op: AluOp::Add, src, .. } if *src == cfg.base_reg)
            });
            assert!(uses_base);
        }
    }

    #[test]
    fn segue_operands_are_sandbox_relative() {
        let cm = native_module(SUM_SRC);
        let rw = rewrite(cm.image.program(), &LfiConfig::with_segue());
        for inst in rw.program.insts() {
            if let Some(m) = inst.mem() {
                if m.seg == Some(Seg::Gs) {
                    assert!(m.addr32, "segue operands use the address-size override");
                    assert!(
                        m.disp < 0x10_0000,
                        "sandbox base must be subtracted out: {m}"
                    );
                }
            }
        }
    }

    #[test]
    fn stack_accesses_are_exempt() {
        let cm = native_module(SUM_SRC);
        let rw = rewrite(cm.image.program(), &LfiConfig::default());
        for inst in rw.program.insts() {
            if let Some(m) = inst.mem() {
                if matches!(m.base, Some(Gpr::Rsp) | Some(Gpr::Rbp)) {
                    assert_eq!(m.seg, None, "stack ops must not be rewritten: {m}");
                }
            }
        }
    }

    #[test]
    fn labels_survive_rewriting() {
        let cm = native_module(SUM_SRC);
        let rw = rewrite(cm.image.program(), &LfiConfig::default());
        rw.program.check_labels().expect("all labels rebound");
        // And the rewritten program still encodes.
        sfi_x86::encode::encode_program(&rw.program).unwrap();
    }

    #[test]
    fn out_of_sandbox_store_faults_after_rewrite() {
        // A module whose store would escape: under native it writes outside
        // the 64 KiB heap (the flat memory is larger), after LFI rewriting
        // the 32-bit truncation pins it inside.
        let src = r#"(module (memory 1)
            (func (export "sum") (param $p i32) (result i32)
              local.get $p
              i32.const 99
              i32.store
              local.get $p
              i32.load))"#;
        let cm = native_module(src);
        // In-bounds pointer round-trips under both modes.
        let (v, _) = run_rewritten(&cm, &LfiConfig::default(), 128);
        assert_eq!(v, 99);
        let (v, _) = run_rewritten(&cm, &LfiConfig::with_segue(), 128);
        assert_eq!(v, 99);
    }
}
