//! Profiling surfaces: folded stacks for flamegraphs, and per-bucket
//! latency exemplars linking histograms back to request traces.
//!
//! A [`FoldedStacks`] accumulator turns the cycle-attribution matrix into
//! the `flamegraph.pl` collapse format — one `frame;frame;frame value`
//! line per stack, sorted — served live from `/profile` and embedded in
//! `BENCH_profile.json`. [`BucketExemplars`] keeps, for each histogram
//! bucket, the first `(trace_id, value)` observed in it, so a tail bucket
//! in `/metrics` can be chased to a concrete request's span tree.

use std::collections::BTreeMap;

use crate::histogram::{CycleHistogram, HISTOGRAM_BUCKETS};

/// Flamegraph-collapse accumulator.
///
/// Stacks are `;`-joined frame names; values accumulate on repeated adds
/// and merges. Rendering iterates the underlying `BTreeMap`, so output is
/// sorted and deterministic — same-seed runs produce byte-identical
/// folded files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    stacks: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// An empty accumulator.
    pub fn new() -> FoldedStacks {
        FoldedStacks::default()
    }

    /// Adds `value` to the stack given as a frame list (root first).
    /// Zero-valued adds still create the stack, so a strategy that paid
    /// nothing in a bucket is visibly zero rather than silently absent.
    pub fn add(&mut self, frames: &[&str], value: u64) {
        self.add_folded(&frames.join(";"), value);
    }

    /// Adds `value` to an already-folded `root;child;leaf` stack string.
    pub fn add_folded(&mut self, stack: &str, value: u64) {
        *self.stacks.entry(stack.to_string()).or_insert(0) += value;
    }

    /// Folds another accumulator into this one (per-shard merge).
    pub fn merge_from(&mut self, other: &FoldedStacks) {
        for (stack, v) in &other.stacks {
            *self.stacks.entry(stack.clone()).or_insert(0) += *v;
        }
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// True when no stack has been added.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Renders the collapse format: one `stack value\n` line per stack,
    /// sorted by stack string. Feed to `flamegraph.pl` or paste into a
    /// flamegraph viewer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (stack, v) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Per-bucket exemplars for a [`CycleHistogram`]: the first
/// `(trace_id, value)` observation that landed in each bucket.
///
/// Keep-first makes the store deterministic under same-seed replay and
/// bounds it at one slot per bucket; [`BucketExemplars::merge_from`]
/// prefers the lower trace id on collision so shard-merge order cannot
/// change the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketExemplars {
    slots: [Option<(u64, u64)>; HISTOGRAM_BUCKETS],
}

impl Default for BucketExemplars {
    fn default() -> Self {
        BucketExemplars::new()
    }
}

impl BucketExemplars {
    /// An empty store.
    pub fn new() -> BucketExemplars {
        BucketExemplars { slots: [None; HISTOGRAM_BUCKETS] }
    }

    /// Records `value` for `trace_id`; kept only if its bucket is empty.
    /// Uses the same bucketing rule as [`CycleHistogram::bucket_of`], so
    /// an exemplar always sits in the bucket its observation incremented.
    pub fn observe(&mut self, trace_id: u64, value: u64) {
        let slot = &mut self.slots[CycleHistogram::bucket_of(value)];
        if slot.is_none() {
            *slot = Some((trace_id, value));
        }
    }

    /// The exemplar for bucket `i`, if any.
    pub fn get(&self, i: usize) -> Option<(u64, u64)> {
        self.slots.get(i).copied().flatten()
    }

    /// Merges another store into this one. An occupied bucket keeps the
    /// exemplar with the lower trace id (ties: lower value) — a symmetric
    /// rule, so the merged result is independent of shard order.
    pub fn merge_from(&mut self, other: &BucketExemplars) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a = match (*a, *b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
        }
    }

    /// Renders occupied buckets as deterministic JSON:
    /// `{"bucket_le": {"trace_id": …, "value": …}, …}` keyed by the
    /// bucket's inclusive upper bound, sorted ascending (the last,
    /// open-ended bucket renders as `"inf"`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some((trace_id, value)) = slot {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                if i >= HISTOGRAM_BUCKETS - 1 {
                    out.push_str("\"inf\"");
                } else {
                    out.push_str(&format!("\"{}\"", CycleHistogram::bucket_upper_bound(i)));
                }
                out.push_str(&format!(
                    ": {{\"trace_id\": {trace_id}, \"value\": {value}}}"
                ));
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json_is_valid;

    #[test]
    fn folded_stacks_accumulate_and_render_sorted() {
        let mut f = FoldedStacks::new();
        f.add(&["segue", "guest_compute"], 100);
        f.add(&["bounds_check", "bounds_guard"], 40);
        f.add(&["segue", "guest_compute"], 11);
        f.add(&["segue", "truncation"], 0);
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.render(),
            "bounds_check;bounds_guard 40\nsegue;guest_compute 111\nsegue;truncation 0\n"
        );
    }

    #[test]
    fn folded_stacks_merge_is_order_independent() {
        let mut a = FoldedStacks::new();
        a.add(&["x", "y"], 5);
        a.add(&["x", "z"], 7);
        let mut b = FoldedStacks::new();
        b.add(&["x", "y"], 3);
        b.add(&["w"], 1);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.render(), "w 1\nx;y 8\nx;z 7\n");
    }

    #[test]
    fn exemplars_keep_first_and_merge_symmetrically() {
        let mut e = BucketExemplars::new();
        e.observe(100, 600); // bucket [512, 1024)
        e.observe(200, 700); // same bucket: dropped
        e.observe(300, 3); // bucket [2, 4)
        let b600 = CycleHistogram::bucket_of(600);
        assert_eq!(e.get(b600), Some((100, 600)));
        assert_eq!(e.get(CycleHistogram::bucket_of(3)), Some((300, 3)));

        let mut other = BucketExemplars::new();
        other.observe(50, 900); // same bucket as 600, lower trace id
        let mut ab = e.clone();
        ab.merge_from(&other);
        let mut ba = other.clone();
        ba.merge_from(&e);
        assert_eq!(ab, ba, "merge must be shard-order independent");
        assert_eq!(ab.get(b600), Some((50, 900)), "lower trace id wins");
    }

    #[test]
    fn exemplar_json_is_valid_and_keyed_by_bound() {
        let mut e = BucketExemplars::new();
        assert_eq!(e.render_json(), "{}");
        e.observe(7, 600);
        e.observe(9, u64::MAX); // open-ended last bucket
        let j = e.render_json();
        assert!(json_is_valid(&j), "{j}");
        assert!(j.contains("\"1023\": {\"trace_id\": 7, \"value\": 600}"), "{j}");
        assert!(j.contains("\"inf\": {\"trace_id\": 9"), "{j}");
    }
}
