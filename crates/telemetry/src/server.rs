//! A minimal std-only HTTP/1.1 serving loop for live telemetry.
//!
//! Production metrics are scraped, not dumped: a Prometheus server polls
//! `GET /metrics`, a trace viewer tails `GET /trace?since=<cursor>`. This
//! module provides exactly the plumbing that takes — a request-line parser,
//! a response writer, a blocking accept loop, and a matching one-shot
//! client ([`http_get`]) for self-checks and loopback tests — with no
//! third-party dependencies (the workspace is offline by policy).
//!
//! Scope is deliberately narrow: `GET` only, one request per connection
//! (`Connection: close`), no TLS, no chunked encoding. A scrape endpoint
//! needs nothing more, and everything beyond it would be untestable weight.
//! The *content* served stays deterministic (it comes from the registry and
//! recorder exporters); only socket timing is wall-clock, which is why the
//! DESIGN.md §8 contract confines wall time to `/healthz` uptime.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// How long a single request may take to arrive or drain before the
/// connection is abandoned (defends the serve loop against a stalled
/// peer; generous compared to any loopback scrape).
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request line (the only part of a scrape request that
/// carries information; headers are read and discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method verb, uppercased as received (`GET`, `HEAD`, …).
    pub method: String,
    /// The path component, without the query string (`/trace`).
    pub path: String,
    /// Query parameters in request order, undecoded (`since=42`).
    pub query: Vec<(String, String)>,
}

impl HttpRequest {
    /// Parses a request line (`GET /trace?since=5 HTTP/1.1`). Returns
    /// `None` for anything that is not `<method> <target> HTTP/1.x`.
    pub fn parse(line: &str) -> Option<HttpRequest> {
        let mut parts = line.trim_end().split(' ');
        let method = parts.next()?.to_owned();
        let target = parts.next()?;
        let version = parts.next()?;
        if method.is_empty() || !target.starts_with('/') || !version.starts_with("HTTP/1.") {
            return None;
        }
        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let query = query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_owned(), v.to_owned()),
                None => (kv.to_owned(), String::new()),
            })
            .collect();
        Some(HttpRequest { method, path: path.to_owned(), query })
    }

    /// The first query parameter named `key`, parsed as `u64` (the shape
    /// every cursor parameter uses). Conflates "absent" and "malformed"
    /// into `None`; endpoints that must answer `400` on malformed cursors
    /// use [`HttpRequest::cursor`] instead.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok())
    }

    /// The first query parameter named `key`, raw (undecoded).
    pub fn query_str(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Strict cursor parsing for `?since=`-style parameters: distinguishes
    /// an absent parameter (callers default to 0) from a present-but-
    /// malformed one (callers answer `400` instead of silently restarting
    /// the stream from the beginning, which is what `unwrap_or(0)` over
    /// [`HttpRequest::query_u64`] used to do).
    pub fn cursor(&self, key: &str) -> Cursor {
        match self.query.iter().find(|(k, _)| k == key) {
            None => Cursor::Absent,
            Some((_, v)) => match v.parse() {
                Ok(n) => Cursor::At(n),
                Err(_) => Cursor::Malformed,
            },
        }
    }
}

/// A strictly parsed cursor parameter; see [`HttpRequest::cursor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cursor {
    /// The parameter was not present: stream from the start.
    Absent,
    /// A well-formed cursor value.
    At(u64),
    /// Present but not a `u64`: the request is malformed (`400`).
    Malformed,
}

/// Decodes `%XX` percent-escapes (and `+` as space) in a query-string
/// value. Returns `None` on truncated or non-hex escapes or invalid UTF-8 —
/// malformed input is the caller's `400`, not a silent pass-through.
pub fn percent_decode(s: &str) -> Option<String> {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'%' => {
                let hi = (*b.get(i + 1)? as char).to_digit(16)?;
                let lo = (*b.get(i + 2)? as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, 405, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A `200 OK` with an explicit content type.
    pub fn ok(content_type: &'static str, body: String) -> HttpResponse {
        HttpResponse { status: 200, content_type, body }
    }

    /// A `200 OK` with the Prometheus text-exposition content type.
    pub fn prometheus(body: String) -> HttpResponse {
        HttpResponse::ok("text/plain; version=0.0.4", body)
    }

    /// A `200 OK` carrying JSON.
    pub fn json(body: String) -> HttpResponse {
        HttpResponse::ok("application/json", body)
    }

    /// A `404 Not Found`.
    pub fn not_found() -> HttpResponse {
        HttpResponse { status: 404, content_type: "text/plain", body: "not found\n".to_owned() }
    }

    /// A `405 Method Not Allowed` (everything here is `GET`).
    pub fn method_not_allowed() -> HttpResponse {
        HttpResponse {
            status: 405,
            content_type: "text/plain",
            body: "method not allowed\n".to_owned(),
        }
    }

    /// A `400 Bad Request` with a reason.
    pub fn bad_request(reason: &str) -> HttpResponse {
        HttpResponse { status: 400, content_type: "text/plain", body: format!("{reason}\n") }
    }

    /// A `503 Service Unavailable` with a reason — what a federated
    /// aggregator answers while a member is down and its scrape budget is
    /// not yet exhausted (retryable, unlike a 404).
    pub fn service_unavailable(reason: &str) -> HttpResponse {
        HttpResponse { status: 503, content_type: "text/plain", body: format!("{reason}\n") }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Error",
        }
    }

    /// Serializes the response (status line, minimal headers,
    /// `Connection: close`, body) onto `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reads one request head (request line + headers, discarded) from a
/// connection. Returns `None` for a malformed or empty request.
fn read_request(stream: &TcpStream) -> Option<HttpRequest> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let req = HttpRequest::parse(&line)?;
    // Drain headers up to the blank line; a GET has no body to consume.
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => break,
            Ok(_) if h == "\r\n" || h == "\n" => break,
            Ok(_) => {}
            Err(_) => return None,
        }
    }
    Some(req)
}

/// Runs the blocking accept loop: one request per connection, dispatched
/// through `handler`, which returns the response plus whether the loop
/// should stop *after* answering (a `/quit` endpoint can thereby shut the
/// server down cleanly from the outside — the test/CI teardown path).
/// Malformed requests get a `400` and do not reach the handler. Per-
/// connection I/O errors (a scraper that vanished mid-write) are swallowed:
/// a broken peer must never take the serving loop down.
pub fn serve<H: FnMut(&HttpRequest) -> (HttpResponse, bool)>(
    listener: &TcpListener,
    mut handler: H,
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let mut stream = stream;
        let (response, stop) = match read_request(&stream) {
            Some(req) => handler(&req),
            None => (HttpResponse::bad_request("malformed request"), false),
        };
        let _ = response.write_to(&mut stream);
        if stop {
            return Ok(());
        }
    }
    Ok(())
}

/// A one-shot HTTP/1.1 GET against `addr` (e.g. `127.0.0.1:9100`):
/// the scrape client used by `faas_serve --check`, the loopback tests and
/// the CI smoke step (curl-equivalent, but offline-policy clean). Returns
/// `(status, body)`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    http_get_with_timeout(addr, path, IO_TIMEOUT)
}

/// [`http_get`] with an explicit IO deadline instead of the default:
/// `timeout` bounds the connect, each write, and each read. A server that
/// accepts and then hangs (the `HangOnAccept` chaos mode) surfaces as a
/// timeout error within the deadline instead of wedging the caller —
/// which is what lets CI scrape steps run un-supervised.
pub fn http_get_with_timeout(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_owned()))
}

/// [`http_get_with_timeout`], but returning the response's `Content-Type`
/// header alongside status and body: `(status, content_type, body)`. The
/// per-endpoint content-type contract (`text/plain; version=0.0.4` for
/// `/metrics`, `application/json` for the JSON surfaces) is part of the
/// serving API, and loopback tests assert it through this client.
pub fn http_get_detailed(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String, String)> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let content_type = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-type").then(|| value.trim().to_owned())
        })
        .unwrap_or_default();
    Ok((status, content_type, body.to_owned()))
}

/// A bounded, deterministic retry schedule for scrape clients and
/// federated aggregators: exponential backoff, doubling from
/// `backoff_base_ms` per failed attempt up to `backoff_cap_ms`, at most
/// `max_attempts` tries. The schedule is a pure function of the policy and
/// the attempt index — no jitter — so a recovery trace driven off a
/// virtual clock is byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries including the first (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Ceiling on any single backoff, in milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    /// 4 attempts, 25 ms → 50 ms → 100 ms between them: generous for a
    /// loopback scrape yet under a second end-to-end.
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, backoff_base_ms: 25, backoff_cap_ms: 400 }
    }
}

impl RetryPolicy {
    /// A one-shot policy (no retries, no backoff) — the pre-hardening
    /// behavior, for callers that want a single probe.
    pub fn one_shot() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, backoff_base_ms: 0, backoff_cap_ms: 0 }
    }

    /// The backoff after failed attempt `attempt` (0-based), in
    /// milliseconds: `base << attempt`, capped.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shifted = self.backoff_base_ms.checked_shl(attempt).unwrap_or(u64::MAX);
        shifted.min(self.backoff_cap_ms)
    }
}

/// Runs `op` under `policy`, sleeping `sleep(backoff_ms)` between failed
/// attempts. Returns the first success together with the number of
/// attempts spent (1-based), or the last error once the budget is
/// exhausted. `sleep` is injected so deterministic callers (the fleet
/// aggregator) can charge the backoff to a virtual clock instead of the
/// wall; `op` receives the 0-based attempt index so seeded fault plans can
/// draw per attempt.
pub fn retry_with<T, E>(
    policy: &RetryPolicy,
    mut sleep: impl FnMut(u64),
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<(T, u32), E> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match op(attempt) {
            Ok(v) => return Ok((v, attempt + 1)),
            Err(e) => {
                last_err = Some(e);
                if attempt + 1 < attempts {
                    sleep(policy.backoff_ms(attempt));
                }
            }
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// [`http_get`] under a [`RetryPolicy`]: retries refused connections and
/// timeouts with real (wall-clock) backoff sleeps. Returns
/// `(status, body, attempts)` — the attempt count feeds the scrape-meta
/// registry so a flaky member is visible in `/metrics`, not just in logs.
/// Non-200 statuses are *returned*, not retried: the server answered, and
/// whether e.g. a 503 warrants another round is the caller's policy.
pub fn http_get_retry(
    addr: &str,
    path: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String, u32)> {
    http_get_retry_with_timeout(addr, path, policy, IO_TIMEOUT)
}

/// [`http_get_retry`] with an explicit per-attempt IO deadline: the whole
/// scrape is bounded by `max_attempts × timeout` plus the backoff sum, so
/// a hung server cannot wedge the client past its budget.
pub fn http_get_retry_with_timeout(
    addr: &str,
    path: &str,
    policy: &RetryPolicy,
    timeout: Duration,
) -> std::io::Result<(u16, String, u32)> {
    retry_with(
        policy,
        |ms| std::thread::sleep(Duration::from_millis(ms)),
        |_| http_get_with_timeout(addr, path, timeout),
    )
    .map(|((status, body), attempts)| (status, body, attempts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_lines_parse() {
        let r = HttpRequest::parse("GET /trace?since=42&limit=7 HTTP/1.1\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/trace");
        assert_eq!(r.query_u64("since"), Some(42));
        assert_eq!(r.query_u64("limit"), Some(7));
        assert_eq!(r.query_u64("missing"), None);

        let plain = HttpRequest::parse("GET /metrics HTTP/1.0").unwrap();
        assert_eq!(plain.path, "/metrics");
        assert!(plain.query.is_empty());

        // Valueless and empty params are tolerated, non-numeric cursors are None.
        let odd = HttpRequest::parse("GET /trace?flag&since=x& HTTP/1.1").unwrap();
        assert_eq!(odd.query.len(), 2);
        assert_eq!(odd.query_u64("since"), None);

        for bad in ["", "GET", "GET /x", "PUT noslash HTTP/1.1", "GET /x SPDY/3"] {
            assert!(HttpRequest::parse(bad).is_none(), "{bad:?} accepted");
        }
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut buf = Vec::new();
        HttpResponse::json("{\"a\": 1}".to_owned()).write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\": 1}"));

        let mut buf = Vec::new();
        HttpResponse::not_found().write_to(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().starts_with("HTTP/1.1 404 Not Found\r\n"));
    }

    #[test]
    fn retry_schedule_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        assert_eq!(
            (0..4).map(|a| p.backoff_ms(a)).collect::<Vec<_>>(),
            [25, 50, 100, 200],
            "doubling from the base"
        );
        let capped = RetryPolicy { max_attempts: 8, backoff_base_ms: 100, backoff_cap_ms: 400 };
        assert_eq!(
            (0..6).map(|a| capped.backoff_ms(a)).collect::<Vec<_>>(),
            [100, 200, 400, 400, 400, 400],
            "capped, even past shift overflow territory"
        );
        assert_eq!(capped.backoff_ms(70), 400, "shift overflow saturates to the cap");
        assert_eq!(RetryPolicy::one_shot().max_attempts, 1);
    }

    #[test]
    fn retry_with_spends_the_budget_then_surfaces_the_last_error() {
        let p = RetryPolicy { max_attempts: 4, backoff_base_ms: 10, backoff_cap_ms: 1000 };
        // Succeeds on the third attempt: two backoffs charged, attempts = 3.
        let mut slept = Vec::new();
        let (value, attempts) = retry_with(
            &p,
            |ms| slept.push(ms),
            |attempt| if attempt < 2 { Err("down") } else { Ok(attempt * 10) },
        )
        .unwrap();
        assert_eq!((value, attempts), (20, 3));
        assert_eq!(slept, [10, 20], "backoff charged between failures only");
        // Never succeeds: budget exhausted, last error out, no backoff
        // after the final attempt.
        let mut slept = Vec::new();
        let err = retry_with(&p, |ms| slept.push(ms), |a| Err::<(), _>(format!("fail {a}")))
            .unwrap_err();
        assert_eq!(err, "fail 3");
        assert_eq!(slept, [10, 20, 40], "three backoffs for four attempts");
        // First-try success sleeps never.
        let mut slept = Vec::new();
        let (v, attempts) = retry_with(&p, |ms| slept.push(ms), |_| Ok::<_, ()>(7)).unwrap();
        assert_eq!((v, attempts), (7, 1));
        assert!(slept.is_empty());
    }

    #[test]
    fn bounded_get_times_out_on_a_hung_server() {
        // A server that accepts and then never answers — the HangOnAccept
        // chaos mode for real. The bounded client must surface a timeout
        // within its deadline instead of wedging.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hang = std::thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
        });
        let t0 = std::time::Instant::now();
        let err = http_get_with_timeout(&addr, "/metrics", Duration::from_millis(50))
            .expect_err("hung server must not yield a response");
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected error kind: {err:?}"
        );
        assert!(t0.elapsed() < Duration::from_millis(400), "deadline not honored");
        hang.join().unwrap();
    }

    #[test]
    fn retry_edges_and_virtual_clock_charge_match_closed_form() {
        use crate::clock::VirtualClock;
        use std::cell::RefCell;

        // max_attempts = 0 clamps to one attempt: the op still runs once
        // and no backoff is ever charged.
        let zero_budget = RetryPolicy { max_attempts: 0, backoff_base_ms: 25, backoff_cap_ms: 400 };
        let mut calls = 0u32;
        let err = retry_with(&zero_budget, |_| panic!("no backoff on a single attempt"), |a| {
            calls += 1;
            Err::<(), _>(a)
        })
        .unwrap_err();
        assert_eq!((calls, err), (1, 0), "zero-attempt budget still probes once");

        // Zero-backoff policy: sleep is invoked between attempts but must
        // charge nothing.
        let free = RetryPolicy { max_attempts: 3, backoff_base_ms: 0, backoff_cap_ms: 0 };
        let clock = RefCell::new(VirtualClock::new());
        let _ = retry_with(
            &free,
            |ms| clock.borrow_mut().advance(ms * 1_000_000),
            |_| Err::<(), _>("down"),
        );
        assert_eq!(clock.borrow().now(), 0, "zero-backoff retries are free on the clock");

        // Exhausting an n-attempt budget charges exactly the closed-form
        // sum of the n-1 inter-attempt backoffs (base << a, capped).
        let p = RetryPolicy { max_attempts: 6, backoff_base_ms: 25, backoff_cap_ms: 200 };
        let clock = RefCell::new(VirtualClock::new());
        let _ = retry_with(
            &p,
            |ms| clock.borrow_mut().advance(ms * 1_000_000),
            |_| Err::<(), _>("down"),
        );
        let expected_ms: u64 = (0..p.max_attempts - 1)
            .map(|a| (p.backoff_base_ms << a).min(p.backoff_cap_ms))
            .sum();
        assert_eq!(expected_ms, 25 + 50 + 100 + 200 + 200);
        assert_eq!(
            clock.borrow().now(),
            expected_ms * 1_000_000,
            "virtual-clock charge must equal the closed-form backoff sum"
        );
    }

    #[test]
    fn http_get_retry_recovers_from_a_late_server() {
        // Reserve a port, drop the listener, and rebind it from a helper
        // thread after a delay: the first attempt(s) get connection refused,
        // a later one lands. The retry budget is generous enough that the
        // race always resolves inside it.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let rebind = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                let listener = TcpListener::bind(&addr).expect("rebind reserved port");
                serve(&listener, |_| {
                    (HttpResponse::ok("text/plain", "late\n".to_owned()), true)
                })
                .unwrap();
            })
        };
        let policy = RetryPolicy { max_attempts: 10, backoff_base_ms: 30, backoff_cap_ms: 200 };
        let (status, body, attempts) = http_get_retry(&addr, "/", &policy).unwrap();
        assert_eq!((status, body.as_str()), (200, "late\n"));
        assert!(attempts >= 1, "attempt count is 1-based");
        rebind.join().unwrap();
        // With nobody listening and a tiny budget, the error surfaces after
        // the attempts are spent.
        let gone = TcpListener::bind("127.0.0.1:0").unwrap();
        let gone_addr = gone.local_addr().unwrap().to_string();
        drop(gone);
        let tiny = RetryPolicy { max_attempts: 2, backoff_base_ms: 1, backoff_cap_ms: 1 };
        assert!(http_get_retry(&gone_addr, "/", &tiny).is_err());
    }

    #[test]
    fn strict_cursors_distinguish_absent_from_malformed() {
        let r = HttpRequest::parse("GET /trace?since=42 HTTP/1.1").unwrap();
        assert_eq!(r.cursor("since"), Cursor::At(42));
        assert_eq!(r.cursor("other"), Cursor::Absent);
        for bad in ["since=x", "since=-1", "since=", "since=1.5", "since=99999999999999999999"] {
            let r = HttpRequest::parse(&format!("GET /trace?{bad} HTTP/1.1")).unwrap();
            assert_eq!(r.cursor("since"), Cursor::Malformed, "{bad}");
        }
        // query_u64 keeps its lenient legacy shape for non-cursor callers.
        assert_eq!(r.query_u64("since"), Some(42));
    }

    #[test]
    fn percent_decoding_round_trips_query_exprs() {
        assert_eq!(
            percent_decode("rate(sfi_x_total%7Bclass%3D%22ls%22%7D%5B4r%5D)").as_deref(),
            Some("rate(sfi_x_total{class=\"ls\"}[4r])")
        );
        assert_eq!(percent_decode("a+b%20c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        for bad in ["%", "%2", "%zz", "%ff%fe"] {
            assert!(percent_decode(bad).is_none(), "{bad:?} decoded");
        }
    }

    #[test]
    fn detailed_get_surfaces_content_type() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            serve(&listener, |req| match req.path.as_str() {
                "/metrics" => (HttpResponse::prometheus("m 1\n".to_owned()), false),
                "/alerts" => (HttpResponse::json("{}".to_owned()), false),
                _ => (HttpResponse::not_found(), true),
            })
            .unwrap();
        });
        let (status, ct, body) =
            http_get_detailed(&addr, "/metrics", Duration::from_secs(5)).unwrap();
        assert_eq!((status, ct.as_str(), body.as_str()), (200, "text/plain; version=0.0.4", "m 1\n"));
        let (status, ct, _) = http_get_detailed(&addr, "/alerts", Duration::from_secs(5)).unwrap();
        assert_eq!((status, ct.as_str()), (200, "application/json"));
        let (status, ct, _) = http_get_detailed(&addr, "/quit", Duration::from_secs(5)).unwrap();
        assert_eq!((status, ct.as_str()), (404, "text/plain"));
        server.join().unwrap();
    }

    #[test]
    fn loopback_roundtrip_serves_and_stops() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            serve(&listener, |req| match req.path.as_str() {
                "/ping" => (HttpResponse::prometheus("pong 1\n".to_owned()), false),
                "/quit" => (HttpResponse::ok("text/plain", "bye\n".to_owned()), true),
                _ => (HttpResponse::not_found(), false),
            })
            .unwrap();
        });
        let (status, body) = http_get(&addr, "/ping").unwrap();
        assert_eq!((status, body.as_str()), (200, "pong 1\n"));
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);
        let (status, body) = http_get(&addr, "/quit").unwrap();
        assert_eq!((status, body.as_str()), (200, "bye\n"));
        server.join().unwrap();
    }
}
