//! Exporters: Prometheus text, JSON snapshot, chrome://tracing.
//!
//! All three are deterministic — series sorted by key, fixed float
//! precision — so same-seed runs export byte-identical artifacts and the
//! snapshots embedded in `BENCH_*.json` diff cleanly.

use crate::histogram::{CycleHistogram, HISTOGRAM_BUCKETS};
use crate::recorder::{TraceEvent, TraceKind};
use crate::registry::Registry;
use crate::span::unpack_span;

/// Renders the registry in the Prometheus text exposition format:
/// `# TYPE` headers, series sorted by key, label values escaped. Histograms
/// export Prometheus-conformant cumulative `_bucket{le="…"}` series (one
/// per occupied power-of-two bucket up to the recorded maximum, plus
/// `le="+Inf"`), the nearest-rank p50/p95/p99 as `{quantile="…"}` series,
/// and `_sum`/`_count` — the pair that makes `rate(sum)/rate(count)`
/// window means computable by the tsdb ([`crate::tsdb::Tsdb::ingest`]).
///
/// The exact byte layout is pinned by a golden test: a change here is a
/// deliberate, test-updating event, never an accident — the serve/fleet
/// `--check` byte-identity gates depend on that.
pub fn prometheus_text(r: &Registry) -> String {
    let mut out = String::new();
    for (key, v) in r.sorted_counters() {
        let name = base_name(&key);
        out.push_str(&format!("# TYPE {name} counter\n{key} {v}\n"));
    }
    for (key, v) in r.sorted_gauges() {
        let name = base_name(&key);
        out.push_str(&format!("# TYPE {name} gauge\n{key} {v}\n"));
    }
    for (key, h) in r.sorted_histograms() {
        let name = base_name(&key);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let bucket_key = format!("{name}_bucket{}", label_suffix(&key));
        let mut cum = 0u64;
        if h.count() > 0 {
            // Buckets up to the one holding the recorded max; everything
            // above is redundant with +Inf and stays un-emitted.
            let top = CycleHistogram::bucket_of(h.max()).min(HISTOGRAM_BUCKETS - 2);
            for (i, &c) in h.buckets().iter().enumerate().take(top + 1) {
                cum += c;
                let le = CycleHistogram::bucket_upper_bound(i).to_string();
                out.push_str(&format!("{} {cum}\n", with_label(&bucket_key, "le", &le)));
            }
        }
        out.push_str(&format!("{} {}\n", with_label(&bucket_key, "le", "+Inf"), h.count()));
        for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
            out.push_str(&format!("{} {v}\n", with_label(&key, "quantile", q)));
        }
        out.push_str(&format!("{name}_sum{} {}\n", label_suffix(&key), h.sum()));
        out.push_str(&format!("{name}_count{} {}\n", label_suffix(&key), h.count()));
    }
    out
}

/// The metric name part of a series key (`name{labels}` → `name`).
fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// The `{labels}` part of a series key, or `""`.
fn label_suffix(key: &str) -> &str {
    match key.find('{') {
        Some(i) => &key[i..],
        None => "",
    }
}

/// Adds one more label to a series key (used for `quantile`).
fn with_label(key: &str, label: &str, value: &str) -> String {
    match key.find('{') {
        Some(i) => format!("{}{{{label}=\"{value}\",{}", &key[..i], &key[i + 1..]),
        None => format!("{key}{{{label}=\"{value}\"}}"),
    }
}

/// Escapes a string for embedding as a JSON string value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry as one deterministic JSON object:
/// `{"counters": {…}, "gauges": {…}, "histograms": {key: {count, sum, mean,
/// p50, p95, p99, max}}}` with keys sorted. Suitable for embedding in
/// `BENCH_*.json`.
pub fn json_snapshot(r: &Registry) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\": {");
    let counters = r.sorted_counters();
    for (i, (k, v)) in counters.iter().enumerate() {
        out.push_str(&format!("\"{}\": {v}", json_escape(k)));
        if i + 1 < counters.len() {
            out.push_str(", ");
        }
    }
    out.push_str("}, \"gauges\": {");
    let gauges = r.sorted_gauges();
    for (i, (k, v)) in gauges.iter().enumerate() {
        out.push_str(&format!("\"{}\": {v}", json_escape(k)));
        if i + 1 < gauges.len() {
            out.push_str(", ");
        }
    }
    out.push_str("}, \"histograms\": {");
    let hists = r.sorted_histograms();
    for (i, (k, h)) in hists.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            json_escape(k),
            h.count(),
            h.sum(),
            h.mean(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.max()
        ));
        if i + 1 < hists.len() {
            out.push_str(", ");
        }
    }
    out.push_str("}}");
    out
}

/// Renders one trace event as its chrome://tracing line (no separator):
/// the unit of incremental streaming. A `/trace?since=` response carries
/// these lines; [`chrome_trace_wrap`] joins any concatenation of them back
/// into the exact batch document, which is what makes a drained stream
/// byte-identical to the post-mortem export.
///
/// [`TraceKind::Flow`] events render as chrome flow events instead of
/// instants: `ph` is `"s"` (span start), `"f"` (span finish) or `"t"`
/// (step / instantaneous), `id` is the request's trace id (from the
/// event's `sandbox` field) so the viewer draws arrows connecting every
/// station of one request, and the span level and detail (unpacked per
/// [`crate::span`]) land in the name and args. The mapping is stateless —
/// one event, one line — so streamed and batch exports stay byte-identical.
pub fn chrome_trace_line(e: &TraceEvent, ns_per_tick: f64) -> String {
    let ts_us = e.tick as f64 * ns_per_tick / 1000.0;
    if e.kind == TraceKind::Flow {
        if let Some(edge) = unpack_span(e.arg) {
            let ph = match (edge.start, edge.end) {
                (true, false) => "s",
                (false, true) => "f",
                _ => "t",
            };
            return format!(
                "  {{\"name\": \"span:{}\", \"cat\": \"request\", \"ph\": \"{ph}\", \
                 \"id\": {}, \"ts\": {ts_us:.3}, \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"detail\": {}}}}}",
                edge.level.name(),
                e.sandbox,
                e.core,
                edge.detail,
            );
        }
        // A Flow event whose arg doesn't decode falls through to the
        // instant-event shape: visible on the timeline rather than dropped.
    }
    format!(
        "  {{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts_us:.3}, \
         \"pid\": 0, \"tid\": {}, \"args\": {{\"sandbox\": {}, \"arg\": {}}}}}",
        e.kind.name(),
        e.core,
        if e.sandbox == u64::MAX { -1i64 } else { e.sandbox as i64 },
        e.arg,
    )
}

/// [`chrome_trace_line`] over a batch, one line per event, in order.
pub fn chrome_trace_lines(events: &[TraceEvent], ns_per_tick: f64) -> Vec<String> {
    events.iter().map(|e| chrome_trace_line(e, ns_per_tick)).collect()
}

/// Wraps [`chrome_trace_line`]s into the complete chrome://tracing
/// document. `chrome_trace(events) == chrome_trace_wrap(&chrome_trace_lines(events))`
/// by construction, so a client that concatenates streamed lines and wraps
/// them reproduces the batch export byte-for-byte.
pub fn chrome_trace_wrap(lines: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&lines.join(",\n"));
    if !lines.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// A gap marker for a trace stream that lost events to ring wraparound:
/// one global-scope instant event named `trace_gap`, placed at the tick of
/// the first event *after* the gap, carrying the drop count in its args.
/// It is a [`chrome_trace_line`]-shaped line, so a client that interleaves
/// it with streamed event lines and calls [`chrome_trace_wrap`] still gets
/// a valid chrome://tracing document — the gap is visible on the timeline
/// instead of silently absent.
pub fn chrome_trace_gap_line(dropped: u64, next_tick: u64, ns_per_tick: f64) -> String {
    let ts_us = next_tick as f64 * ns_per_tick / 1000.0;
    format!(
        "  {{\"name\": \"trace_gap\", \"ph\": \"i\", \"s\": \"g\", \"ts\": {ts_us:.3}, \
         \"pid\": 0, \"tid\": 0, \"args\": {{\"dropped\": {dropped}}}}}"
    )
}

/// Renders trace events as chrome://tracing "trace event format" JSON
/// (load the file at `chrome://tracing` or <https://ui.perfetto.dev> to see
/// the run as a timeline). Each event becomes an instant event (`"ph":
/// "i"`); `tid` is the core, `ts` is the virtual tick converted to µs via
/// `ns_per_tick`.
pub fn chrome_trace(events: &[TraceEvent], ns_per_tick: f64) -> String {
    chrome_trace_wrap(&chrome_trace_lines(events, ns_per_tick))
}

/// A minimal JSON syntax validator (no third-party crates in this
/// workspace). Checks string/escape/number/literal syntax and
/// bracket/brace balance — enough for the CI gate's "the exported snapshot
/// parses" check, not a full RFC 8259 parser.
pub fn json_is_valid(s: &str) -> bool {
    let mut stack: Vec<u8> = Vec::new();
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut saw_value = false;
    while i < b.len() {
        match b[i] {
            b'{' => stack.push(b'}'),
            b'[' => stack.push(b']'),
            b'}' | b']' => {
                if stack.pop() != Some(b[i]) {
                    return false;
                }
                saw_value = true;
            }
            b'"' => {
                // Consume the string, honouring escapes.
                i += 1;
                loop {
                    if i >= b.len() {
                        return false;
                    }
                    match b[i] {
                        b'\\' => {
                            i += 1;
                            match b.get(i) {
                                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                                Some(b'u') => {
                                    if i + 4 >= b.len()
                                        || !b[i + 1..i + 5]
                                            .iter()
                                            .all(|c| c.is_ascii_hexdigit())
                                    {
                                        return false;
                                    }
                                    i += 4;
                                }
                                _ => return false,
                            }
                        }
                        b'"' => break,
                        c if c < 0x20 => return false,
                        _ => {}
                    }
                    i += 1;
                }
                saw_value = true;
            }
            b' ' | b'\t' | b'\n' | b'\r' | b':' | b',' => {}
            b't' => {
                if !s[i..].starts_with("true") {
                    return false;
                }
                i += 3;
                saw_value = true;
            }
            b'f' => {
                if !s[i..].starts_with("false") {
                    return false;
                }
                i += 4;
                saw_value = true;
            }
            b'n' => {
                if !s[i..].starts_with("null") {
                    return false;
                }
                i += 3;
                saw_value = true;
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < b.len()
                    && matches!(b[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    i += 1;
                }
                if s[start..i].parse::<f64>().is_err() {
                    return false;
                }
                saw_value = true;
                continue;
            }
            _ => return false,
        }
        i += 1;
    }
    stack.is_empty() && saw_value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceKind;

    fn sample() -> Registry {
        let mut r = Registry::new();
        let c = r.counter_with("sfi_transitions_total", &[("kind", "wrpkru")]);
        let g = r.gauge("sfi_pool_slots_in_use");
        let h = r.histogram("sfi_transition_cycles");
        r.add(c, 42);
        r.set(g, 7);
        for v in [60u64, 67, 113, 113, 813] {
            r.observe(h, v);
        }
        r
    }

    #[test]
    fn prometheus_text_format() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE sfi_transitions_total counter\n"));
        assert!(text.contains("sfi_transitions_total{kind=\"wrpkru\"} 42\n"));
        assert!(text.contains("# TYPE sfi_pool_slots_in_use gauge\nsfi_pool_slots_in_use 7\n"));
        assert!(text.contains("# TYPE sfi_transition_cycles histogram\n"));
        assert!(text.contains("sfi_transition_cycles{quantile=\"0.5\"}"));
        assert!(text.contains("sfi_transition_cycles_count 5\n"));
        assert!(text.contains("sfi_transition_cycles_sum 1166\n"));
        // Cumulative bucket series: monotone, capped by +Inf = count.
        assert!(text.contains("sfi_transition_cycles_bucket{le=\"+Inf\"} 5\n"), "{text}");
        assert!(text.contains("sfi_transition_cycles_bucket{le=\"127\"} 4\n"), "{text}");
    }

    #[test]
    fn quantile_label_composes_with_existing_labels() {
        let mut r = Registry::new();
        let h = r.try_histogram("sfi_h", &[("core", "0")]).unwrap();
        r.observe(h, 5);
        let text = prometheus_text(&r);
        assert!(text.contains("sfi_h{quantile=\"0.5\",core=\"0\"} 5\n"), "{text}");
        assert!(text.contains("sfi_h_count{core=\"0\"} 1\n"), "{text}");
        assert!(text.contains("sfi_h_bucket{le=\"7\",core=\"0\"} 1\n"), "{text}");
        assert!(text.contains("sfi_h_bucket{le=\"+Inf\",core=\"0\"} 1\n"), "{text}");
    }

    #[test]
    fn prometheus_text_golden_layout_is_deliberate() {
        // The full exposition layout, byte for byte. The serve/fleet
        // `--check` gates byte-compare `/metrics` bodies; if this test
        // needs updating, those artifacts change too — update both in the
        // same commit or not at all.
        let mut r = Registry::new();
        let c = r.counter("sfi_g_total");
        let h = r.histogram("sfi_h");
        r.add(c, 3);
        for v in [0u64, 1, 5] {
            r.observe(h, v);
        }
        assert_eq!(
            prometheus_text(&r),
            "# TYPE sfi_g_total counter\n\
             sfi_g_total 3\n\
             # TYPE sfi_h histogram\n\
             sfi_h_bucket{le=\"0\"} 1\n\
             sfi_h_bucket{le=\"1\"} 2\n\
             sfi_h_bucket{le=\"3\"} 2\n\
             sfi_h_bucket{le=\"7\"} 3\n\
             sfi_h_bucket{le=\"+Inf\"} 3\n\
             sfi_h{quantile=\"0.5\"} 1\n\
             sfi_h{quantile=\"0.95\"} 5\n\
             sfi_h{quantile=\"0.99\"} 5\n\
             sfi_h_sum 6\n\
             sfi_h_count 3\n"
        );
        // An empty histogram still exports a well-formed +Inf bucket.
        let mut e = Registry::new();
        e.histogram("sfi_empty");
        let text = prometheus_text(&e);
        assert!(text.contains("sfi_empty_bucket{le=\"+Inf\"} 0\n"), "{text}");
        assert!(!text.contains("le=\"0\""), "no per-bucket lines for an empty histogram");
    }

    #[test]
    fn json_snapshot_is_valid_and_deterministic() {
        let a = json_snapshot(&sample());
        let b = json_snapshot(&sample());
        assert_eq!(a, b);
        assert!(json_is_valid(&a), "{a}");
        assert!(a.contains("\"sfi_transitions_total{kind=\\\"wrpkru\\\"}\": 42"));
        assert!(a.contains("\"count\": 5"));
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let events = vec![
            TraceEvent { tick: 100, core: 0, sandbox: 1, kind: TraceKind::Enter, arg: 2 },
            TraceEvent { tick: 250, core: 1, sandbox: u64::MAX, kind: TraceKind::Steal, arg: 0 },
        ];
        let t = chrome_trace(&events, 1.0);
        assert!(json_is_valid(&t), "{t}");
        assert!(t.contains("\"name\": \"enter\""));
        assert!(t.contains("\"tid\": 1"));
        assert!(t.contains("\"sandbox\": -1"), "absent sandbox renders as -1");
    }

    #[test]
    fn streamed_lines_rewrap_to_the_batch_document() {
        let events: Vec<TraceEvent> = (0..7)
            .map(|i| TraceEvent {
                tick: i * 10,
                core: (i % 2) as u32,
                sandbox: i,
                kind: TraceKind::Enter,
                arg: i,
            })
            .collect();
        let batch = chrome_trace(&events, 1.0);
        // Stream in uneven chunks, concatenate, wrap: must be byte-identical.
        let mut lines = Vec::new();
        for chunk in [&events[..2], &events[2..3], &events[3..]] {
            lines.extend(chrome_trace_lines(chunk, 1.0));
        }
        assert_eq!(chrome_trace_wrap(&lines), batch);
        assert!(json_is_valid(&chrome_trace_wrap(&lines)));
        // The empty stream wraps to the empty document.
        assert_eq!(chrome_trace_wrap(&[]), chrome_trace(&[], 1.0));
        assert!(json_is_valid(&chrome_trace_wrap(&[])));
    }

    #[test]
    fn flow_events_render_as_chrome_flow_phases() {
        use crate::span::{pack_span, SpanLevel};
        let mk = |arg: u64, tick: u64| TraceEvent {
            tick,
            core: 3,
            sandbox: 0xBEEF,
            kind: TraceKind::Flow,
            arg,
        };
        let start = chrome_trace_line(&mk(pack_span(SpanLevel::QueueWait, true, false, 7), 10), 1.0);
        assert!(start.contains("\"name\": \"span:queue_wait\""), "{start}");
        assert!(start.contains("\"ph\": \"s\""), "{start}");
        assert!(start.contains("\"id\": 48879"), "trace id from the sandbox field: {start}");
        assert!(start.contains("\"detail\": 7"), "{start}");
        let end = chrome_trace_line(&mk(pack_span(SpanLevel::QueueWait, false, true, 7), 20), 1.0);
        assert!(end.contains("\"ph\": \"f\""), "{end}");
        let instant =
            chrome_trace_line(&mk(pack_span(SpanLevel::Admission, true, true, 1), 20), 1.0);
        assert!(instant.contains("\"ph\": \"t\""), "{instant}");
        // All of them wrap into a valid document alongside plain instants.
        let lines = vec![start, end, instant];
        assert!(json_is_valid(&chrome_trace_wrap(&lines)));
        // A Flow event with an undecodable arg degrades to an instant line.
        let broken = chrome_trace_line(&mk(0xFF << 56, 30), 1.0);
        assert!(broken.contains("\"ph\": \"i\""), "{broken}");
        assert!(broken.contains("\"name\": \"flow\""), "{broken}");
    }

    #[test]
    fn gap_marker_wraps_into_a_valid_document() {
        let events = vec![
            TraceEvent { tick: 500, core: 0, sandbox: 9, kind: TraceKind::Exit, arg: 1 },
        ];
        let mut lines = vec![chrome_trace_gap_line(42, 500, 1.0)];
        lines.extend(chrome_trace_lines(&events, 1.0));
        let doc = chrome_trace_wrap(&lines);
        assert!(json_is_valid(&doc), "{doc}");
        assert!(doc.contains("\"name\": \"trace_gap\""));
        assert!(doc.contains("\"dropped\": 42"));
        assert!(doc.contains("\"s\": \"g\""), "gap marker is global-scope");
        // A gap-only stream is also valid (everything readable was lost).
        assert!(json_is_valid(&chrome_trace_wrap(&[chrome_trace_gap_line(7, 0, 1.0)])));
    }

    #[test]
    fn json_validator_rejects_malformed() {
        for bad in [
            "{", "}", "{]", "[}", "{\"a\": }x", "{\"a\"", "\"unterminated", "{\"a\": 1e}",
            "nope", "{\"bad\\q\": 1}", "",
        ] {
            assert!(!json_is_valid(bad), "{bad:?} accepted");
        }
        for good in ["{}", "[]", "{\"a\": [1, 2.5, -3e4, true, false, null, \"s\\n\"]}"] {
            assert!(json_is_valid(good), "{good:?} rejected");
        }
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let r = Registry::new();
        assert_eq!(prometheus_text(&r), "");
        let j = json_snapshot(&r);
        assert!(json_is_valid(&j));
        assert_eq!(j, "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}");
    }
}
