//! The per-round rule engine over the [`Tsdb`]: recording rules and
//! multi-window burn-rate alerts with `pending → firing → resolved` state
//! machines.
//!
//! Evaluated exactly once per engine round, after that round's registry
//! snapshot is ingested. Two rule kinds:
//!
//! - **Recording rules** compute a derived scalar (the sum of a windowed
//!   query, or a permille ratio of two such sums) and publish it twice:
//!   back into the tsdb as a gauge series (so alert rules can window over
//!   it) and into an engine-owned `derived` [`Registry`] that the serving
//!   layer merges into `/metrics` only — never into the modeled snapshot,
//!   preserving the zero-observer-effect contract.
//! - **Alert rules** compare a *fast* and a *slow* windowed query against
//!   one threshold (the SRE multi-window burn-rate pattern: the slow window
//!   proves the problem is real, the fast window proves it is still
//!   happening — both must breach). Rules evaluate per matched series, so
//!   one fleet-level rule covers every member series a
//!   `merge_labeled_from` aggregation produces, including members spawned
//!   mid-run.
//!
//! State machine per `(rule, series)`: `Inactive → Pending` on first
//! breach, `Pending → Firing` once the breach has been sustained for the
//! rule's `for_rounds`, `Firing → Inactive` (logged as `resolved`) when the
//! breach clears. A pending alert that clears before firing deduplicates
//! silently — flapping series produce no log traffic until they actually
//! fire. Transitions append to a bounded, sequence-numbered alert log with
//! the same honest-drop cursor semantics the flight recorder has; the
//! serving layer mirrors each transition into the recorder as a
//! [`crate::TraceKind::Alert`] event.
//!
//! Everything here is a pure function of the ingested rounds: same rounds,
//! same transitions, byte-identical `/alerts` bodies — through checkpoint
//! replay and crash recovery.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::registry::{GaugeId, Registry};
use crate::tsdb::Tsdb;

/// How an alert rule compares its query value to the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Breach when `value >= threshold` (burn rates, shed rates).
    Ge,
    /// Breach when `value <= threshold` (availability floors).
    Le,
}

impl CompareOp {
    fn breached(self, value: f64, threshold: f64) -> bool {
        match self {
            CompareOp::Ge => value >= threshold,
            CompareOp::Le => value <= threshold,
        }
    }
}

/// What a recording rule computes.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleSource {
    /// The sum over all series matched by one query expression.
    Query(String),
    /// `1000 × sum(num) / sum(den)` — a permille ratio of two query sums
    /// (per-class goodput, per-strategy cycle share). A zero denominator
    /// records 0.
    RatioPermille {
        /// Numerator query expression.
        num: String,
        /// Denominator query expression.
        den: String,
    },
}

/// A recording rule: computes [`RuleSource`] each round and records it
/// under `record{labels}` as a gauge, both in the tsdb and in the derived
/// registry.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingRule {
    /// Output metric name (static, like every registry registration).
    pub record: &'static str,
    /// Output label set.
    pub labels: Vec<(&'static str, String)>,
    /// What to compute.
    pub source: RuleSource,
}

/// A multi-window alert rule. For a single-window rule pass the same
/// expression as both `fast` and `slow`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (appears in the log, `/alerts`, and trace events).
    pub name: &'static str,
    /// Fast-window query: proves the breach is still happening.
    pub fast: String,
    /// Slow-window query: proves the breach is sustained, not a blip.
    pub slow: String,
    /// Comparison direction.
    pub op: CompareOp,
    /// Threshold both windows must breach.
    pub threshold: f64,
    /// Consecutive breached evaluations required before firing
    /// (0 fires on the first breach).
    pub for_rounds: u64,
}

/// Alert life-cycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// No active breach.
    Inactive,
    /// Breached, but not yet for `for_rounds` evaluations.
    Pending,
    /// Breached for at least `for_rounds` evaluations.
    Firing,
}

impl AlertState {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// A logged state-machine transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransition {
    /// `Inactive → Pending`.
    Pending,
    /// `Pending → Firing` (or straight from `Inactive` when `for_rounds`
    /// is 0).
    Firing,
    /// `Firing → Inactive`.
    Resolved,
}

impl AlertTransition {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AlertTransition::Pending => "pending",
            AlertTransition::Firing => "firing",
            AlertTransition::Resolved => "resolved",
        }
    }

    /// Dense code for packing into a trace event's `arg`.
    pub fn code(self) -> u64 {
        match self {
            AlertTransition::Pending => 0,
            AlertTransition::Firing => 1,
            AlertTransition::Resolved => 2,
        }
    }
}

/// One entry in the bounded alert log.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Monotone sequence number (the `/alerts?since=` cursor).
    pub seq: u64,
    /// Engine round the transition happened at.
    pub round: u64,
    /// Index of the rule in the engine's rule list.
    pub rule_idx: usize,
    /// The rule's name.
    pub rule: &'static str,
    /// The breaching series key (the rule's fast expression result key).
    pub series: String,
    /// Which transition.
    pub transition: AlertTransition,
    /// The fast-window value at transition time (0 for resolutions).
    pub value: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct SeriesState {
    state: AlertState,
    /// Round the current breach streak started.
    since: u64,
    /// Last observed fast-window value.
    value: f64,
}

/// The rule engine. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    recording: Vec<RecordingRule>,
    recording_ids: Vec<GaugeId>,
    rules: Vec<AlertRule>,
    /// Per-(rule, series) live state; entries return to the map only while
    /// non-inactive, so the map is bounded by actually-breaching series.
    states: BTreeMap<(usize, String), SeriesState>,
    log: VecDeque<AlertEvent>,
    log_capacity: usize,
    next_seq: u64,
    dropped: u64,
    /// Recording-rule outputs as gauges, merged into `/metrics` only.
    derived: Registry,
    last_round: u64,
}

impl AlertEngine {
    /// An engine whose alert log retains at most `log_capacity` entries
    /// (older entries are dropped with honest cursor accounting).
    pub fn new(log_capacity: usize) -> AlertEngine {
        AlertEngine {
            recording: Vec::new(),
            recording_ids: Vec::new(),
            rules: Vec::new(),
            states: BTreeMap::new(),
            log: VecDeque::new(),
            log_capacity,
            next_seq: 0,
            dropped: 0,
            derived: Registry::new(),
            last_round: 0,
        }
    }

    /// Adds a recording rule, registering its output gauge in the derived
    /// registry. Panics on a (name, labels) collision, like every registry
    /// registration — a duplicated derived series is a startup error.
    pub fn add_recording(&mut self, rule: RecordingRule) {
        let labels: Vec<(&'static str, &str)> =
            rule.labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let id = self
            .derived
            .try_gauge(rule.record, &labels)
            .expect("recording-rule registration");
        self.recording.push(rule);
        self.recording_ids.push(id);
    }

    /// Adds an alert rule.
    pub fn add_alert(&mut self, rule: AlertRule) {
        self.rules.push(rule);
    }

    /// The derived registry holding recording-rule output gauges. Merge it
    /// into `/metrics` responses only — it is derived observability, not
    /// modeled state, and must stay out of `/snapshot`.
    pub fn derived(&self) -> &Registry {
        &self.derived
    }

    /// Number of configured alert rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The cursor one past the newest log entry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Log entries dropped by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Currently firing `(rule name, series key)` pairs, sorted — the
    /// closed-loop control signal.
    pub fn firing(&self) -> Vec<(&'static str, String)> {
        self.states
            .iter()
            .filter(|(_, s)| s.state == AlertState::Firing)
            .map(|((idx, key), _)| (self.rules[*idx].name, key.clone()))
            .collect()
    }

    /// Whether any series of the named rule is firing.
    pub fn is_firing(&self, rule: &str) -> bool {
        self.states
            .iter()
            .any(|((idx, _), s)| s.state == AlertState::Firing && self.rules[*idx].name == rule)
    }

    /// The firing series keys of one named rule, sorted.
    pub fn firing_series(&self, rule: &str) -> Vec<String> {
        self.states
            .iter()
            .filter(|((idx, _), s)| s.state == AlertState::Firing && self.rules[*idx].name == rule)
            .map(|((_, key), _)| key.clone())
            .collect()
    }

    fn push_log(&mut self, ev: AlertEvent) {
        self.log.push_back(ev);
        while self.log.len() > self.log_capacity {
            self.log.pop_front();
            self.dropped += 1;
        }
    }

    /// Evaluates every recording rule, then every alert rule, at `round`.
    /// Returns the transitions that happened this round (also appended to
    /// the log) so the caller can mirror them into its flight recorder.
    pub fn evaluate(&mut self, round: u64, tsdb: &mut Tsdb) -> Vec<AlertEvent> {
        self.last_round = round;
        // Recording rules first: alert rules may window over their outputs.
        for (i, rule) in self.recording.iter().enumerate() {
            let value = match &rule.source {
                RuleSource::Query(expr) => query_sum(tsdb, expr),
                RuleSource::RatioPermille { num, den } => {
                    let d = query_sum(tsdb, den);
                    if d == 0.0 {
                        0.0
                    } else {
                        1000.0 * query_sum(tsdb, num) / d
                    }
                }
            };
            let rounded = round_i64(value);
            self.derived.set(self.recording_ids[i], rounded);
            let labels: Vec<(&'static str, &str)> =
                rule.labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            tsdb.store_gauge(&series_key(rule.record, &labels), round, rounded);
        }
        // Alert rules: join fast and slow results on series key.
        let mut transitions = Vec::new();
        for (idx, rule) in self.rules.iter().enumerate() {
            let fast: BTreeMap<String, f64> =
                tsdb.query(&rule.fast).unwrap_or_default().into_iter().collect();
            let slow: BTreeMap<String, f64> =
                tsdb.query(&rule.slow).unwrap_or_default().into_iter().collect();
            // Breaching series: both windows breach; value reported from
            // the fast window.
            let mut breaching: BTreeMap<&String, f64> = BTreeMap::new();
            for (key, fv) in &fast {
                if let Some(sv) = slow.get(key) {
                    if rule.op.breached(*fv, rule.threshold) && rule.op.breached(*sv, rule.threshold)
                    {
                        breaching.insert(key, *fv);
                    }
                }
            }
            // Existing states for this rule whose series no longer breach.
            let stale: Vec<String> = self
                .states
                .range((idx, String::new())..(idx + 1, String::new()))
                .filter(|((_, key), _)| !breaching.contains_key(key))
                .map(|((_, key), _)| key.clone())
                .collect();
            for key in stale {
                let entry = self.states.remove(&(idx, key.clone())).expect("stale state");
                if entry.state == AlertState::Firing {
                    transitions.push(AlertEvent {
                        seq: 0,
                        round,
                        rule_idx: idx,
                        rule: rule.name,
                        series: key,
                        transition: AlertTransition::Resolved,
                        value: 0.0,
                    });
                }
                // Pending → Inactive deduplicates silently: a blip that
                // never fired leaves no log trail.
            }
            for (key, value) in breaching {
                let entry = self
                    .states
                    .entry((idx, key.clone()))
                    .or_insert(SeriesState { state: AlertState::Inactive, since: round, value });
                entry.value = value;
                match entry.state {
                    AlertState::Inactive => {
                        entry.since = round;
                        if rule.for_rounds == 0 {
                            entry.state = AlertState::Firing;
                            transitions.push(AlertEvent {
                                seq: 0,
                                round,
                                rule_idx: idx,
                                rule: rule.name,
                                series: key.clone(),
                                transition: AlertTransition::Firing,
                                value,
                            });
                        } else {
                            entry.state = AlertState::Pending;
                            transitions.push(AlertEvent {
                                seq: 0,
                                round,
                                rule_idx: idx,
                                rule: rule.name,
                                series: key.clone(),
                                transition: AlertTransition::Pending,
                                value,
                            });
                        }
                    }
                    AlertState::Pending => {
                        if round - entry.since >= rule.for_rounds {
                            entry.state = AlertState::Firing;
                            transitions.push(AlertEvent {
                                seq: 0,
                                round,
                                rule_idx: idx,
                                rule: rule.name,
                                series: key.clone(),
                                transition: AlertTransition::Firing,
                                value,
                            });
                        }
                    }
                    AlertState::Firing => {}
                }
            }
        }
        for t in &mut transitions {
            t.seq = self.next_seq;
            self.next_seq += 1;
        }
        for t in &transitions {
            self.push_log(t.clone());
        }
        transitions
    }

    /// Log entries with sequence ≥ `cursor`, plus the next cursor and how
    /// many requested entries the bounded log had already dropped.
    pub fn log_since(&self, cursor: u64) -> (Vec<&AlertEvent>, u64, u64) {
        let first_retained = self.log.front().map(|e| e.seq).unwrap_or(self.next_seq);
        let dropped = first_retained.saturating_sub(cursor);
        let events = self.log.iter().filter(|e| e.seq >= cursor).collect();
        (events, self.next_seq, dropped)
    }

    /// The deterministic `/alerts` JSON body: active (non-inactive) states
    /// sorted by `(rule, series)`, then the log entries at or after
    /// `since`, with `next`/`dropped` cursor bookkeeping.
    pub fn alerts_json(&self, since: u64) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"round\": {}, ", self.last_round));
        let (events, next, dropped) = self.log_since(since);
        out.push_str(&format!("\"next\": {next}, \"dropped\": {dropped}, \"states\": ["));
        let mut first = true;
        for ((idx, key), s) in &self.states {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"rule\": \"{}\", \"series\": \"{}\", \"state\": \"{}\", \
                 \"since\": {}, \"value\": {:.3}}}",
                json_escape(self.rules[*idx].name),
                json_escape(key),
                s.state.name(),
                s.since,
                s.value,
            ));
        }
        out.push_str("], \"events\": [");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"seq\": {}, \"round\": {}, \"rule\": \"{}\", \"series\": \"{}\", \
                 \"transition\": \"{}\", \"value\": {:.3}}}",
                e.seq,
                e.round,
                json_escape(e.rule),
                json_escape(&e.series),
                e.transition.name(),
                e.value,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The sum over every series a query matches (0.0 for no matches or a
/// malformed expression — rules are static, so malformed means a
/// programming error surfaced by the rule's own tests, not a runtime
/// condition worth a panic path).
fn query_sum(tsdb: &Tsdb, expr: &str) -> f64 {
    tsdb.query(expr).map(|rows| rows.iter().map(|(_, v)| v).sum()).unwrap_or(0.0)
}

fn round_i64(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else {
        v.round().clamp(i64::MIN as f64, i64::MAX as f64) as i64
    }
}

/// A registry-syntax series key for a recording rule's output.
fn series_key(name: &str, labels: &[(&'static str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", crate::registry::escape_label_value(v)))
        .collect();
    format!("{name}{{{}}}", parts.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::json_is_valid;

    fn burn_rule(for_rounds: u64) -> AlertRule {
        AlertRule {
            name: "ls_burn",
            fast: "avg_over_time(burn{class=\"ls\"}[2r])".to_owned(),
            slow: "avg_over_time(burn{class=\"ls\"}[6r])".to_owned(),
            op: CompareOp::Ge,
            threshold: 1000.0,
            for_rounds,
        }
    }

    /// Drives `engine` one round with the given burn gauge level.
    fn step(engine: &mut AlertEngine, tsdb: &mut Tsdb, round: u64, burn: i64) -> Vec<AlertEvent> {
        tsdb.store_gauge("burn{class=\"ls\"}", round, burn);
        engine.evaluate(round, tsdb)
    }

    #[test]
    fn pending_never_fires_below_for_duration() {
        let mut tsdb = Tsdb::new(8, 32);
        let mut e = AlertEngine::new(64);
        e.add_alert(burn_rule(2));
        // Breach for exactly 2 rounds, then clear: pending both rounds
        // (fires only on the 3rd consecutive breach), then silent cancel.
        let t1 = step(&mut e, &mut tsdb, 1, 1800);
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].transition, AlertTransition::Pending);
        assert!(step(&mut e, &mut tsdb, 2, 1800).is_empty(), "still pending, no new transition");
        assert!(!e.is_firing("ls_burn"));
        assert!(step(&mut e, &mut tsdb, 3, 0).is_empty(), "pending cancel deduplicates silently");
        assert_eq!(e.next_seq(), 1, "only the pending entry was logged");
        assert!(e.firing().is_empty());
    }

    #[test]
    fn sustained_breach_fires_then_resolves() {
        let mut tsdb = Tsdb::new(8, 32);
        let mut e = AlertEngine::new(64);
        e.add_alert(burn_rule(2));
        step(&mut e, &mut tsdb, 1, 3000); // pending
        step(&mut e, &mut tsdb, 2, 3000);
        let t3 = step(&mut e, &mut tsdb, 3, 3000); // 3rd consecutive: fires
        assert_eq!(t3.len(), 1);
        assert_eq!(t3[0].transition, AlertTransition::Firing);
        assert!(e.is_firing("ls_burn"));
        assert_eq!(e.firing_series("ls_burn"), vec!["burn{class=\"ls\"}".to_owned()]);
        assert!(step(&mut e, &mut tsdb, 4, 3000).is_empty(), "firing dedups while breached");
        // Fast window (2r) clears before the slow one: resolution requires
        // only one window to stop breaching.
        let t5 = step(&mut e, &mut tsdb, 5, 0);
        let t6 = step(&mut e, &mut tsdb, 6, 0);
        let resolved: Vec<_> = t5.iter().chain(&t6).collect();
        assert!(
            resolved.iter().any(|t| t.transition == AlertTransition::Resolved),
            "{resolved:?}"
        );
        assert!(!e.is_firing("ls_burn"));
    }

    #[test]
    fn for_rounds_zero_fires_immediately() {
        let mut tsdb = Tsdb::new(8, 32);
        let mut e = AlertEngine::new(64);
        e.add_alert(burn_rule(0));
        let t = step(&mut e, &mut tsdb, 1, 5000);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].transition, AlertTransition::Firing);
        assert_eq!(t[0].value, 5000.0);
    }

    #[test]
    fn multi_window_requires_both_to_breach() {
        let mut tsdb = Tsdb::new(8, 32);
        let mut e = AlertEngine::new(64);
        e.add_alert(burn_rule(0));
        // Long benign history, then one hot round: the fast (2r) window
        // breaches but the slow (6r) average stays under threshold.
        for round in 1..=5u64 {
            step(&mut e, &mut tsdb, round, 0);
        }
        let t = step(&mut e, &mut tsdb, 6, 2500);
        assert!(t.is_empty(), "one-round blip must not fire the multi-window rule: {t:?}");
        // Sustain it: both windows breach, the alert fires.
        step(&mut e, &mut tsdb, 7, 2500);
        step(&mut e, &mut tsdb, 8, 2500);
        step(&mut e, &mut tsdb, 9, 2500);
        let fired = step(&mut e, &mut tsdb, 10, 2500);
        assert!(
            fired.iter().any(|x| x.transition == AlertTransition::Firing) || e.is_firing("ls_burn"),
            "sustained breach must eventually fire"
        );
    }

    #[test]
    fn per_series_states_cover_dynamic_members() {
        let mut tsdb = Tsdb::new(8, 32);
        let mut e = AlertEngine::new(64);
        e.add_alert(AlertRule {
            name: "avail",
            fast: "avg_over_time(avail_permille[1r])".to_owned(),
            slow: "avg_over_time(avail_permille[1r])".to_owned(),
            op: CompareOp::Le,
            threshold: 500.0,
            for_rounds: 0,
        });
        tsdb.store_gauge("avail_permille{engine=\"0\"}", 1, 1000);
        tsdb.store_gauge("avail_permille{engine=\"1\"}", 1, 200);
        let t = e.evaluate(1, &mut tsdb);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].series, "avail_permille{engine=\"1\"}");
        // A member spawned later gets its own state machine.
        tsdb.store_gauge("avail_permille{engine=\"0\"}", 2, 1000);
        tsdb.store_gauge("avail_permille{engine=\"1\"}", 2, 200);
        tsdb.store_gauge("avail_permille{engine=\"2\"}", 2, 100);
        let t = e.evaluate(2, &mut tsdb);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].series, "avail_permille{engine=\"2\"}");
        assert_eq!(e.firing().len(), 2);
    }

    #[test]
    fn recording_rules_publish_to_tsdb_and_derived_registry() {
        let mut tsdb = Tsdb::new(8, 32);
        let mut e = AlertEngine::new(64);
        e.add_recording(RecordingRule {
            record: "sfi_rule_goodput_permille",
            labels: vec![("class", "batch".to_owned())],
            source: RuleSource::RatioPermille {
                num: "increase(completed_total{class=\"batch\"}[4r])".to_owned(),
                den: "increase(offered_total{class=\"batch\"}[4r])".to_owned(),
            },
        });
        let mut offered = 0u64;
        let mut completed = 0u64;
        for round in 1..=5u64 {
            offered += 10;
            completed += 9;
            tsdb.store_counter("offered_total{class=\"batch\"}", round, offered);
            tsdb.store_counter("completed_total{class=\"batch\"}", round, completed);
            e.evaluate(round, &mut tsdb);
        }
        let key = "sfi_rule_goodput_permille{class=\"batch\"}";
        assert_eq!(e.derived().gauge_value(key), Some(900));
        assert_eq!(tsdb.query(key).unwrap(), vec![(key.to_owned(), 900.0)]);
        // Zero denominator records 0, not NaN.
        let mut e2 = AlertEngine::new(8);
        e2.add_recording(RecordingRule {
            record: "sfi_rule_empty_permille",
            labels: vec![],
            source: RuleSource::RatioPermille {
                num: "increase(nope_total[1r])".to_owned(),
                den: "increase(nada_total[1r])".to_owned(),
            },
        });
        let mut t2 = Tsdb::new(4, 8);
        e2.evaluate(1, &mut t2);
        assert_eq!(e2.derived().gauge_value("sfi_rule_empty_permille"), Some(0));
    }

    #[test]
    fn log_is_bounded_with_honest_cursors() {
        let mut tsdb = Tsdb::new(4, 32);
        let mut e = AlertEngine::new(2);
        // A 1-round window so alternating levels really alternate breaches.
        e.add_alert(AlertRule {
            name: "flap",
            fast: "avg_over_time(burn{class=\"ls\"}[1r])".to_owned(),
            slow: "avg_over_time(burn{class=\"ls\"}[1r])".to_owned(),
            op: CompareOp::Ge,
            threshold: 1000.0,
            for_rounds: 0,
        });
        // Alternate breach/clear to generate fire+resolve pairs.
        for round in 1..=8u64 {
            let burn = if round % 2 == 1 { 3000 } else { 0 };
            step(&mut e, &mut tsdb, round, burn);
        }
        assert!(e.next_seq() >= 6);
        assert_eq!(e.dropped() + 2, e.next_seq(), "log holds exactly 2 entries");
        let (events, next, dropped) = e.log_since(0);
        assert_eq!(events.len(), 2);
        assert_eq!(next, e.next_seq());
        assert_eq!(dropped, e.dropped());
        let (tail, _, d) = e.log_since(next);
        assert!(tail.is_empty());
        assert_eq!(d, 0);
    }

    #[test]
    fn alerts_json_is_valid_and_deterministic() {
        let run = || {
            let mut tsdb = Tsdb::new(8, 32);
            let mut e = AlertEngine::new(64);
            e.add_alert(burn_rule(1));
            for round in 1..=6u64 {
                let burn = if round >= 3 { 4000 } else { 0 };
                step(&mut e, &mut tsdb, round, burn);
            }
            e.alerts_json(0)
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same rounds ⇒ byte-identical /alerts body");
        assert!(json_is_valid(&a), "{a}");
        assert!(a.contains("\"rule\": \"ls_burn\""));
        assert!(a.contains("\"transition\": \"firing\""), "{a}");
    }
}
