//! A deterministic, allocation-bounded in-memory time-series store.
//!
//! The registries ([`crate::Registry`]) hold *current* cumulative values;
//! nothing in the stack remembers how a series moved. This module closes
//! that gap: a [`Tsdb`] ingests one registry snapshot per engine round (the
//! round index is the time axis — the virtual clock's coarse grid, never
//! wall time) and keeps a bounded ring of recent samples per series, enough
//! to answer the windowed queries the alert engine ([`crate::alert`])
//! evaluates: counter-reset-safe `increase()`/`rate()`, gauge
//! `avg_over_time`/`max_over_time`, and label-selector matching over the
//! registry's own series-key syntax.
//!
//! Determinism and bounds are the contract (DESIGN.md §15):
//!
//! - Everything stored and everything computed is a pure function of the
//!   ingested `(round, Registry)` sequence — re-running the same rounds
//!   rebuilds an identical store, which is how checkpoint-replay crash
//!   recovery reconstructs alert state byte-for-byte.
//! - Memory is bounded by construction: at most `max_series` series are
//!   admitted (later series are dropped, deterministically, and counted in
//!   [`Tsdb::dropped_writes`]), and each series retains at most
//!   `window + 1` samples (the `+1` keeps one pre-window baseline so a
//!   full-window `increase` has an anchor).
//! - Window math is done in `i128`, so `u64`-boundary counter values and
//!   resets can never overflow or go negative; `increase` is the
//!   Prometheus-style sum of non-negative deltas where a decrease is read
//!   as a counter reset (the restarted counter contributes its new value).

use std::collections::{BTreeMap, VecDeque};

use crate::registry::Registry;

/// What a series' samples mean: cumulative monotone readings (counters,
/// histogram `_sum`/`_count` derivations) or instantaneous levels (gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Cumulative, monotone-except-resets. Queried with `rate`/`increase`.
    Counter,
    /// Instantaneous level. Queried with `avg_over_time`/`max_over_time`.
    Gauge,
}

#[derive(Debug, Clone)]
struct SeriesBuf {
    kind: SampleKind,
    /// `(round, value)` in round order. Counters are `u64` widened, gauges
    /// `i64` widened; `i128` holds both exactly and window sums of either.
    samples: VecDeque<(u64, i128)>,
    /// Round of the series' first-ever sample: a series born inside the
    /// query window gets baseline 0 (counters start from zero), while a
    /// series whose pre-window samples were merely evicted gets the oldest
    /// retained sample as a clamped baseline.
    first_round: u64,
}

/// A parsed label selector over registry series keys: `name` or
/// `name{k="v",...}` with the registry's own escaping rules
/// ([`crate::registry::escape_label_value`]). A selector matches a series
/// when the names are equal and every selector label is present on the
/// series with an equal (unescaped) value; series labels not mentioned by
/// the selector are unconstrained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// The metric name (exact match).
    pub name: String,
    /// Required labels, unescaped values.
    pub labels: Vec<(String, String)>,
}

/// Parses the `k="v",...` interior of a label set, honouring the registry's
/// escapes (`\\`, `\"`, `\n`). Returns `None` on malformed input.
fn parse_labels(inner: &str) -> Option<Vec<(String, String)>> {
    let chars: Vec<char> = inner.chars().collect();
    let mut labels = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let start = i;
        while i < chars.len() && chars[i] != '=' {
            i += 1;
        }
        if i >= chars.len() {
            return None;
        }
        let key: String = chars[start..i].iter().collect::<String>().trim().to_owned();
        if key.is_empty() {
            return None;
        }
        i += 1; // '='
        if i >= chars.len() || chars[i] != '"' {
            return None;
        }
        i += 1; // opening quote
        let mut value = String::new();
        loop {
            if i >= chars.len() {
                return None;
            }
            match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i)? {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        _ => return None,
                    }
                }
                '"' => break,
                c => value.push(c),
            }
            i += 1;
        }
        i += 1; // closing quote
        if i < chars.len() {
            if chars[i] != ',' {
                return None;
            }
            i += 1;
            if i >= chars.len() {
                return None; // trailing comma
            }
        }
        labels.push((key, value));
    }
    Some(labels)
}

/// Splits a series key into `(name, label-interior)`; the interior is `""`
/// for a labelless key. Returns `None` when braces are unbalanced.
fn split_key(key: &str) -> Option<(&str, &str)> {
    match key.find('{') {
        None => Some((key, "")),
        Some(i) => {
            let inner = key[i..].strip_prefix('{')?.strip_suffix('}')?;
            Some((&key[..i], inner))
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Selector {
    /// Parses a selector (`name` or `name{k="v",...}`).
    pub fn parse(s: &str) -> Result<Selector, String> {
        let s = s.trim();
        let (name, inner) = split_key(s).ok_or_else(|| format!("unbalanced braces in selector {s:?}"))?;
        if !valid_metric_name(name) {
            return Err(format!("invalid metric name in selector {s:?}"));
        }
        let labels = if inner.is_empty() {
            Vec::new()
        } else {
            parse_labels(inner).ok_or_else(|| format!("malformed labels in selector {s:?}"))?
        };
        Ok(Selector { name: name.to_owned(), labels })
    }

    /// Whether this selector matches a registry series key.
    pub fn matches(&self, key: &str) -> bool {
        let Some((name, inner)) = split_key(key) else { return false };
        if name != self.name {
            return false;
        }
        if self.labels.is_empty() {
            return true;
        }
        let Some(series_labels) = (if inner.is_empty() { Some(Vec::new()) } else { parse_labels(inner) })
        else {
            return false;
        };
        self.labels
            .iter()
            .all(|(k, v)| series_labels.iter().any(|(sk, sv)| sk == k && sv == v))
    }
}

/// A windowed query function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Func {
    Latest,
    Rate,
    Increase,
    AvgOverTime,
    MaxOverTime,
}

/// One parsed `/query?expr=` expression: `sel`, `rate(sel[Nr])`,
/// `increase(sel[Nr])`, `avg_over_time(sel[Nr])` or `max_over_time(sel[Nr])`
/// — windows are measured in rounds (`r`), parsed as a signed integer and
/// clamped to at least 1 (the zero/negative-window guard rail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryExpr {
    func: Func,
    sel: Selector,
    window: u64,
}

impl QueryExpr {
    /// Parses a query expression; see the type docs for the grammar.
    pub fn parse(expr: &str) -> Result<QueryExpr, String> {
        let e = expr.trim();
        for (fname, func) in [
            ("rate", Func::Rate),
            ("increase", Func::Increase),
            ("avg_over_time", Func::AvgOverTime),
            ("max_over_time", Func::MaxOverTime),
        ] {
            if let Some(rest) = e.strip_prefix(fname) {
                let rest = rest.trim_start();
                if let Some(inner) = rest.strip_prefix('(') {
                    let inner = inner
                        .trim_end()
                        .strip_suffix(')')
                        .ok_or_else(|| format!("missing ')' in {e:?}"))?
                        .trim();
                    let open = inner
                        .rfind('[')
                        .ok_or_else(|| format!("missing [Nr] window in {e:?}"))?;
                    let win = inner[open..]
                        .strip_prefix('[')
                        .and_then(|w| w.strip_suffix(']'))
                        .and_then(|w| w.trim().strip_suffix('r'))
                        .ok_or_else(|| format!("window must be [Nr] in {e:?}"))?;
                    let n: i64 = win
                        .trim()
                        .parse()
                        .map_err(|_| format!("non-integer window {win:?} in {e:?}"))?;
                    let window = if n < 1 { 1 } else { n as u64 };
                    let sel = Selector::parse(&inner[..open])?;
                    return Ok(QueryExpr { func, sel, window });
                }
            }
        }
        Ok(QueryExpr { func: Func::Latest, sel: Selector::parse(e)?, window: 1 })
    }
}

/// The deterministic in-memory time-series store. See the module docs for
/// the determinism/bounds contract.
#[derive(Debug, Clone)]
pub struct Tsdb {
    window: u64,
    max_series: usize,
    series: BTreeMap<String, SeriesBuf>,
    dropped_writes: u64,
    last_round: u64,
}

impl Tsdb {
    /// A store retaining up to `window` rounds of history per series (plus
    /// one baseline sample) for at most `max_series` series. A zero window
    /// clamps to 1.
    pub fn new(window: u64, max_series: usize) -> Tsdb {
        Tsdb {
            window: window.max(1),
            max_series,
            series: BTreeMap::new(),
            dropped_writes: 0,
            last_round: 0,
        }
    }

    /// The configured per-series window, in rounds.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Number of admitted series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Sample writes dropped by the `max_series` bound so far (one per
    /// rejected write, so a persistently over-budget ingest keeps counting).
    pub fn dropped_writes(&self) -> u64 {
        self.dropped_writes
    }

    /// The most recent ingested round (0 before any ingest).
    pub fn last_round(&self) -> u64 {
        self.last_round
    }

    fn store(&mut self, key: &str, kind: SampleKind, round: u64, value: i128) {
        self.last_round = self.last_round.max(round);
        let cap = (self.window + 1) as usize;
        match self.series.get_mut(key) {
            Some(buf) => {
                // Same-round re-ingest overwrites (idempotent within a round).
                if let Some(back) = buf.samples.back_mut() {
                    if back.0 == round {
                        back.1 = value;
                        return;
                    }
                }
                buf.samples.push_back((round, value));
                while buf.samples.len() > cap {
                    buf.samples.pop_front();
                }
            }
            None => {
                if self.series.len() >= self.max_series {
                    self.dropped_writes += 1;
                    return;
                }
                let mut samples = VecDeque::with_capacity(cap.min(64));
                samples.push_back((round, value));
                self.series
                    .insert(key.to_owned(), SeriesBuf { kind, samples, first_round: round });
            }
        }
    }

    /// Stores one counter sample (cumulative reading) under a series key.
    pub fn store_counter(&mut self, key: &str, round: u64, value: u64) {
        self.store(key, SampleKind::Counter, round, value as i128);
    }

    /// Stores one gauge sample (instantaneous level) under a series key.
    pub fn store_gauge(&mut self, key: &str, round: u64, value: i64) {
        self.store(key, SampleKind::Gauge, round, value as i128);
    }

    /// Ingests one registry snapshot at `round`: every counter and gauge
    /// series, plus derived `<name>_sum`/`<name>_count` counter series for
    /// every histogram — the Prometheus-conformant pair that makes
    /// `rate(sum)/rate(count)` window means computable from the store.
    pub fn ingest(&mut self, round: u64, r: &Registry) {
        for (key, v) in r.sorted_counters() {
            self.store_counter(&key, round, v);
        }
        for (key, v) in r.sorted_gauges() {
            self.store_gauge(&key, round, v);
        }
        for (key, h) in r.sorted_histograms() {
            let (name, rest) = match key.find('{') {
                Some(i) => (&key[..i], &key[i..]),
                None => (key.as_str(), ""),
            };
            let sum = h.sum();
            let count = h.count();
            self.store_counter(&format!("{name}_sum{rest}"), round, sum);
            self.store_counter(&format!("{name}_count{rest}"), round, count);
        }
    }

    /// Counter increase over the trailing `window` rounds, per matching
    /// series: the sum of non-negative sample deltas, reading a decrease as
    /// a counter reset (the restarted counter contributes its post-reset
    /// value). Computed in `i128`: never negative, never overflows at `u64`
    /// boundaries. Gauge series are skipped.
    pub fn increase(&self, sel: &Selector, window: u64) -> Vec<(String, f64)> {
        self.eval(Func::Increase, sel, window)
    }

    /// [`Tsdb::increase`] divided by the window: a per-round rate.
    pub fn rate(&self, sel: &Selector, window: u64) -> Vec<(String, f64)> {
        self.eval(Func::Rate, sel, window)
    }

    /// Mean gauge level over the trailing `window` rounds, per matching
    /// series. Counter series are skipped; series with no sample in the
    /// window emit nothing.
    pub fn avg_over_time(&self, sel: &Selector, window: u64) -> Vec<(String, f64)> {
        self.eval(Func::AvgOverTime, sel, window)
    }

    /// Maximum gauge level over the trailing `window` rounds.
    pub fn max_over_time(&self, sel: &Selector, window: u64) -> Vec<(String, f64)> {
        self.eval(Func::MaxOverTime, sel, window)
    }

    /// The most recent sample of each matching series, any kind.
    pub fn latest(&self, sel: &Selector) -> Vec<(String, f64)> {
        self.eval(Func::Latest, sel, 1)
    }

    /// Evaluates a parsed or textual query expression (see [`QueryExpr`]).
    pub fn query(&self, expr: &str) -> Result<Vec<(String, f64)>, String> {
        let q = QueryExpr::parse(expr)?;
        Ok(self.eval(q.func, &q.sel, q.window))
    }

    fn eval(&self, func: Func, sel: &Selector, window: u64) -> Vec<(String, f64)> {
        // Guard rails: zero/negative windows were clamped at parse; clamp
        // here too (for direct calls) and never exceed the retained window.
        let w = window.clamp(1, self.window);
        let mut out = Vec::new();
        for (key, buf) in &self.series {
            if !sel.matches(key) {
                continue;
            }
            let value = match (func, buf.kind) {
                (Func::Latest, _) => buf.samples.back().map(|(_, v)| *v as f64),
                (Func::Increase, SampleKind::Counter) => Some(self.increase_for(buf, w)),
                (Func::Rate, SampleKind::Counter) => Some(self.increase_for(buf, w) / w as f64),
                (Func::AvgOverTime, SampleKind::Gauge) => self.window_gauge(buf, w).map(|(sum, n, _)| sum as f64 / n as f64),
                (Func::MaxOverTime, SampleKind::Gauge) => self.window_gauge(buf, w).map(|(_, _, max)| max as f64),
                _ => None, // kind mismatch: counter-only or gauge-only function
            };
            if let Some(v) = value {
                out.push((key.clone(), v));
            }
        }
        out
    }

    /// Reset-safe increase over the trailing `w` rounds of one series.
    fn increase_for(&self, buf: &SeriesBuf, w: u64) -> f64 {
        let cut = self.last_round.saturating_sub(w);
        // Baseline: the newest sample at or before the window start. A
        // series born inside the window anchors at 0 (counters start from
        // zero); a series whose baseline was evicted anchors at its oldest
        // retained sample (clamped window, honest underestimate).
        let mut prev: Option<i128> = if buf.first_round > cut { Some(0) } else { None };
        let mut inc: i128 = 0;
        for &(round, v) in &buf.samples {
            if round <= cut {
                prev = Some(v);
                continue;
            }
            match prev {
                None => prev = Some(v), // evicted baseline: anchor here
                Some(p) => {
                    inc += if v >= p { v - p } else { v };
                    prev = Some(v);
                }
            }
        }
        inc as f64
    }

    /// `(sum, count, max)` over the in-window samples of a gauge series.
    fn window_gauge(&self, buf: &SeriesBuf, w: u64) -> Option<(i128, u64, i128)> {
        let cut = self.last_round.saturating_sub(w);
        let mut sum: i128 = 0;
        let mut count = 0u64;
        let mut max = i128::MIN;
        for &(round, v) in &buf.samples {
            if round <= cut {
                continue;
            }
            sum += v;
            count += 1;
            max = max.max(v);
        }
        if count == 0 {
            None
        } else {
            Some((sum, count, max))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Tsdb {
        Tsdb::new(8, 64)
    }

    #[test]
    fn selector_parse_and_match() {
        let s = Selector::parse("sfi_qos_offered_total{class=\"batch\"}").unwrap();
        assert!(s.matches("sfi_qos_offered_total{class=\"batch\"}"));
        assert!(s.matches("sfi_qos_offered_total{engine=\"0\",class=\"batch\"}"));
        assert!(!s.matches("sfi_qos_offered_total{class=\"standard\"}"));
        assert!(!s.matches("sfi_qos_offered_total"));
        let bare = Selector::parse("sfi_qos_offered_total").unwrap();
        assert!(bare.matches("sfi_qos_offered_total"));
        assert!(bare.matches("sfi_qos_offered_total{class=\"batch\"}"));
        assert!(!bare.matches("sfi_qos_shed_total"));
        // Escaped label values match against the registry's escaped keys.
        let esc = Selector::parse("sfi_esc_total{path=\"a\\\"b\\\\c\"}").unwrap();
        assert!(esc.matches("sfi_esc_total{path=\"a\\\"b\\\\c\"}"));
        // Malformed selectors are errors, not silent non-matches.
        for bad in ["", "9bad", "x{", "x{k=}", "x{k=\"v", "x{k=\"v\",}"] {
            assert!(Selector::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn increase_and_rate_are_reset_safe() {
        let mut t = db();
        for (round, v) in [(1u64, 10u64), (2, 15), (3, 20), (4, 3), (5, 9)] {
            t.store_counter("c_total", round, v);
        }
        // Window 4 at round 5: baseline round 1 (value 10), then
        // +5 +5, reset (3 counts fully), +6 = 19.
        let inc = t.increase(&Selector::parse("c_total").unwrap(), 4);
        assert_eq!(inc, vec![("c_total".to_owned(), 19.0)]);
        let rate = t.rate(&Selector::parse("c_total").unwrap(), 4);
        assert_eq!(rate[0].1, 19.0 / 4.0);
        // A series born inside the window anchors at zero.
        let mut t2 = db();
        t2.store_counter("born_total", 5, 7);
        t2.store_counter("other_total", 1, 1); // establish last_round context
        t2.store_counter("other_total", 5, 1);
        assert_eq!(t2.increase(&Selector::parse("born_total").unwrap(), 4)[0].1, 7.0);
    }

    #[test]
    fn u64_boundary_math_never_overflows() {
        let mut t = db();
        t.store_counter("big_total", 1, u64::MAX - 5);
        t.store_counter("big_total", 2, u64::MAX);
        t.store_counter("big_total", 3, 2); // reset near the boundary
        let inc = t.increase(&Selector::parse("big_total").unwrap(), 8);
        assert_eq!(inc[0].1, (u64::MAX - 5) as f64 + 5.0 + 2.0);
        assert!(inc[0].1 >= 0.0);
    }

    #[test]
    fn gauge_windows_average_and_max() {
        let mut t = db();
        for (round, v) in [(1u64, 10i64), (2, -4), (3, 6)] {
            t.store_gauge("g", round, v);
        }
        let sel = Selector::parse("g").unwrap();
        assert_eq!(t.avg_over_time(&sel, 8), vec![("g".to_owned(), 4.0)]);
        assert_eq!(t.max_over_time(&sel, 8), vec![("g".to_owned(), 10.0)]);
        // Window 1 sees only the newest sample.
        assert_eq!(t.avg_over_time(&sel, 1), vec![("g".to_owned(), 6.0)]);
        // Kind mismatch: rate() over a gauge emits nothing.
        assert!(t.rate(&sel, 4).is_empty());
        assert_eq!(t.latest(&sel), vec![("g".to_owned(), 6.0)]);
    }

    #[test]
    fn rings_are_bounded_and_series_capped() {
        let mut t = Tsdb::new(4, 2);
        for round in 1..=20u64 {
            t.store_counter("a_total", round, round * 10);
            t.store_counter("b_total", round, round);
            t.store_counter("c_total", round, round); // over budget: dropped
        }
        assert_eq!(t.series_count(), 2);
        assert_eq!(t.dropped_writes(), 20);
        // Ring keeps window+1 samples; a full-window increase still anchors.
        let inc = t.increase(&Selector::parse("a_total").unwrap(), 4);
        assert_eq!(inc[0].1, 40.0, "4 rounds × 10/round");
        assert!(t.query("c_total").unwrap().is_empty(), "dropped series answer nothing");
    }

    #[test]
    fn ingest_covers_counters_gauges_and_histogram_sum_count() {
        let mut r = Registry::new();
        let c = r.counter_with("sfi_x_total", &[("class", "batch")]);
        let g = r.gauge("sfi_depth");
        let h = r.histogram("sfi_lat_ns");
        r.add(c, 5);
        r.set(g, -2);
        r.observe(h, 100);
        r.observe(h, 300);
        let mut t = db();
        t.ingest(1, &r);
        r.add(c, 3);
        r.observe(h, 50);
        t.ingest(2, &r);
        assert_eq!(
            t.increase(&Selector::parse("sfi_x_total{class=\"batch\"}").unwrap(), 1)[0].1,
            3.0
        );
        assert_eq!(t.latest(&Selector::parse("sfi_depth").unwrap())[0].1, -2.0);
        // Histogram _sum/_count derive as counters: window mean = rate/rate.
        let dsum = t.increase(&Selector::parse("sfi_lat_ns_sum").unwrap(), 1)[0].1;
        let dcount = t.increase(&Selector::parse("sfi_lat_ns_count").unwrap(), 1)[0].1;
        assert_eq!((dsum, dcount), (50.0, 1.0));
    }

    #[test]
    fn query_grammar_parses_and_clamps() {
        let mut t = db();
        for round in 1..=6u64 {
            t.store_counter("c_total", round, round * 2);
            t.store_gauge("g", round, round as i64);
        }
        assert_eq!(t.query("rate(c_total[2r])").unwrap()[0].1, 2.0);
        assert_eq!(t.query("increase(c_total[3r])").unwrap()[0].1, 6.0);
        assert_eq!(t.query("avg_over_time(g[2r])").unwrap()[0].1, 5.5);
        assert_eq!(t.query("max_over_time(g[4r])").unwrap()[0].1, 6.0);
        assert_eq!(t.query("c_total").unwrap()[0].1, 12.0);
        assert_eq!(t.query(" rate( c_total [2r] ) ").unwrap()[0].1, 2.0, "whitespace tolerated");
        // Zero and negative windows clamp to 1 round instead of erroring.
        assert_eq!(t.query("increase(c_total[0r])").unwrap()[0].1, 2.0);
        assert_eq!(t.query("increase(c_total[-7r])").unwrap()[0].1, 2.0);
        // Oversized windows clamp to the retained window.
        assert_eq!(
            t.query("increase(c_total[999r])").unwrap()[0].1,
            t.query(&format!("increase(c_total[{}r])", t.window())).unwrap()[0].1
        );
        for bad in ["rate(c_total)", "rate(c_total[2s])", "rate(c_total[xr])", "rate(c_total[2r]", "{}", "bad name"] {
            assert!(t.query(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn rebuild_from_same_rounds_is_identical() {
        let build = || {
            let mut t = Tsdb::new(6, 32);
            for round in 1..=10u64 {
                t.store_counter("c_total", round, round * round);
                t.store_gauge("g", round, (round % 3) as i64);
            }
            t
        };
        let (a, b) = (build(), build());
        for expr in ["rate(c_total[4r])", "increase(c_total[6r])", "avg_over_time(g[3r])", "g"] {
            assert_eq!(a.query(expr).unwrap(), b.query(expr).unwrap(), "{expr}");
        }
    }
}
