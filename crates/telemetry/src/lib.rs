//! # sfi-telemetry: deterministic observability for the SFI stack
//!
//! The paper's claims are all *measurements* — 30.34 ns vs 51.52 ns
//! transitions (§6.4.1), per-`wrpkru` cost, pool occupancy at 256 K
//! instances — so the reproduction instruments exactly those primitives as
//! first-class, always-on telemetry. Three pieces:
//!
//! - [`Registry`]: a per-shard metrics registry of [counters](Registry::counter),
//!   [gauges](Registry::gauge) and fixed-bucket [cycle
//!   histograms](Registry::histogram) keyed by static names (plus optional
//!   labels). Registration detects name collisions at startup; shards each
//!   own a registry (no locks, no atomics) and merge at export time with
//!   [`Registry::merge_from`].
//! - [`FlightRecorder`]: a bounded ring buffer of structured
//!   [`TraceEvent`]s stamped with a **deterministic virtual tick clock**
//!   ([`VirtualClock`] — modeled cycles in the runtime, simulated ns in the
//!   FaaS rig, never wall time), so same-seed runs produce byte-identical
//!   traces, and the last N events can be dumped on a fault for
//!   post-mortem.
//! - Exporters ([`export`]): Prometheus text (with label escaping), a JSON
//!   snapshot for embedding in `BENCH_*.json`, and chrome://tracing
//!   trace-event JSON so a FaaS sim run renders as a timeline.
//! - Profiling surfaces ([`profile`], [`span`]): folded-stack flamegraph
//!   accumulation ([`FoldedStacks`]), per-bucket latency exemplars tying
//!   histogram tails to request trace ids ([`BucketExemplars`]), and the
//!   packed request-span encoding carried by [`TraceKind::Flow`] events
//!   (DESIGN.md §14).
//! - A live serving substrate ([`server`]): a std-only HTTP/1.1 loop plus
//!   matching scrape client, so the exports above can be *served* from a
//!   running engine (`/metrics`, `/snapshot`, `/trace?since=<cursor>`,
//!   `/healthz`) instead of only dumped post-mortem. Streaming rides on the
//!   recorder's cursor API ([`FlightRecorder::events_since`]); hot series
//!   can opt into deterministic 1-in-N sampling
//!   ([`Registry::sampled_counter`], rate recorded in the series labels).
//!
//! The contract (DESIGN.md §8): telemetry must never perturb the simulated
//! system — disabling it (recorder capacity 0) changes no modeled number —
//! and its host-side overhead is gated in CI by `figX_multicore --check`
//! and `faas_serve --check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
mod clock;
pub mod export;
mod histogram;
pub mod profile;
mod recorder;
mod registry;
pub mod server;
pub mod span;
pub mod tsdb;

pub use alert::{
    AlertEngine, AlertEvent, AlertRule, AlertState, AlertTransition, CompareOp, RecordingRule,
    RuleSource,
};
pub use clock::VirtualClock;
pub use export::{
    chrome_trace, chrome_trace_gap_line, chrome_trace_line, chrome_trace_lines,
    chrome_trace_wrap, json_is_valid, json_snapshot, prometheus_text,
};
pub use histogram::{CycleHistogram, HISTOGRAM_BUCKETS};
pub use profile::{BucketExemplars, FoldedStacks};
pub use recorder::{Drained, FlightRecorder, Retention, TraceEvent, TraceKind};
pub use span::{pack_span, unpack_span, SpanEdge, SpanLevel, SPAN_DETAIL_MASK};
pub use registry::{
    CounterId, GaugeId, HistogramId, Registry, RegistryError, SampledCounterId,
};
pub use server::{
    http_get, http_get_detailed, http_get_retry, http_get_retry_with_timeout,
    http_get_with_timeout, percent_decode, retry_with, serve, Cursor, HttpRequest, HttpResponse,
    RetryPolicy,
};
pub use tsdb::{QueryExpr, SampleKind, Selector, Tsdb};
