//! Fixed-bucket cycle histograms: p50/p95/p99 without allocation.

/// Number of buckets in a [`CycleHistogram`]. Bucket `i` (for `i > 0`)
/// holds values in `[2^(i-1), 2^i)`; bucket 0 holds zero. The last bucket
/// is open-ended. 40 buckets cover everything from a single cycle to ~10^11
/// — minutes of 2.2 GHz time — with power-of-two resolution.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket histogram of cycle (or virtual-ns) observations.
///
/// Buckets are power-of-two spaced and allocated inline, so recording is a
/// shift and an add — cheap enough for always-on hot-path instrumentation —
/// and quantile queries allocate nothing. Quantiles are *nearest-rank over
/// buckets*: the reported value is the inclusive upper bound of the bucket
/// containing the rank, a deterministic overestimate of at most 2×.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram::new()
    }
}

impl CycleHistogram {
    /// An empty histogram.
    pub fn new() -> CycleHistogram {
        CycleHistogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index a value lands in (public so exemplar stores can
    /// attach per-bucket metadata without duplicating the bucketing rule).
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `i` (`u64::MAX` for the last,
    /// open-ended bucket).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (index per [`CycleHistogram::bucket_upper_bound`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Nearest-rank quantile over buckets: the upper bound of the bucket
    /// containing observation number `ceil(p × count)`. `p` is clamped to
    /// [0, 1]; returns 0 for an empty histogram. For the open-ended last
    /// bucket the recorded maximum is returned instead of `u64::MAX`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i >= HISTOGRAM_BUCKETS - 1 {
                    self.max
                } else {
                    Self::bucket_upper_bound(i).min(self.max)
                };
            }
        }
        self.max
    }

    /// Median (nearest-rank over buckets).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile — the tail the SLO burn-rate gauges watch. Like
    /// every quantile here it is nearest-rank over power-of-two buckets:
    /// exact at bucket upper bounds, otherwise an overestimate of < 2×.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Adds every bucket, count and extremum of `other` into `self`
    /// (per-shard histogram merge).
    pub fn merge_from(&mut self, other: &CycleHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Values 2^k-1, 2^k, 2^k+1 must land in buckets k, k+1, k+1: the
        // boundary is *inclusive below* the power of two.
        for k in 1..20u32 {
            let v = 1u64 << k;
            assert_eq!(CycleHistogram::bucket_of(v - 1), k as usize, "2^{k}-1");
            assert_eq!(CycleHistogram::bucket_of(v), k as usize + 1, "2^{k}");
            assert_eq!(CycleHistogram::bucket_of(v + 1), k as usize + 1, "2^{k}+1");
        }
        assert_eq!(CycleHistogram::bucket_of(0), 0);
        assert_eq!(CycleHistogram::bucket_of(1), 1);
        assert_eq!(CycleHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Upper bounds agree with bucket_of: a bucket's bound is in it.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(CycleHistogram::bucket_of(CycleHistogram::bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn quantiles_without_allocation() {
        let mut h = CycleHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!((h.min(), h.max()), (1, 1000));
        // Nearest-rank over power-of-two buckets: p50's rank (500) falls in
        // the [256, 512) bucket, so the reported value is 511 — within the
        // documented 2× bucket overestimate of the exact 500.
        assert_eq!(h.p50(), 511);
        assert!(h.p99() >= 990 && h.p99() <= 1023, "{}", h.p99());
        assert_eq!(h.percentile(1.0), 1000, "max is exact");
        assert_eq!(h.percentile(0.0), 1, "rank clamps to the first observation");
    }

    #[test]
    fn p999_boundary_exactness_and_error_bound() {
        // The documented contract for the SLO burn gauges: a quantile whose
        // rank lands exactly on a bucket's upper bound is reported *exactly*;
        // anywhere else the report is the bucket's upper bound — an
        // overestimate strictly below 2× the true nearest-rank value.
        let mut h = CycleHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True nearest-rank p999 of 1..=1000 is observation 1000, which is
        // in the [512, 1024) bucket, so the report is min(1023, max) = 1000:
        // exact, because the histogram clamps to the recorded max.
        assert_eq!(h.p999(), 1000);
        // An all-boundary population: every observation IS a bucket upper
        // bound, so every quantile is exact.
        let mut b = CycleHistogram::new();
        for i in 1..20usize {
            b.record(CycleHistogram::bucket_upper_bound(i));
        }
        for p in [0.5, 0.95, 0.99, 0.999] {
            let rank = ((p * b.count() as f64).ceil() as u64).max(1) as usize;
            let exact = CycleHistogram::bucket_upper_bound(rank);
            assert_eq!(b.percentile(p), exact, "boundary population, p={p}");
        }
        // Mid-bucket population: the report overestimates, but < 2×.
        let mut m = CycleHistogram::new();
        for _ in 0..1000 {
            m.record(600); // in [512, 1024), true p999 = 600
        }
        assert_eq!(m.p999(), 600, "clamped to max, so exact here too");
        m.record(700); // max no longer equals the common value
        let rep = m.p999();
        assert!(rep >= 600 && (rep as f64) < 2.0 * 600.0, "p999={rep}");
    }

    #[test]
    fn empty_and_single_value() {
        let mut h = CycleHistogram::new();
        assert_eq!((h.p50(), h.p99(), h.min(), h.max()), (0, 0, 0, 0));
        h.record(67);
        assert_eq!(h.p50(), 67, "single observation: every quantile is it");
        assert_eq!(h.p99(), 67);
        assert_eq!(h.mean(), 67.0);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        // Regression guard for the per-core → merged export path: a merged
        // registry starts from empty histograms, and folding one shard's
        // histogram into a fresh one must preserve exact bucket counts,
        // count, sum, min and max — so merged percentiles are identical to
        // the percentiles a single-registry run would have reported.
        let mut shard = CycleHistogram::new();
        for v in [0u64, 1, 3, 67, 113, 813, 1 << 20, u64::MAX] {
            shard.record(v);
        }
        let mut merged = CycleHistogram::new();
        merged.merge_from(&shard);
        assert_eq!(merged, shard, "merge into empty must be bit-identical");
        assert_eq!(merged.buckets(), shard.buckets());
        assert_eq!((merged.min(), merged.max()), (shard.min(), shard.max()));
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(merged.percentile(p), shard.percentile(p), "p={p}");
        }
        // The other direction: merging an empty histogram changes nothing,
        // in particular it must not clobber min with the empty sentinel.
        let before = merged.clone();
        merged.merge_from(&CycleHistogram::new());
        assert_eq!(merged, before);
        // Empty into empty stays empty (and min() keeps reporting 0).
        let mut e = CycleHistogram::new();
        e.merge_from(&CycleHistogram::new());
        assert_eq!((e.count(), e.min(), e.max(), e.p50()), (0, 0, 0, 0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CycleHistogram::new();
        let mut b = CycleHistogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [1000u64, 10_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 11_111);
        assert_eq!((a.min(), a.max()), (1, 10_000));
    }
}
