//! The flight recorder: a bounded per-core ring of structured trace events.

/// What happened. The variants cover every lifecycle edge the runtime and
/// the sharded FaaS engine expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// An instance was created (slot allocated, data segments installed).
    Spawn,
    /// Control transitioned into a sandbox (`arg` = MPK color).
    Enter,
    /// Control transitioned back to the host (`arg` = modeled transition
    /// cycles for the invocation).
    Exit,
    /// The sandbox trapped (`arg` = faulting address or target).
    Trap,
    /// A slot was recycled through quarantine (`arg` = 1 if retired).
    Recycle,
    /// A task was stolen onto this core (`arg` = victim core).
    Steal,
    /// Compiled code was produced — a code-cache miss (`arg` = modeled
    /// compile ns).
    Compile,
}

impl TraceKind {
    /// Stable lowercase name, used by the dump and the exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Spawn => "spawn",
            TraceKind::Enter => "enter",
            TraceKind::Exit => "exit",
            TraceKind::Trap => "trap",
            TraceKind::Recycle => "recycle",
            TraceKind::Steal => "steal",
            TraceKind::Compile => "compile",
        }
    }
}

/// One structured trace event. Fixed-size and `Copy`, so recording is a
/// bounds check and a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual tick at which the event occurred ([`crate::VirtualClock`] —
    /// modeled cycles or simulated ns, never wall time).
    pub tick: u64,
    /// The core (shard) the event occurred on.
    pub core: u32,
    /// The sandbox / instance / request the event concerns (`u64::MAX` when
    /// not applicable).
    pub sandbox: u64,
    /// The event kind.
    pub kind: TraceKind,
    /// Kind-specific argument (see [`TraceKind`]).
    pub arg: u64,
}

impl TraceEvent {
    /// The deterministic one-line dump form:
    /// `tick=… core=… sandbox=… kind=… arg=…`.
    pub fn dump_line(&self) -> String {
        let sandbox = if self.sandbox == u64::MAX {
            "-".to_owned()
        } else {
            self.sandbox.to_string()
        };
        format!(
            "tick={} core={} sandbox={} kind={} arg={:#x}",
            self.tick,
            self.core,
            sandbox,
            self.kind.name(),
            self.arg
        )
    }
}

/// One incremental drain from a [`FlightRecorder`] cursor
/// ([`FlightRecorder::events_since`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drained {
    /// The events at or after the requested cursor, oldest first.
    pub events: Vec<TraceEvent>,
    /// The cursor to pass next time (one past the newest event returned,
    /// or the recorder's current end if nothing was new).
    pub next: u64,
    /// Requested events the ring had already overwritten (0 when the
    /// stream kept up with the recorder).
    pub dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// Capacity 0 disables recording entirely (the telemetry-off configuration
/// of the overhead gate). When full, the oldest event is overwritten;
/// [`FlightRecorder::total_recorded`] keeps counting, so wraparound is
/// observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event (once wrapped).
    head: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { buf: Vec::with_capacity(capacity.min(4096)), capacity, head: 0, total: 0 }
    }

    /// A disabled recorder (capacity 0 — every record is a no-op).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::new(0)
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// The sequence number of the oldest retained event. Every recorded
    /// event has a stable sequence number (the value of
    /// [`FlightRecorder::total_recorded`] *before* it was recorded, i.e.
    /// event *k* overall has sequence *k*); wraparound discards old events
    /// but never renumbers the survivors.
    pub fn first_retained_seq(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The cursor one past the newest event — pass it back to
    /// [`FlightRecorder::events_since`] to receive only what arrives later.
    pub fn next_seq(&self) -> u64 {
        self.total
    }

    /// Cursor-based incremental drain, the live-streaming counterpart of
    /// the post-mortem [`FlightRecorder::events`] dump: returns every
    /// retained event with sequence ≥ `cursor` (oldest first) plus how many
    /// requested events the ring had already overwritten. The recorder is
    /// not mutated — the caller owns its cursor, so independent scrapers
    /// can stream at their own pace — and repeatedly draining from cursor 0
    /// on a ring that never wrapped reproduces `events()` exactly, which is
    /// what makes a concatenated stream byte-identical to the batch export.
    pub fn events_since(&self, cursor: u64) -> Drained {
        let first = self.first_retained_seq();
        let dropped = first.saturating_sub(cursor);
        let skip = cursor.saturating_sub(first) as usize;
        let events = if skip >= self.buf.len() {
            Vec::new()
        } else {
            self.events().split_off(skip)
        };
        Drained { events, next: self.total, dropped }
    }

    /// The last `n` retained events concerning `sandbox`, oldest first —
    /// the post-mortem view attached to a fault report.
    pub fn last_for_sandbox(&self, sandbox: u64, n: usize) -> Vec<TraceEvent> {
        let mut hits: Vec<TraceEvent> =
            self.events().into_iter().filter(|e| e.sandbox == sandbox).collect();
        if hits.len() > n {
            hits.drain(..hits.len() - n);
        }
        hits
    }

    /// The deterministic text dump: one [`TraceEvent::dump_line`] per
    /// retained event, oldest first, trailing newline.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.dump_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, sandbox: u64) -> TraceEvent {
        TraceEvent { tick, core: 0, sandbox, kind: TraceKind::Enter, arg: 0 }
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let mut r = FlightRecorder::new(3);
        for t in 0..7 {
            r.record(ev(t, t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 7);
        let ticks: Vec<u64> = r.events().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, [4, 5, 6], "oldest-first, newest retained");
        // Exactly at the boundary: capacity events, no wrap yet.
        let mut r = FlightRecorder::new(3);
        for t in 0..3 {
            r.record(ev(t, t));
        }
        assert_eq!(r.events().iter().map(|e| e.tick).collect::<Vec<_>>(), [0, 1, 2]);
        // One more wraps the single oldest.
        r.record(ev(3, 3));
        assert_eq!(r.events().iter().map(|e| e.tick).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = FlightRecorder::disabled();
        r.record(ev(1, 1));
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
        assert_eq!(r.dump(), "");
    }

    #[test]
    fn per_sandbox_postmortem_view() {
        let mut r = FlightRecorder::new(16);
        for t in 0..10 {
            r.record(ev(t, t % 2));
        }
        let s1 = r.last_for_sandbox(1, 3);
        assert_eq!(s1.iter().map(|e| e.tick).collect::<Vec<_>>(), [5, 7, 9]);
        assert!(r.last_for_sandbox(99, 3).is_empty());
    }

    #[test]
    fn cursor_drain_streams_incrementally() {
        let mut r = FlightRecorder::new(8);
        for t in 0..3 {
            r.record(ev(t, t));
        }
        // First drain from the start sees everything recorded so far.
        let d = r.events_since(0);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!((d.next, d.dropped), (3, 0));
        // Nothing new: an empty drain at the same cursor.
        let d2 = r.events_since(d.next);
        assert!(d2.events.is_empty());
        assert_eq!((d2.next, d2.dropped), (3, 0));
        // New events appear after the cursor only.
        for t in 3..5 {
            r.record(ev(t, t));
        }
        let d3 = r.events_since(d.next);
        assert_eq!(d3.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [3, 4]);
        assert_eq!(d3.next, 5);
        // The concatenated stream equals the batch dump.
        let mut streamed = d.events.clone();
        streamed.extend(d3.events);
        assert_eq!(streamed, r.events(), "stream must concatenate to the batch view");
    }

    #[test]
    fn cursor_drain_reports_wraparound_drops() {
        let mut r = FlightRecorder::new(3);
        for t in 0..7 {
            r.record(ev(t, t));
        }
        assert_eq!(r.first_retained_seq(), 4);
        assert_eq!(r.next_seq(), 7);
        // A stale cursor loses exactly the overwritten span.
        let d = r.events_since(1);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [4, 5, 6]);
        assert_eq!(d.dropped, 3, "cursor 1 missed events 1..4");
        // A cursor inside the retained window drops nothing.
        let d = r.events_since(5);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [5, 6]);
        assert_eq!(d.dropped, 0);
        // A cursor beyond the end is an empty, clean drain.
        let d = r.events_since(99);
        assert!(d.events.is_empty());
        assert_eq!((d.next, d.dropped), (7, 0));
        // A disabled recorder streams nothing, forever.
        let off = FlightRecorder::disabled();
        assert_eq!(off.events_since(0), Drained { events: vec![], next: 0, dropped: 0 });
    }

    #[test]
    fn dump_is_deterministic_text() {
        let mut r = FlightRecorder::new(4);
        r.record(TraceEvent { tick: 5, core: 1, sandbox: 2, kind: TraceKind::Trap, arg: 0x1000 });
        r.record(TraceEvent {
            tick: 6,
            core: 1,
            sandbox: u64::MAX,
            kind: TraceKind::Steal,
            arg: 3,
        });
        assert_eq!(
            r.dump(),
            "tick=5 core=1 sandbox=2 kind=trap arg=0x1000\n\
             tick=6 core=1 sandbox=- kind=steal arg=0x3\n"
        );
    }
}
