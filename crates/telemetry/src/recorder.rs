//! The flight recorder: a bounded per-core ring of structured trace events.

use std::collections::VecDeque;

/// What happened. The variants cover every lifecycle edge the runtime and
/// the sharded FaaS engine expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// An instance was created (slot allocated, data segments installed).
    Spawn,
    /// Control transitioned into a sandbox (`arg` = MPK color).
    Enter,
    /// Control transitioned back to the host (`arg` = modeled transition
    /// cycles for the invocation).
    Exit,
    /// The sandbox trapped (`arg` = faulting address or target).
    Trap,
    /// A slot was recycled through quarantine (`arg` = 1 if retired).
    Recycle,
    /// A task was stolen onto this core (`arg` = victim core).
    Steal,
    /// Compiled code was produced — a code-cache miss (`arg` = modeled
    /// compile ns).
    Compile,
    /// An arrival was shed by admission control (`arg` = SLO class index,
    /// highest priority = 0).
    Shed,
    /// A module crossed the hot-count threshold and was recompiled at the
    /// optimizing tier (`arg` = the promotion count for that module).
    Promote,
    /// A request-span edge for end-to-end tracing: `sandbox` carries the
    /// request's trace id and `arg` packs the span level, start/end flags
    /// and a level-specific detail (see [`crate::span`]). Exported as
    /// chrome-trace flow events.
    Flow,
    /// An alert state-machine transition ([`crate::alert`]): `sandbox`
    /// carries the rule index and `arg` the transition code
    /// ([`crate::alert::AlertTransition::code`]). The bounded alert log is
    /// the primary record; these ride the normal ring for timeline
    /// correlation and are *not* fault-pinned.
    Alert,
}

impl TraceKind {
    /// Stable lowercase name, used by the dump and the exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Spawn => "spawn",
            TraceKind::Enter => "enter",
            TraceKind::Exit => "exit",
            TraceKind::Trap => "trap",
            TraceKind::Recycle => "recycle",
            TraceKind::Steal => "steal",
            TraceKind::Compile => "compile",
            TraceKind::Shed => "shed",
            TraceKind::Promote => "promote",
            TraceKind::Flow => "flow",
            TraceKind::Alert => "alert",
        }
    }

    /// Whether this kind is a *fault* event — the post-mortem evidence a
    /// long-running server must never age out of its ring
    /// ([`Retention::PinFaults`]): the trap itself and the
    /// quarantine/recycle that contained it.
    pub fn is_fault(self) -> bool {
        matches!(self, TraceKind::Trap | TraceKind::Recycle)
    }

    /// Dense index (for per-kind counters).
    pub(crate) fn index(self) -> usize {
        match self {
            TraceKind::Spawn => 0,
            TraceKind::Enter => 1,
            TraceKind::Exit => 2,
            TraceKind::Trap => 3,
            TraceKind::Recycle => 4,
            TraceKind::Steal => 5,
            TraceKind::Compile => 6,
            TraceKind::Shed => 7,
            TraceKind::Promote => 8,
            TraceKind::Flow => 9,
            TraceKind::Alert => 10,
        }
    }
}

/// Number of [`TraceKind`] variants (per-kind counter array size).
pub(crate) const TRACE_KINDS: usize = 11;

/// How a full [`FlightRecorder`] decides what to evict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Retention {
    /// One ring for every kind: when full, the oldest event is overwritten
    /// regardless of what it is (the original policy; keeps the recorder a
    /// strict ring).
    #[default]
    Uniform,
    /// Per-kind retention for long-running servers: fault events
    /// ([`TraceKind::is_fault`] — traps and quarantine recycles) are pinned
    /// and never evicted; ring eviction applies only to the high-rate
    /// lifecycle kinds (enter/exit/spawn/steal/compile). Pinned events sit
    /// outside the configured capacity — faults are rare by design, and a
    /// fault-saturated server has bigger problems than its trace budget.
    PinFaults,
}

/// One structured trace event. Fixed-size and `Copy`, so recording is a
/// bounds check and a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual tick at which the event occurred ([`crate::VirtualClock`] —
    /// modeled cycles or simulated ns, never wall time).
    pub tick: u64,
    /// The core (shard) the event occurred on.
    pub core: u32,
    /// The sandbox / instance / request the event concerns (`u64::MAX` when
    /// not applicable).
    pub sandbox: u64,
    /// The event kind.
    pub kind: TraceKind,
    /// Kind-specific argument (see [`TraceKind`]).
    pub arg: u64,
}

impl TraceEvent {
    /// The deterministic one-line dump form:
    /// `tick=… core=… sandbox=… kind=… arg=…`.
    pub fn dump_line(&self) -> String {
        let sandbox = if self.sandbox == u64::MAX {
            "-".to_owned()
        } else {
            self.sandbox.to_string()
        };
        format!(
            "tick={} core={} sandbox={} kind={} arg={:#x}",
            self.tick,
            self.core,
            sandbox,
            self.kind.name(),
            self.arg
        )
    }
}

/// One incremental drain from a [`FlightRecorder`] cursor
/// ([`FlightRecorder::events_since`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drained {
    /// The events at or after the requested cursor, oldest first.
    pub events: Vec<TraceEvent>,
    /// The cursor to pass next time (one past the newest event returned,
    /// or the recorder's current end if nothing was new).
    pub next: u64,
    /// Requested events the ring had already overwritten (0 when the
    /// stream kept up with the recorder).
    pub dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// Capacity 0 disables recording entirely (the telemetry-off configuration
/// of the overhead gate). When full, the oldest *evictable* event is
/// overwritten — which events are evictable is the [`Retention`] policy;
/// [`FlightRecorder::total_recorded`] keeps counting, so wraparound is
/// observable. Every recorded event has a stable sequence number (event *k*
/// overall has sequence *k*); eviction discards old events but never
/// renumbers the survivors, which is what keeps cursors valid across
/// wraparound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    /// The evictable ring: `(sequence, event)` in sequence order.
    ring: VecDeque<(u64, TraceEvent)>,
    /// Pinned events ([`Retention::PinFaults`] only): never evicted, in
    /// sequence order, outside the ring capacity.
    pinned: Vec<(u64, TraceEvent)>,
    capacity: usize,
    retention: Retention,
    total: u64,
    /// Events evicted so far, and per kind (for retention diagnostics).
    evicted: u64,
    evicted_by_kind: [u64; TRACE_KINDS],
    /// Sequence of the newest evicted event. Evictions happen in sequence
    /// order, so every evictable event at or below this is gone and every
    /// one above it is retained.
    max_evicted_seq: Option<u64>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events, uniform retention.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_retention(capacity, Retention::Uniform)
    }

    /// A recorder with an explicit [`Retention`] policy. Under
    /// [`Retention::PinFaults`], `capacity` bounds the evictable ring only;
    /// pinned fault events are retained beyond it.
    pub fn with_retention(capacity: usize, retention: Retention) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            pinned: Vec::new(),
            capacity,
            retention,
            total: 0,
            evicted: 0,
            evicted_by_kind: [0; TRACE_KINDS],
            max_evicted_seq: None,
        }
    }

    /// A disabled recorder (capacity 0 — every record is a no-op).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::new(0)
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity (of the evictable ring).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The active retention policy.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// Events currently retained (ring + pinned).
    pub fn len(&self) -> usize {
        self.ring.len() + self.pinned.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty() && self.pinned.is_empty()
    }

    /// Events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events evicted by ring wraparound so far (never includes pinned
    /// kinds under [`Retention::PinFaults`]).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events of `kind` evicted so far — under [`Retention::PinFaults`]
    /// this stays 0 for fault kinds by construction, which is the
    /// per-kind retention guarantee in one assertable number.
    pub fn evicted_of(&self, kind: TraceKind) -> u64 {
        self.evicted_by_kind[kind.index()]
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let seq = self.total;
        self.total += 1;
        if self.retention == Retention::PinFaults && ev.kind.is_fault() {
            self.pinned.push((seq, ev));
            return;
        }
        if self.ring.len() == self.capacity {
            let (old_seq, old) = self.ring.pop_front().expect("capacity > 0");
            self.evicted += 1;
            self.evicted_by_kind[old.kind.index()] += 1;
            self.max_evicted_seq = Some(old_seq);
        }
        self.ring.push_back((seq, ev));
    }

    /// Retained events, oldest first (sequence order; pinned and ring
    /// events interleave exactly as recorded).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.retained(0).into_iter().map(|(_, e)| e).collect()
    }

    /// Retained `(seq, event)` pairs with sequence ≥ `cursor`, merged in
    /// sequence order.
    fn retained(&self, cursor: u64) -> Vec<(u64, TraceEvent)> {
        let ring_from = self.ring.partition_point(|(s, _)| *s < cursor);
        let pin_from = self.pinned.partition_point(|(s, _)| *s < cursor);
        let mut out = Vec::with_capacity(self.ring.len() - ring_from + self.pinned.len() - pin_from);
        let (mut i, mut j) = (ring_from, pin_from);
        while i < self.ring.len() && j < self.pinned.len() {
            if self.ring[i].0 < self.pinned[j].0 {
                out.push(self.ring[i]);
                i += 1;
            } else {
                out.push(self.pinned[j]);
                j += 1;
            }
        }
        out.extend(self.ring.iter().skip(i));
        out.extend_from_slice(&self.pinned[j..]);
        out
    }

    /// The sequence number of the oldest retained event (the recorder's
    /// current end when nothing is retained).
    pub fn first_retained_seq(&self) -> u64 {
        let ring = self.ring.front().map(|(s, _)| *s);
        let pin = self.pinned.first().map(|(s, _)| *s);
        match (ring, pin) {
            (Some(r), Some(p)) => r.min(p),
            (Some(r), None) => r,
            (None, Some(p)) => p,
            (None, None) => self.total,
        }
    }

    /// The cursor one past the newest event — pass it back to
    /// [`FlightRecorder::events_since`] to receive only what arrives later.
    pub fn next_seq(&self) -> u64 {
        self.total
    }

    /// Cursor-based incremental drain, the live-streaming counterpart of
    /// the post-mortem [`FlightRecorder::events`] dump: returns every
    /// retained event with sequence ≥ `cursor` (oldest first) plus how many
    /// requested events the ring had already overwritten. `dropped` counts
    /// *lost* events only: under [`Retention::PinFaults`], a pinned trap
    /// older than the ring window is returned, not counted as dropped —
    /// per-kind retention keeps the drop accounting honest per kind. The
    /// recorder is not mutated — the caller owns its cursor, so independent
    /// scrapers can stream at their own pace — and repeatedly draining from
    /// cursor 0 on a ring that never wrapped reproduces `events()` exactly,
    /// which is what makes a concatenated stream byte-identical to the
    /// batch export.
    pub fn events_since(&self, cursor: u64) -> Drained {
        // Evictions happen in sequence order, so the evicted set is exactly
        // the non-pinned sequences ≤ max_evicted_seq. The count at or after
        // the cursor is that span's width minus its retained (pinned)
        // events.
        let dropped = match self.max_evicted_seq {
            Some(m) if cursor <= m => {
                let span = m + 1 - cursor;
                let pinned_in_span = self.pinned.partition_point(|(s, _)| *s <= m) as u64
                    - self.pinned.partition_point(|(s, _)| *s < cursor) as u64;
                span - pinned_in_span
            }
            _ => 0,
        };
        let events = self.retained(cursor).into_iter().map(|(_, e)| e).collect();
        Drained { events, next: self.total, dropped }
    }

    /// The last `n` retained events concerning `sandbox`, oldest first —
    /// the post-mortem view attached to a fault report.
    pub fn last_for_sandbox(&self, sandbox: u64, n: usize) -> Vec<TraceEvent> {
        let mut hits: Vec<TraceEvent> =
            self.events().into_iter().filter(|e| e.sandbox == sandbox).collect();
        if hits.len() > n {
            hits.drain(..hits.len() - n);
        }
        hits
    }

    /// The deterministic text dump: one [`TraceEvent::dump_line`] per
    /// retained event, oldest first, trailing newline.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.dump_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, sandbox: u64) -> TraceEvent {
        TraceEvent { tick, core: 0, sandbox, kind: TraceKind::Enter, arg: 0 }
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let mut r = FlightRecorder::new(3);
        for t in 0..7 {
            r.record(ev(t, t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 7);
        let ticks: Vec<u64> = r.events().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, [4, 5, 6], "oldest-first, newest retained");
        // Exactly at the boundary: capacity events, no wrap yet.
        let mut r = FlightRecorder::new(3);
        for t in 0..3 {
            r.record(ev(t, t));
        }
        assert_eq!(r.events().iter().map(|e| e.tick).collect::<Vec<_>>(), [0, 1, 2]);
        // One more wraps the single oldest.
        r.record(ev(3, 3));
        assert_eq!(r.events().iter().map(|e| e.tick).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = FlightRecorder::disabled();
        r.record(ev(1, 1));
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
        assert_eq!(r.dump(), "");
    }

    #[test]
    fn per_sandbox_postmortem_view() {
        let mut r = FlightRecorder::new(16);
        for t in 0..10 {
            r.record(ev(t, t % 2));
        }
        let s1 = r.last_for_sandbox(1, 3);
        assert_eq!(s1.iter().map(|e| e.tick).collect::<Vec<_>>(), [5, 7, 9]);
        assert!(r.last_for_sandbox(99, 3).is_empty());
    }

    #[test]
    fn cursor_drain_streams_incrementally() {
        let mut r = FlightRecorder::new(8);
        for t in 0..3 {
            r.record(ev(t, t));
        }
        // First drain from the start sees everything recorded so far.
        let d = r.events_since(0);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!((d.next, d.dropped), (3, 0));
        // Nothing new: an empty drain at the same cursor.
        let d2 = r.events_since(d.next);
        assert!(d2.events.is_empty());
        assert_eq!((d2.next, d2.dropped), (3, 0));
        // New events appear after the cursor only.
        for t in 3..5 {
            r.record(ev(t, t));
        }
        let d3 = r.events_since(d.next);
        assert_eq!(d3.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [3, 4]);
        assert_eq!(d3.next, 5);
        // The concatenated stream equals the batch dump.
        let mut streamed = d.events.clone();
        streamed.extend(d3.events);
        assert_eq!(streamed, r.events(), "stream must concatenate to the batch view");
    }

    #[test]
    fn cursor_drain_reports_wraparound_drops() {
        let mut r = FlightRecorder::new(3);
        for t in 0..7 {
            r.record(ev(t, t));
        }
        assert_eq!(r.first_retained_seq(), 4);
        assert_eq!(r.next_seq(), 7);
        // A stale cursor loses exactly the overwritten span.
        let d = r.events_since(1);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [4, 5, 6]);
        assert_eq!(d.dropped, 3, "cursor 1 missed events 1..4");
        // A cursor inside the retained window drops nothing.
        let d = r.events_since(5);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [5, 6]);
        assert_eq!(d.dropped, 0);
        // A cursor beyond the end is an empty, clean drain.
        let d = r.events_since(99);
        assert!(d.events.is_empty());
        assert_eq!((d.next, d.dropped), (7, 0));
        // A disabled recorder streams nothing, forever.
        let off = FlightRecorder::disabled();
        assert_eq!(off.events_since(0), Drained { events: vec![], next: 0, dropped: 0 });
    }

    #[test]
    fn pin_faults_survive_wraparound_with_honest_drop_counts() {
        let fault = |t: u64| TraceEvent {
            tick: t,
            core: 0,
            sandbox: t,
            kind: TraceKind::Trap,
            arg: 0,
        };
        let mut r = FlightRecorder::with_retention(3, Retention::PinFaults);
        // seq 0..2: enters; seq 3: trap; seq 4..9: enters — the ring (cap 3)
        // wraps while the trap is pinned outside it.
        for t in 0..3 {
            r.record(ev(t, t));
        }
        r.record(fault(3));
        for t in 4..10 {
            r.record(ev(t, t));
        }
        assert_eq!(r.total_recorded(), 10);
        // Ring kept the newest 3 evictable events; the trap survived even
        // though every enter recorded before it was evicted.
        let ticks: Vec<u64> = r.events().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, [3, 7, 8, 9], "pinned trap outlives the ring window");
        assert_eq!(r.evicted(), 6);
        assert_eq!(r.evicted_of(TraceKind::Enter), 6);
        assert_eq!(r.evicted_of(TraceKind::Trap), 0, "faults are never evicted");
        // Drop accounting is per kind: cursor 0 missed the 6 evicted enters
        // but receives the pinned trap, so it is not counted as dropped.
        let d = r.events_since(0);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [3, 7, 8, 9]);
        assert_eq!(d.dropped, 6, "only evicted events count as dropped");
        assert_eq!(d.next, 10);
        // A cursor past the trap but inside the evicted span: seq 4..=6
        // were evicted (3 events), none pinned in that range.
        let d = r.events_since(4);
        assert_eq!(d.events.iter().map(|e| e.tick).collect::<Vec<_>>(), [7, 8, 9]);
        assert_eq!(d.dropped, 3);
        // A cursor inside the retained window drops nothing.
        let d = r.events_since(7);
        assert_eq!(d.dropped, 0);
        // Uniform retention on the same sequence evicts the trap like
        // anything else — PinFaults is the difference, not the kind.
        let mut u = FlightRecorder::new(3);
        for t in 0..3 {
            u.record(ev(t, t));
        }
        u.record(fault(3));
        for t in 4..10 {
            u.record(ev(t, t));
        }
        assert_eq!(u.events().iter().map(|e| e.tick).collect::<Vec<_>>(), [7, 8, 9]);
        assert_eq!(u.evicted_of(TraceKind::Trap), 1);
        assert_eq!(u.events_since(0).dropped, 7);
    }

    #[test]
    fn dump_is_deterministic_text() {
        let mut r = FlightRecorder::new(4);
        r.record(TraceEvent { tick: 5, core: 1, sandbox: 2, kind: TraceKind::Trap, arg: 0x1000 });
        r.record(TraceEvent {
            tick: 6,
            core: 1,
            sandbox: u64::MAX,
            kind: TraceKind::Steal,
            arg: 3,
        });
        assert_eq!(
            r.dump(),
            "tick=5 core=1 sandbox=2 kind=trap arg=0x1000\n\
             tick=6 core=1 sandbox=- kind=steal arg=0x3\n"
        );
    }
}
