//! The deterministic virtual clock trace events are stamped with.

/// A monotone tick counter advanced by *modeled* time only — cycles in the
/// runtime, simulated nanoseconds in the FaaS rig. Wall time never enters,
/// which is what makes same-seed flight-recorder traces byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    ticks: u64,
}

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.ticks
    }

    /// Advances the clock by `ticks` (saturating; the clock never wraps
    /// backwards, so event order is total).
    pub fn advance(&mut self, ticks: u64) {
        self.ticks = self.ticks.saturating_add(ticks);
    }

    /// Advances by a modeled cycle count expressed as `f64` (the transition
    /// and emulator models accumulate fractional cycles); rounds to the
    /// nearest tick.
    pub fn advance_cycles(&mut self, cycles: f64) {
        if cycles > 0.0 {
            self.advance(cycles.round() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(10);
        c.advance_cycles(5.4);
        assert_eq!(c.now(), 15);
        c.advance_cycles(-1.0); // ignored: time never rewinds
        assert_eq!(c.now(), 15);
        c.advance(u64::MAX);
        assert_eq!(c.now(), u64::MAX, "saturates instead of wrapping");
    }
}
