//! Request-span encoding for end-to-end tracing.
//!
//! Every FaaS request gets a deterministic `trace_id`; the stations it
//! passes through — fleet member, engine round, shard queue wait, admission
//! decision, sandbox invoke — each record a [`crate::TraceKind::Flow`]
//! event. The event's `sandbox` field carries the trace id and its `arg`
//! packs the span's level, start/end flags, and a 48-bit level-specific
//! detail, so a span edge stays one fixed-size [`crate::TraceEvent`] and
//! the recorder's ring/cursor machinery needs no new storage.
//!
//! Packed `arg` layout (documented in DESIGN.md §14):
//!
//! ```text
//! bits 56..64   span level (SpanLevel::index)
//! bit  55       start flag
//! bit  54       end flag (start+end = instantaneous span)
//! bits  0..48   detail (level-specific: shard, queue depth, slot, …)
//! ```

/// A station in the request's path, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanLevel {
    /// Fleet supervisor dispatched the round to a member engine
    /// (detail = member id).
    FleetMember,
    /// A serve-engine round processed the request's stream
    /// (detail = round number).
    EngineRound,
    /// The request waited in its shard's queue (detail = shard/core id).
    QueueWait,
    /// Admission control decided (detail = SLO class index; an
    /// instantaneous span — start and end flags both set).
    Admission,
    /// The sandbox invocation itself (detail = sandbox slot).
    Invoke,
}

impl SpanLevel {
    /// All levels, outermost first.
    pub const ALL: [SpanLevel; 5] = [
        SpanLevel::FleetMember,
        SpanLevel::EngineRound,
        SpanLevel::QueueWait,
        SpanLevel::Admission,
        SpanLevel::Invoke,
    ];

    /// Stable snake_case name (span names in exported traces).
    pub fn name(self) -> &'static str {
        match self {
            SpanLevel::FleetMember => "fleet_member",
            SpanLevel::EngineRound => "engine_round",
            SpanLevel::QueueWait => "queue_wait",
            SpanLevel::Admission => "admission",
            SpanLevel::Invoke => "invoke",
        }
    }

    /// Dense index, used in the packed arg.
    pub fn index(self) -> u64 {
        match self {
            SpanLevel::FleetMember => 0,
            SpanLevel::EngineRound => 1,
            SpanLevel::QueueWait => 2,
            SpanLevel::Admission => 3,
            SpanLevel::Invoke => 4,
        }
    }

    /// Inverse of [`SpanLevel::index`].
    pub fn from_index(i: u64) -> Option<SpanLevel> {
        SpanLevel::ALL.get(i as usize).copied()
    }
}

/// Detail payload mask: the low 48 bits of the packed arg.
pub const SPAN_DETAIL_MASK: u64 = (1 << 48) - 1;
const START_BIT: u64 = 1 << 55;
const END_BIT: u64 = 1 << 54;

/// Packs a span edge into a trace-event `arg`. `detail` is truncated to
/// 48 bits.
pub fn pack_span(level: SpanLevel, start: bool, end: bool, detail: u64) -> u64 {
    (level.index() << 56)
        | if start { START_BIT } else { 0 }
        | if end { END_BIT } else { 0 }
        | (detail & SPAN_DETAIL_MASK)
}

/// A decoded span edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEdge {
    /// The station this edge belongs to.
    pub level: SpanLevel,
    /// Span opens here.
    pub start: bool,
    /// Span closes here.
    pub end: bool,
    /// Level-specific detail (48 bits).
    pub detail: u64,
}

/// Unpacks a trace-event `arg` produced by [`pack_span`]. Returns `None`
/// for args whose level byte is out of range (not a span).
pub fn unpack_span(arg: u64) -> Option<SpanEdge> {
    let level = SpanLevel::from_index(arg >> 56)?;
    Some(SpanEdge {
        level,
        start: arg & START_BIT != 0,
        end: arg & END_BIT != 0,
        detail: arg & SPAN_DETAIL_MASK,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for level in SpanLevel::ALL {
            for (start, end) in [(true, false), (false, true), (true, true)] {
                let detail = 0xABCD_1234_5678 & SPAN_DETAIL_MASK;
                let arg = pack_span(level, start, end, detail);
                let e = unpack_span(arg).expect("valid span arg");
                assert_eq!((e.level, e.start, e.end, e.detail), (level, start, end, detail));
            }
        }
    }

    #[test]
    fn detail_is_truncated_not_leaked() {
        let arg = pack_span(SpanLevel::Invoke, true, false, u64::MAX);
        let e = unpack_span(arg).expect("valid");
        assert_eq!(e.detail, SPAN_DETAIL_MASK);
        assert_eq!(e.level, SpanLevel::Invoke, "detail overflow must not corrupt the level");
    }

    #[test]
    fn out_of_range_level_is_not_a_span() {
        assert_eq!(unpack_span(0xFF << 56), None);
        assert_eq!(unpack_span(5 << 56), None);
    }
}
