//! The per-shard metrics registry.
//!
//! Each shard (a runtime, a simulated core) owns one [`Registry`] and
//! updates it through plain `&mut` — no locks, no atomics — which keeps the
//! hot path to an array index and an add. Registries with the same schema
//! are merged at export time ([`Registry::merge_from`]), the classic
//! shard-and-scrape layout.
//!
//! Metric identity is `name` plus an ordered label list; registering the
//! same identity twice is a startup error ([`RegistryError::Collision`]),
//! surfaced by the CI gate so two subsystems can never silently write to
//! the same series.

use std::collections::BTreeMap;

use crate::histogram::CycleHistogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Registration failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The (name, labels) identity is already registered.
    Collision(String),
    /// The metric name is not a valid Prometheus identifier
    /// (`[a-zA-Z_][a-zA-Z0-9_]*`).
    BadName(String),
}

impl core::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RegistryError::Collision(k) => write!(f, "metric name collision: {k}"),
            RegistryError::BadName(n) => write!(f, "invalid metric name: {n}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A metric's identity: static name + ordered labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Series {
    pub(crate) name: &'static str,
    pub(crate) labels: Vec<(&'static str, String)>,
}

impl Series {
    /// The Prometheus-style series key, with label values escaped
    /// (`\` → `\\`, `"` → `\"`, newline → `\n`).
    pub(crate) fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_owned();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Escapes a label value per the Prometheus text-format rules.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

/// A lock-free-per-shard registry of counters, gauges and cycle histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Identity → slot, for collision detection and named lookups.
    index: BTreeMap<String, Kind>,
    counters: Vec<(Series, u64)>,
    gauges: Vec<(Series, i64)>,
    histograms: Vec<(Series, CycleHistogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn admit(&mut self, name: &'static str, labels: &[(&'static str, &str)], kind: Kind) -> Result<Series, RegistryError> {
        if !valid_name(name) || labels.iter().any(|(k, _)| !valid_name(k)) {
            return Err(RegistryError::BadName(name.to_owned()));
        }
        let series = Series {
            name,
            labels: labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect(),
        };
        let key = series.key();
        if self.index.contains_key(&key) {
            return Err(RegistryError::Collision(key));
        }
        self.index.insert(key, kind);
        Ok(series)
    }

    /// Registers a labelless counter; see [`Registry::try_counter`] for the
    /// non-panicking form. Panics on a name collision — by design, at
    /// startup, so a duplicated metric name can never ship.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.try_counter(name, &[]).expect("metric registration")
    }

    /// Registers a counter with labels, panicking on collision.
    pub fn counter_with(&mut self, name: &'static str, labels: &[(&'static str, &str)]) -> CounterId {
        self.try_counter(name, labels).expect("metric registration")
    }

    /// Registers a counter, reporting collisions as errors.
    pub fn try_counter(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Result<CounterId, RegistryError> {
        let id = self.counters.len();
        let series = self.admit(name, labels, Kind::Counter(id))?;
        self.counters.push((series, 0));
        Ok(CounterId(id))
    }

    /// Registers a labelless gauge, panicking on collision.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.try_gauge(name, &[]).expect("metric registration")
    }

    /// Registers a gauge, reporting collisions as errors.
    pub fn try_gauge(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Result<GaugeId, RegistryError> {
        let id = self.gauges.len();
        let series = self.admit(name, labels, Kind::Gauge(id))?;
        self.gauges.push((series, 0));
        Ok(GaugeId(id))
    }

    /// Registers a labelless histogram, panicking on collision.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        self.try_histogram(name, &[]).expect("metric registration")
    }

    /// Registers a histogram, reporting collisions as errors.
    pub fn try_histogram(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Result<HistogramId, RegistryError> {
        let id = self.histograms.len();
        let series = self.admit(name, labels, Kind::Histogram(id))?;
        self.histograms.push((series, CycleHistogram::new()));
        Ok(HistogramId(id))
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0].1 = v;
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].1.record(v);
    }

    /// A counter's current value, by series key (for tests and exporters).
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.index.get(key)? {
            Kind::Counter(i) => Some(self.counters[*i].1),
            _ => None,
        }
    }

    /// A gauge's current value, by series key.
    pub fn gauge_value(&self, key: &str) -> Option<i64> {
        match self.index.get(key)? {
            Kind::Gauge(i) => Some(self.gauges[*i].1),
            _ => None,
        }
    }

    /// A histogram, by series key.
    pub fn histogram_values(&self, key: &str) -> Option<&CycleHistogram> {
        match self.index.get(key)? {
            Kind::Histogram(i) => Some(&self.histograms[*i].1),
            _ => None,
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All counters, sorted by series key (deterministic export order).
    pub(crate) fn sorted_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            self.counters.iter().map(|(s, n)| (s.key(), *n)).collect();
        v.sort();
        v
    }

    /// All gauges, sorted by series key.
    pub(crate) fn sorted_gauges(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> = self.gauges.iter().map(|(s, n)| (s.key(), *n)).collect();
        v.sort();
        v
    }

    /// All histograms, sorted by series key.
    pub(crate) fn sorted_histograms(&self) -> Vec<(String, &CycleHistogram)> {
        let mut v: Vec<(String, &CycleHistogram)> =
            self.histograms.iter().map(|(s, h)| (s.key(), h)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Merges another shard's registry into this one: counters and gauges
    /// add, histograms merge bucket-wise. Series missing from `self` are
    /// created with `other`'s identity (so shards may register lazily).
    /// Gauges *add* because every per-shard gauge in this workspace is an
    /// occupancy (slots in use, ring depth, VMAs) whose fleet-wide value is
    /// the sum.
    pub fn merge_from(&mut self, other: &Registry) {
        for (series, n) in &other.counters {
            let key = series.key();
            match self.index.get(&key) {
                Some(Kind::Counter(i)) => self.counters[*i].1 += n,
                Some(_) => panic!("metric kind mismatch for {key}"),
                None => {
                    let id = self.counters.len();
                    self.index.insert(key, Kind::Counter(id));
                    self.counters.push((series.clone(), *n));
                }
            }
        }
        for (series, v) in &other.gauges {
            let key = series.key();
            match self.index.get(&key) {
                Some(Kind::Gauge(i)) => self.gauges[*i].1 += v,
                Some(_) => panic!("metric kind mismatch for {key}"),
                None => {
                    let id = self.gauges.len();
                    self.index.insert(key, Kind::Gauge(id));
                    self.gauges.push((series.clone(), *v));
                }
            }
        }
        for (series, h) in &other.histograms {
            let key = series.key();
            match self.index.get(&key) {
                Some(Kind::Histogram(i)) => self.histograms[*i].1.merge_from(h),
                Some(_) => panic!("metric kind mismatch for {key}"),
                None => {
                    let id = self.histograms.len();
                    self.index.insert(key, Kind::Histogram(id));
                    self.histograms.push((series.clone(), h.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("sfi_test_total");
        let g = r.gauge("sfi_test_depth");
        let h = r.histogram("sfi_test_cycles");
        r.inc(c);
        r.add(c, 9);
        r.set(g, -3);
        r.observe(h, 100);
        assert_eq!(r.counter_value("sfi_test_total"), Some(10));
        assert_eq!(r.gauge_value("sfi_test_depth"), Some(-3));
        assert_eq!(r.histogram_values("sfi_test_cycles").unwrap().count(), 1);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn collisions_are_startup_errors() {
        let mut r = Registry::new();
        r.counter("sfi_dup_total");
        let err = r.try_counter("sfi_dup_total", &[]).unwrap_err();
        assert!(matches!(err, RegistryError::Collision(_)), "{err}");
        // Cross-kind collisions count too: one namespace.
        assert!(r.try_gauge("sfi_dup_total", &[]).is_err());
        // Same name with different labels is a different series.
        assert!(r.try_counter("sfi_dup_total", &[("kind", "a")]).is_ok());
        assert!(r.try_counter("sfi_dup_total", &[("kind", "b")]).is_ok());
        assert!(r.try_counter("sfi_dup_total", &[("kind", "a")]).is_err());
    }

    #[test]
    fn names_are_validated() {
        let mut r = Registry::new();
        assert!(matches!(r.try_counter("9bad", &[]), Err(RegistryError::BadName(_))));
        assert!(matches!(r.try_counter("has space", &[]), Err(RegistryError::BadName(_))));
        assert!(r.try_counter("_ok_123", &[]).is_ok());
    }

    #[test]
    fn label_values_escape() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("line\nbreak"), r"line\nbreak");
        let mut r = Registry::new();
        let c = r.counter_with("sfi_esc_total", &[("path", "a\"b\\c\nd")]);
        r.inc(c);
        let key = r.sorted_counters()[0].0.clone();
        assert_eq!(key, "sfi_esc_total{path=\"a\\\"b\\\\c\\nd\"}");
        assert_eq!(r.counter_value(&key), Some(1));
    }

    #[test]
    fn per_shard_merge_sums() {
        let build = |n: u64| {
            let mut r = Registry::new();
            let c = r.counter("sfi_shard_total");
            let g = r.gauge("sfi_shard_depth");
            let h = r.histogram("sfi_shard_cycles");
            r.add(c, n);
            r.set(g, n as i64);
            r.observe(h, n);
            r
        };
        let mut a = build(3);
        let b = build(5);
        a.merge_from(&b);
        assert_eq!(a.counter_value("sfi_shard_total"), Some(8));
        assert_eq!(a.gauge_value("sfi_shard_depth"), Some(8));
        let h = a.histogram_values("sfi_shard_cycles").unwrap();
        assert_eq!((h.count(), h.sum()), (2, 8));

        // Series unknown to the target are created, not dropped.
        let mut extra = Registry::new();
        let c = extra.counter("sfi_only_here_total");
        extra.add(c, 7);
        a.merge_from(&extra);
        assert_eq!(a.counter_value("sfi_only_here_total"), Some(7));
    }
}
