//! The per-shard metrics registry.
//!
//! Each shard (a runtime, a simulated core) owns one [`Registry`] and
//! updates it through plain `&mut` — no locks, no atomics — which keeps the
//! hot path to an array index and an add. Registries with the same schema
//! are merged at export time ([`Registry::merge_from`]), the classic
//! shard-and-scrape layout.
//!
//! Metric identity is `name` plus an ordered label list; registering the
//! same identity twice is a startup error ([`RegistryError::Collision`]),
//! surfaced by the CI gate so two subsystems can never silently write to
//! the same series.

use std::collections::BTreeMap;

use crate::histogram::CycleHistogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to a registered sampled counter (a counter that records only a
/// deterministic 1-in-N subset of its trials; see
/// [`Registry::sampled_counter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledCounterId(usize);

/// Registration failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The (name, labels) identity is already registered.
    Collision(String),
    /// The metric name is not a valid Prometheus identifier
    /// (`[a-zA-Z_][a-zA-Z0-9_]*`).
    BadName(String),
}

impl core::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RegistryError::Collision(k) => write!(f, "metric name collision: {k}"),
            RegistryError::BadName(n) => write!(f, "invalid metric name: {n}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A metric's identity: static name + ordered labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Series {
    pub(crate) name: &'static str,
    pub(crate) labels: Vec<(&'static str, String)>,
}

impl Series {
    /// The Prometheus-style series key, with label values escaped
    /// (`\` → `\\`, `"` → `\"`, newline → `\n`).
    pub(crate) fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_owned();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Escapes a label value per the Prometheus text-format rules.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

/// Per-series sampling state: which 1-in-`rate` trials hit the underlying
/// counter. The selected phase is a seeded pure function of the series, so
/// two same-seed runs sample the *same* trials — deterministic sampling,
/// not statistical sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sampler {
    counter: usize,
    rate: u64,
    phase: u64,
    trials: u64,
}

impl Sampler {
    /// Trials selected among absolute trial indices `[lo, lo + n)`: those
    /// with `(index + phase) % rate == 0`, counted in O(1).
    fn selected(&self, lo: u64, n: u64) -> u64 {
        let multiples_below = |x: u64| x.div_ceil(self.rate);
        multiples_below(lo + self.phase + n) - multiples_below(lo + self.phase)
    }
}

/// A lock-free-per-shard registry of counters, gauges and cycle histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Identity → slot, for collision detection and named lookups.
    index: BTreeMap<String, Kind>,
    counters: Vec<(Series, u64)>,
    gauges: Vec<(Series, i64)>,
    histograms: Vec<(Series, CycleHistogram)>,
    samplers: Vec<Sampler>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn admit(&mut self, name: &'static str, labels: &[(&'static str, &str)], kind: Kind) -> Result<Series, RegistryError> {
        if !valid_name(name) || labels.iter().any(|(k, _)| !valid_name(k)) {
            return Err(RegistryError::BadName(name.to_owned()));
        }
        let series = Series {
            name,
            labels: labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect(),
        };
        let key = series.key();
        if self.index.contains_key(&key) {
            return Err(RegistryError::Collision(key));
        }
        self.index.insert(key, kind);
        Ok(series)
    }

    /// Registers a labelless counter; see [`Registry::try_counter`] for the
    /// non-panicking form. Panics on a name collision — by design, at
    /// startup, so a duplicated metric name can never ship.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.try_counter(name, &[]).expect("metric registration")
    }

    /// Registers a counter with labels, panicking on collision.
    pub fn counter_with(&mut self, name: &'static str, labels: &[(&'static str, &str)]) -> CounterId {
        self.try_counter(name, labels).expect("metric registration")
    }

    /// Registers a counter, reporting collisions as errors.
    pub fn try_counter(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Result<CounterId, RegistryError> {
        let id = self.counters.len();
        let series = self.admit(name, labels, Kind::Counter(id))?;
        self.counters.push((series, 0));
        Ok(CounterId(id))
    }

    /// Registers a labelless gauge, panicking on collision.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.try_gauge(name, &[]).expect("metric registration")
    }

    /// Registers a gauge, reporting collisions as errors.
    pub fn try_gauge(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Result<GaugeId, RegistryError> {
        let id = self.gauges.len();
        let series = self.admit(name, labels, Kind::Gauge(id))?;
        self.gauges.push((series, 0));
        Ok(GaugeId(id))
    }

    /// Registers a labelless histogram, panicking on collision.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        self.try_histogram(name, &[]).expect("metric registration")
    }

    /// Registers a histogram, reporting collisions as errors.
    pub fn try_histogram(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Result<HistogramId, RegistryError> {
        let id = self.histograms.len();
        let series = self.admit(name, labels, Kind::Histogram(id))?;
        self.histograms.push((series, CycleHistogram::new()));
        Ok(HistogramId(id))
    }

    /// Registers a **sampled** counter: a counter that records only a
    /// deterministic 1-in-`rate` subset of its trials
    /// ([`Registry::sample_inc`] / [`Registry::sample_trials`]), for series
    /// hot enough that counting every event would dominate the path (e.g.
    /// per-access dTLB events). The rate is recorded in the series labels
    /// (`sample_rate="N"`), so every exporter and scraper can un-bias the
    /// value (`value × rate`). Which trials hit is a pure function of
    /// `(seed, series identity, rate)` — same seed, same sampled series —
    /// and the estimate error is bounded: `|value × rate − trials| < rate`.
    /// Panics on collision like the other registration forms; `rate` 0 is
    /// clamped to 1 (sample everything).
    pub fn sampled_counter(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        rate: u64,
        seed: u64,
    ) -> SampledCounterId {
        self.try_sampled_counter(name, labels, rate, seed).expect("metric registration")
    }

    /// Registers a sampled counter, reporting collisions as errors.
    pub fn try_sampled_counter(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        rate: u64,
        seed: u64,
    ) -> Result<SampledCounterId, RegistryError> {
        let rate = rate.max(1);
        let rate_label = rate.to_string();
        let mut all: Vec<(&'static str, &str)> = labels.to_vec();
        all.push(("sample_rate", &rate_label));
        let counter = self.try_counter(name, &all)?;
        // The phase (which residue class of trial indices is kept) is a
        // splitmix-style hash of the seed and the series key, so distinct
        // series sample out of lockstep while staying seed-deterministic.
        let key = self.counters[counter.0].0.key();
        let mut z = seed ^ 0x5A17_F1E0_D000_0001;
        for b in key.bytes() {
            z = (z ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let id = self.samplers.len();
        self.samplers.push(Sampler {
            counter: counter.0,
            rate,
            phase: (z ^ (z >> 31)) % rate,
            trials: 0,
        });
        Ok(SampledCounterId(id))
    }

    /// One sampling trial: increments the underlying counter iff this trial
    /// is in the series' deterministic 1-in-N subset.
    pub fn sample_inc(&mut self, id: SampledCounterId) {
        self.sample_trials(id, 1);
    }

    /// `n` sampling trials at once (the batch form for hot paths that
    /// already count events in bulk). Selection is computed in O(1), so a
    /// million-trial batch costs the same as one.
    pub fn sample_trials(&mut self, id: SampledCounterId, n: u64) {
        let s = &mut self.samplers[id.0];
        let hits = s.selected(s.trials, n);
        s.trials += n;
        self.counters[s.counter].1 += hits;
    }

    /// Trials offered to a sampled counter so far (for tests and for
    /// documenting the estimate error; the exported series carries only the
    /// sampled value).
    pub fn sampler_trials(&self, id: SampledCounterId) -> u64 {
        self.samplers[id.0].trials
    }

    /// A sampled counter's configured rate.
    pub fn sampler_rate(&self, id: SampledCounterId) -> u64 {
        self.samplers[id.0].rate
    }

    /// A sampled counter's recorded (sampled) value; multiply by the rate
    /// for the unbiased estimate.
    pub fn sampler_value(&self, id: SampledCounterId) -> u64 {
        self.counters[self.samplers[id.0].counter].1
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0].1 = v;
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].1.record(v);
    }

    /// Folds a pre-accumulated histogram into a registered series
    /// (bucket-wise, like [`Registry::merge_from`]). Lets a component that
    /// keeps its own inline [`CycleHistogram`] on the hot path publish it
    /// under a series key at export time without replaying observations.
    pub fn merge_histogram(&mut self, id: HistogramId, h: &CycleHistogram) {
        self.histograms[id.0].1.merge_from(h);
    }

    /// A counter's current value, by series key (for tests and exporters).
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.index.get(key)? {
            Kind::Counter(i) => Some(self.counters[*i].1),
            _ => None,
        }
    }

    /// A gauge's current value, by series key.
    pub fn gauge_value(&self, key: &str) -> Option<i64> {
        match self.index.get(key)? {
            Kind::Gauge(i) => Some(self.gauges[*i].1),
            _ => None,
        }
    }

    /// A histogram, by series key.
    pub fn histogram_values(&self, key: &str) -> Option<&CycleHistogram> {
        match self.index.get(key)? {
            Kind::Histogram(i) => Some(&self.histograms[*i].1),
            _ => None,
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All counters, sorted by series key (deterministic export order).
    pub(crate) fn sorted_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            self.counters.iter().map(|(s, n)| (s.key(), *n)).collect();
        v.sort();
        v
    }

    /// All gauges, sorted by series key.
    pub(crate) fn sorted_gauges(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> = self.gauges.iter().map(|(s, n)| (s.key(), *n)).collect();
        v.sort();
        v
    }

    /// All histograms, sorted by series key.
    pub(crate) fn sorted_histograms(&self) -> Vec<(String, &CycleHistogram)> {
        let mut v: Vec<(String, &CycleHistogram)> =
            self.histograms.iter().map(|(s, h)| (s.key(), h)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Merges another shard's registry into this one: counters and gauges
    /// add, histograms merge bucket-wise. Series missing from `self` are
    /// created with `other`'s identity (so shards may register lazily).
    /// Gauges *add* because every per-shard gauge in this workspace is an
    /// occupancy (slots in use, ring depth, VMAs) whose fleet-wide value is
    /// the sum. Sampled counters merge as the plain counters they export to
    /// (same rate ⇒ same `sample_rate` label ⇒ one summed series); sampler
    /// *state* (trial cursors) stays with the recording shard — a merged
    /// export registry is read, never recorded into.
    pub fn merge_from(&mut self, other: &Registry) {
        self.merge_impl(other, None);
    }

    /// [`Registry::merge_from`], with every incoming series disambiguated by
    /// an extra leading label — the fleet-federation merge: engine `i`'s
    /// `sfi_shard_completed_total{core="0"}` lands as
    /// `sfi_shard_completed_total{engine="i",core="0"}`, so N same-schema
    /// member registries coexist in one fleet registry instead of silently
    /// summing. Panics if an incoming series already carries `label` (the
    /// disambiguator must disambiguate, not shadow) or on a kind mismatch —
    /// the same collision-panic contract registration has, preserved across
    /// engines.
    pub fn merge_labeled_from(&mut self, other: &Registry, label: &'static str, value: &str) {
        self.merge_impl(other, Some((label, value)));
    }

    /// A series identity with the disambiguating label prepended.
    fn relabel(series: &Series, label: Option<(&'static str, &str)>) -> Series {
        match label {
            None => series.clone(),
            Some((k, v)) => {
                if series.labels.iter().any(|(lk, _)| *lk == k) {
                    panic!(
                        "merge label {k:?} already present on series {} — \
                         the disambiguator must not shadow an existing label",
                        series.key()
                    );
                }
                let mut labels = Vec::with_capacity(series.labels.len() + 1);
                labels.push((k, v.to_owned()));
                labels.extend(series.labels.iter().cloned());
                Series { name: series.name, labels }
            }
        }
    }

    fn merge_impl(&mut self, other: &Registry, label: Option<(&'static str, &str)>) {
        for (series, n) in &other.counters {
            let series = Self::relabel(series, label);
            let key = series.key();
            match self.index.get(&key) {
                Some(Kind::Counter(i)) => self.counters[*i].1 += n,
                Some(_) => panic!("metric kind mismatch for {key}"),
                None => {
                    let id = self.counters.len();
                    self.index.insert(key, Kind::Counter(id));
                    self.counters.push((series, *n));
                }
            }
        }
        for (series, v) in &other.gauges {
            let series = Self::relabel(series, label);
            let key = series.key();
            match self.index.get(&key) {
                Some(Kind::Gauge(i)) => self.gauges[*i].1 += v,
                Some(_) => panic!("metric kind mismatch for {key}"),
                None => {
                    let id = self.gauges.len();
                    self.index.insert(key, Kind::Gauge(id));
                    self.gauges.push((series, *v));
                }
            }
        }
        for (series, h) in &other.histograms {
            let series = Self::relabel(series, label);
            let key = series.key();
            match self.index.get(&key) {
                Some(Kind::Histogram(i)) => self.histograms[*i].1.merge_from(h),
                Some(_) => panic!("metric kind mismatch for {key}"),
                None => {
                    let id = self.histograms.len();
                    self.index.insert(key, Kind::Histogram(id));
                    self.histograms.push((series, h.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("sfi_test_total");
        let g = r.gauge("sfi_test_depth");
        let h = r.histogram("sfi_test_cycles");
        r.inc(c);
        r.add(c, 9);
        r.set(g, -3);
        r.observe(h, 100);
        assert_eq!(r.counter_value("sfi_test_total"), Some(10));
        assert_eq!(r.gauge_value("sfi_test_depth"), Some(-3));
        assert_eq!(r.histogram_values("sfi_test_cycles").unwrap().count(), 1);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn collisions_are_startup_errors() {
        let mut r = Registry::new();
        r.counter("sfi_dup_total");
        let err = r.try_counter("sfi_dup_total", &[]).unwrap_err();
        assert!(matches!(err, RegistryError::Collision(_)), "{err}");
        // Cross-kind collisions count too: one namespace.
        assert!(r.try_gauge("sfi_dup_total", &[]).is_err());
        // Same name with different labels is a different series.
        assert!(r.try_counter("sfi_dup_total", &[("kind", "a")]).is_ok());
        assert!(r.try_counter("sfi_dup_total", &[("kind", "b")]).is_ok());
        assert!(r.try_counter("sfi_dup_total", &[("kind", "a")]).is_err());
    }

    #[test]
    fn names_are_validated() {
        let mut r = Registry::new();
        assert!(matches!(r.try_counter("9bad", &[]), Err(RegistryError::BadName(_))));
        assert!(matches!(r.try_counter("has space", &[]), Err(RegistryError::BadName(_))));
        assert!(r.try_counter("_ok_123", &[]).is_ok());
    }

    #[test]
    fn label_values_escape() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("line\nbreak"), r"line\nbreak");
        let mut r = Registry::new();
        let c = r.counter_with("sfi_esc_total", &[("path", "a\"b\\c\nd")]);
        r.inc(c);
        let key = r.sorted_counters()[0].0.clone();
        assert_eq!(key, "sfi_esc_total{path=\"a\\\"b\\\\c\\nd\"}");
        assert_eq!(r.counter_value(&key), Some(1));
    }

    #[test]
    fn sampled_counters_are_deterministic_and_bounded() {
        let run = |seed: u64, trials: u64| {
            let mut r = Registry::new();
            let s = r.sampled_counter("sfi_sampled_total", &[("kind", "dtlb")], 16, seed);
            for _ in 0..trials {
                r.sample_inc(s);
            }
            (r.sampler_value(s), r)
        };
        let (a, ra) = run(7, 1000);
        let (b, _) = run(7, 1000);
        assert_eq!(a, b, "same seed + rate ⇒ identical sampled series");
        // 1-in-16 of 1000 trials: exactly 62 or 63 depending on phase.
        assert!(a == 62 || a == 63, "{a}");
        assert!((a * 16).abs_diff(1000) < 16, "documented error bound |v×N − trials| < N");
        // The rate is recorded in the series labels.
        assert_eq!(
            ra.counter_value("sfi_sampled_total{kind=\"dtlb\",sample_rate=\"16\"}"),
            Some(a)
        );
        // A different seed may select a different phase but obeys the bound.
        let (c, _) = run(8, 1000);
        assert!((c * 16).abs_diff(1000) < 16);
    }

    #[test]
    fn sampled_batch_equals_per_trial() {
        let mut one = Registry::new();
        let s1 = one.sampled_counter("sfi_batch_total", &[], 7, 3);
        for _ in 0..500 {
            one.sample_inc(s1);
        }
        let mut batch = Registry::new();
        let s2 = batch.sampled_counter("sfi_batch_total", &[], 7, 3);
        batch.sample_trials(s2, 123);
        batch.sample_trials(s2, 0);
        batch.sample_trials(s2, 377);
        assert_eq!(one.sampler_value(s1), batch.sampler_value(s2), "batching must not change selection");
        assert_eq!(batch.sampler_trials(s2), 500);
        assert_eq!(batch.sampler_rate(s2), 7);
        // Rate 0 clamps to 1: every trial counts.
        let mut all = Registry::new();
        let s = all.sampled_counter("sfi_all_total", &[], 0, 0);
        all.sample_trials(s, 9);
        assert_eq!(all.sampler_value(s), 9);
    }

    #[test]
    fn per_shard_merge_sums() {
        let build = |n: u64| {
            let mut r = Registry::new();
            let c = r.counter("sfi_shard_total");
            let g = r.gauge("sfi_shard_depth");
            let h = r.histogram("sfi_shard_cycles");
            r.add(c, n);
            r.set(g, n as i64);
            r.observe(h, n);
            r
        };
        let mut a = build(3);
        let b = build(5);
        a.merge_from(&b);
        assert_eq!(a.counter_value("sfi_shard_total"), Some(8));
        assert_eq!(a.gauge_value("sfi_shard_depth"), Some(8));
        let h = a.histogram_values("sfi_shard_cycles").unwrap();
        assert_eq!((h.count(), h.sum()), (2, 8));

        // Series unknown to the target are created, not dropped.
        let mut extra = Registry::new();
        let c = extra.counter("sfi_only_here_total");
        extra.add(c, 7);
        a.merge_from(&extra);
        assert_eq!(a.counter_value("sfi_only_here_total"), Some(7));
    }

    #[test]
    fn labeled_merge_disambiguates_same_schema_members() {
        let member = |n: u64| {
            let mut r = Registry::new();
            let c = r.counter_with("sfi_shard_completed_total", &[("core", "0")]);
            let g = r.gauge("sfi_pool_slots_in_use");
            let h = r.histogram("sfi_shard_request_latency_ns");
            r.add(c, n);
            r.set(g, n as i64);
            r.observe(h, n);
            r
        };
        let mut fleet = Registry::new();
        fleet.merge_labeled_from(&member(3), "engine", "0");
        fleet.merge_labeled_from(&member(5), "engine", "1");
        // Same schema, two engines: distinct series, no silent summing; the
        // disambiguator leads the label list.
        assert_eq!(
            fleet.counter_value("sfi_shard_completed_total{engine=\"0\",core=\"0\"}"),
            Some(3)
        );
        assert_eq!(
            fleet.counter_value("sfi_shard_completed_total{engine=\"1\",core=\"0\"}"),
            Some(5)
        );
        assert_eq!(fleet.gauge_value("sfi_pool_slots_in_use{engine=\"1\"}"), Some(5));
        let h = fleet.histogram_values("sfi_shard_request_latency_ns{engine=\"0\"}").unwrap();
        assert_eq!(h.count(), 1);
        // Re-merging the same engine id sums into the labeled series (the
        // cumulative-rounds path a live fleet aggregator uses).
        fleet.merge_labeled_from(&member(4), "engine", "0");
        assert_eq!(
            fleet.counter_value("sfi_shard_completed_total{engine=\"0\",core=\"0\"}"),
            Some(7)
        );
    }

    #[test]
    #[should_panic(expected = "must not shadow")]
    fn labeled_merge_rejects_shadowed_disambiguator() {
        let mut member = Registry::new();
        member.counter_with("sfi_x_total", &[("engine", "9")]);
        let mut fleet = Registry::new();
        fleet.merge_labeled_from(&member, "engine", "0");
    }

    #[test]
    #[should_panic(expected = "metric kind mismatch")]
    fn labeled_merge_preserves_kind_collision_panic() {
        let mut a = Registry::new();
        a.counter_with("sfi_clash", &[("engine", "0")]);
        let mut b = Registry::new();
        b.gauge("sfi_clash");
        a.merge_labeled_from(&b, "engine", "0");
    }
}
