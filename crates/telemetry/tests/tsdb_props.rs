//! Property tests for the tsdb's rule-evaluation guard rails (DESIGN.md
//! §15): counter resets and `u64`-boundary values must never produce a
//! negative `rate()`/`increase()` or overflow the window math, and
//! registry merge order must not change what the store computes.

use proptest::prelude::*;
use sfi_telemetry::{Registry, Selector, Tsdb};

/// Counter readings spanning the whole `u64` range, with a bias toward the
/// boundary neighbourhoods where overflow bugs live; consecutive draws are
/// unordered, so the sequence is full of implied resets.
fn reading() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..1_000,
        (u64::MAX - 1_000)..=u64::MAX,
        any::<u64>(),
    ]
}

proptest! {
    #[test]
    fn rate_is_never_negative_under_resets_and_boundaries(
        samples in prop::collection::vec(reading(), 1..40),
        window in -8i64..60,
    ) {
        let mut t = Tsdb::new(16, 8);
        for (i, v) in samples.iter().enumerate() {
            t.store_counter("c_total", i as u64 + 1, *v);
        }
        let sel = Selector::parse("c_total").unwrap();
        // Direct-call windows clamp (0/negative → 1) exactly like parsed ones.
        let w = if window < 1 { 1u64 } else { window as u64 };
        for rows in [t.increase(&sel, w), t.rate(&sel, w), t.increase(&sel, window.unsigned_abs())] {
            for (key, v) in rows {
                prop_assert!(v.is_finite(), "{key}: non-finite {v}");
                prop_assert!(v >= 0.0, "{key}: negative {v}");
                // Even an all-boundary window stays under the i128-exact
                // ceiling: window-many full-range deltas.
                prop_assert!(v <= u64::MAX as f64 * samples.len() as f64, "{key}: {v}");
            }
        }
        // The textual grammar clamps the same way the direct calls do.
        let via_query = t.query(&format!("increase(c_total[{window}r])")).unwrap();
        prop_assert_eq!(via_query, t.increase(&sel, w));
    }

    #[test]
    fn merge_order_does_not_change_window_math(
        a in prop::collection::vec(0u64..1_000_000, 1..12),
        b in prop::collection::vec(0u64..1_000_000, 1..12),
    ) {
        // Two shards with the same schema, merged in both orders into
        // fresh export registries each round: the merged counter is the
        // sum either way, so the tsdb must compute identical (and
        // non-negative) increases.
        let shard = |vals: &[u64], upto: usize| {
            let mut r = Registry::new();
            let c = r.counter("sfi_m_total");
            r.add(c, vals.iter().take(upto).sum());
            r
        };
        let mut ab = Tsdb::new(8, 8);
        let mut ba = Tsdb::new(8, 8);
        let rounds = a.len().max(b.len());
        for round in 1..=rounds {
            let (ra, rb) = (shard(&a, round), shard(&b, round));
            let mut m1 = Registry::new();
            m1.merge_from(&ra);
            m1.merge_from(&rb);
            let mut m2 = Registry::new();
            m2.merge_from(&rb);
            m2.merge_from(&ra);
            ab.ingest(round as u64, &m1);
            ba.ingest(round as u64, &m2);
        }
        for w in [1u64, 3, 8] {
            let sel = Selector::parse("sfi_m_total").unwrap();
            let (x, y) = (ab.increase(&sel, w), ba.increase(&sel, w));
            prop_assert_eq!(&x, &y, "window {}", w);
            prop_assert!(x[0].1 >= 0.0);
        }
    }
}
