//! Property-based tests of the encoder and the emulator's ALU semantics.

use proptest::prelude::*;
use sfi_x86::emu::{FlatMemory, Machine};
use sfi_x86::inst::{AluOp, ShiftAmount, ShiftOp};
use sfi_x86::{encode, Gpr, Inst, Mem, Program, Scale, Seg, Width};

fn gpr_strategy() -> impl Strategy<Value = Gpr> {
    (0usize..16).prop_map(Gpr::from_index)
}

fn nonsp_gpr() -> impl Strategy<Value = Gpr> {
    gpr_strategy().prop_filter("rsp is the stack", |g| *g != Gpr::Rsp)
}

fn mem_strategy() -> impl Strategy<Value = Mem> {
    (
        proptest::option::of(nonsp_gpr()),
        proptest::option::of((nonsp_gpr(), 0u8..4)),
        any::<i32>(),
        proptest::option::of(prop_oneof![Just(Seg::Fs), Just(Seg::Gs)]),
        any::<bool>(),
    )
        .prop_map(|(base, index, disp, seg, addr32)| Mem {
            base,
            index: index.map(|(r, s)| {
                (r, [Scale::S1, Scale::S2, Scale::S4, Scale::S8][s as usize])
            }),
            disp,
            seg,
            addr32,
        })
}

fn encodable_inst() -> impl Strategy<Value = Inst> {
    let width = prop_oneof![Just(Width::B), Just(Width::W), Just(Width::D), Just(Width::Q)];
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Cmp)
    ];
    prop_oneof![
        (gpr_strategy(), gpr_strategy(), width.clone())
            .prop_map(|(dst, src, width)| Inst::MovRR { dst, src, width }),
        (gpr_strategy(), any::<i64>(), width.clone())
            .prop_map(|(dst, imm, width)| Inst::MovRI { dst, imm, width }),
        (gpr_strategy(), mem_strategy(), width.clone())
            .prop_map(|(dst, mem, width)| Inst::Load { dst, mem, width }),
        (gpr_strategy(), mem_strategy(), width.clone())
            .prop_map(|(src, mem, width)| Inst::Store { src, mem, width }),
        (gpr_strategy(), mem_strategy(), width.clone())
            .prop_map(|(dst, mem, width)| Inst::Lea { dst, mem, width }),
        (alu.clone(), gpr_strategy(), gpr_strategy(), width.clone())
            .prop_map(|(op, dst, src, width)| Inst::AluRR { op, dst, src, width }),
        (alu, gpr_strategy(), any::<i32>(), width.clone())
            .prop_map(|(op, dst, imm, width)| Inst::AluRI { op, dst, imm, width }),
        (gpr_strategy(), width.clone()).prop_map(|(dst, width)| Inst::Neg { dst, width }),
        (gpr_strategy(), 0u8..64, width)
            .prop_map(|(dst, k, width)| Inst::Shift {
                op: ShiftOp::Shl,
                dst,
                amount: ShiftAmount::Imm(k),
                width
            }),
        (gpr_strategy()).prop_map(|r| Inst::Push { reg: r }),
        (gpr_strategy()).prop_map(|r| Inst::Pop { reg: r }),
        Just(Inst::Ret),
        Just(Inst::Nop),
        Just(Inst::WrPkru),
    ]
}

proptest! {
    #[test]
    fn every_instruction_encodes_to_a_valid_length(inst in encodable_inst()) {
        let bytes = encode::encode_inst(&inst).expect("encodable subset");
        // x86-64 instructions are 1..=15 bytes.
        prop_assert!((1..=15).contains(&bytes.len()), "{inst}: {bytes:02x?}");
    }

    #[test]
    fn program_offsets_are_consistent(insts in proptest::collection::vec(encodable_inst(), 1..40)) {
        let mut p = Program::new();
        for i in &insts {
            p.push(*i);
        }
        let enc = encode::encode_program(&p).expect("encodes");
        prop_assert_eq!(enc.offsets.len(), insts.len() + 1);
        let mut total = 0usize;
        for (i, inst) in insts.iter().enumerate() {
            prop_assert_eq!(enc.offsets[i] as usize, total);
            let l = enc.inst_len(i);
            prop_assert!((1..=15).contains(&l));
            // Standalone encoding must agree with in-program length for
            // non-branch instructions.
            let solo = encode::encode_inst(inst).expect("encodable");
            prop_assert_eq!(l, solo.len(), "inst {}: {}", i, inst);
            total += l;
        }
        prop_assert_eq!(total, enc.len());
    }

    #[test]
    fn alu_semantics_match_rust(
        a in any::<u64>(),
        b in any::<u64>(),
        op_sel in 0u8..5,
        wide in any::<bool>(),
    ) {
        let width = if wide { Width::Q } else { Width::D };
        let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor][op_sel as usize];
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: a as i64, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rcx, imm: b as i64, width: Width::Q });
        p.push(Inst::AluRR { op, dst: Gpr::Rbx, src: Gpr::Rcx, width });
        p.push(Inst::Ret);
        let mut m = Machine::new();
        let mut mem = FlatMemory::new(64);
        m.run(&p, &mut mem).expect("runs");
        let (wa, wb) = (width.mask(a), width.mask(b));
        let expect = width.mask(match op {
            AluOp::Add => wa.wrapping_add(wb),
            AluOp::Sub => wa.wrapping_sub(wb),
            AluOp::And => wa & wb,
            AluOp::Or => wa | wb,
            AluOp::Xor => wa ^ wb,
            AluOp::Cmp => unreachable!(),
        });
        let got = m.gpr(Gpr::Rbx);
        prop_assert_eq!(width.mask(got), expect);
        if width == Width::D {
            prop_assert_eq!(got >> 32, 0, "32-bit writes must zero-extend");
        }
    }

    #[test]
    fn unsigned_compare_flags_match_rust(a in any::<u64>(), b in any::<u64>()) {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: a as i64, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rcx, imm: b as i64, width: Width::Q });
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::Rbx, src: Gpr::Rcx, width: Width::Q });
        p.push(Inst::Setcc { cond: sfi_x86::Cond::B, dst: Gpr::Rdx });
        p.push(Inst::Setcc { cond: sfi_x86::Cond::E, dst: Gpr::Rsi });
        p.push(Inst::Setcc { cond: sfi_x86::Cond::L, dst: Gpr::Rdi });
        p.push(Inst::Ret);
        let mut m = Machine::new();
        let mut mem = FlatMemory::new(64);
        m.run(&p, &mut mem).expect("runs");
        prop_assert_eq!(m.gpr(Gpr::Rdx) != 0, a < b, "unsigned below");
        prop_assert_eq!(m.gpr(Gpr::Rsi) != 0, a == b, "equal");
        prop_assert_eq!(m.gpr(Gpr::Rdi) != 0, (a as i64) < (b as i64), "signed less");
    }

    #[test]
    fn effective_address_matches_manual_computation(
        mem in mem_strategy(),
        rv in any::<u64>(),
        gs in any::<u32>(),
    ) {
        let gpr = |_: Gpr| rv;
        let seg = |_: Seg| u64::from(gs);
        let ea = mem.effective_addr(gpr, seg);
        let mut manual = (mem.disp as i64 as u64)
            .wrapping_add(mem.base.map_or(0, |_| rv))
            .wrapping_add(mem.index.map_or(0, |(_, s)| rv.wrapping_mul(s.factor())));
        if mem.addr32 {
            manual &= 0xFFFF_FFFF;
        }
        if mem.seg.is_some() {
            manual = manual.wrapping_add(u64::from(gs));
        }
        prop_assert_eq!(ea, manual);
    }
}
