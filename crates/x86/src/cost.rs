//! The cycle cost model.
//!
//! The model is a deliberately simple, fully documented approximation of a
//! modern out-of-order x86 core, tuned so that the *relative* effects the
//! paper measures fall out of first principles:
//!
//! - **Throughput**: each instruction costs
//!   `max(uops / issue_width, bytes / fetch_bytes_per_cycle)` cycles, so both
//!   µop count (Segue halves it for memory ops) and code bytes (Segue's
//!   prefixes lengthen individual instructions) matter.
//! - **Serial latencies**: multiplies, divides, and system instructions
//!   (`wrpkru` ≈ 40+ cycles, `wrgsbase`) add fixed serial costs.
//! - **Memory hierarchy**: L1I/L1D misses (simulated precisely by
//!   [`crate::cache::Cache`]) add per-miss penalties.
//! - **Prefix decode penalty**: instructions carrying the address-size
//!   override pay a small decode tax, modelling length-changing-prefix
//!   stalls. This is the mechanism behind the paper's 473_astar outlier,
//!   where Segue is slightly *slower*.
//! - **Branches**: a 2-bit dynamic predictor per branch site; mispredictions
//!   pay a pipeline-flush penalty.
//!
//! All parameters are public so ablation benchmarks can vary them.

use crate::inst::ShiftAmount;
use crate::{Inst, Width};

/// Tunable cost parameters (cycles unless noted).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Sustained µops per cycle (issue width).
    pub issue_width: f64,
    /// Sustained instruction-fetch bandwidth, bytes per cycle.
    pub fetch_bytes_per_cycle: f64,
    /// Cycles of exposed load latency charged per data load (dependence
    /// chains hide most but not all of L1 latency).
    pub load_cycles: f64,
    /// Extra serial cycles for an integer multiply.
    pub mul_cycles: f64,
    /// Extra serial cycles for an integer divide.
    pub div_cycles: f64,
    /// Penalty per L1I miss.
    pub icache_miss_cycles: f64,
    /// Penalty per L1D miss.
    pub dcache_miss_cycles: f64,
    /// Penalty per branch misprediction.
    pub branch_miss_cycles: f64,
    /// Extra cycles for a *taken* branch (front-end redirect).
    pub taken_branch_cycles: f64,
    /// Decode tax per instruction bearing an address-size override prefix
    /// (models length-changing-prefix pre-decode stalls).
    pub addr32_decode_cycles: f64,
    /// Serial cost of `wrpkru` (the paper measures ≈ 40–44 cycles, §6.4.1).
    pub wrpkru_cycles: f64,
    /// Serial cost of `rdpkru`.
    pub rdpkru_cycles: f64,
    /// Serial cost of `wrgsbase`/`wrfsbase` (FSGSBASE user instructions).
    pub wrgsbase_cycles: f64,
    /// Serial cost of the host-call trampoline (`Inst::CallHost`), excluding
    /// whatever the host itself does.
    pub call_host_cycles: f64,
    /// Serial cost of `lfence`: the pipeline drains before later µops issue,
    /// so every fence pays roughly a ROB-refill's worth of cycles. This is
    /// why the `Lfence` mitigation level is the costliest on branchy code.
    pub lfence_cycles: f64,
    /// Core frequency in GHz, used only to convert cycles to nanoseconds.
    /// The paper pins benchmarks at 2.2 GHz; so do we.
    pub freq_ghz: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            issue_width: 2.1,
            fetch_bytes_per_cycle: 28.0,
            load_cycles: 0.55,
            mul_cycles: 2.0,
            div_cycles: 18.0,
            icache_miss_cycles: 14.0,
            dcache_miss_cycles: 12.0,
            branch_miss_cycles: 14.0,
            taken_branch_cycles: 0.5,
            addr32_decode_cycles: 0.18,
            wrpkru_cycles: 44.0,
            rdpkru_cycles: 6.0,
            wrgsbase_cycles: 12.0,
            call_host_cycles: 12.0,
            lfence_cycles: 9.0,
            freq_ghz: 2.2,
        }
    }
}

impl CostModel {
    /// µop count of an instruction in this model.
    pub fn uops(&self, inst: &Inst) -> f64 {
        match inst {
            Inst::Nop => 0.25,
            Inst::AluRM { .. } => 2.0,
            Inst::StoreImm { .. } | Inst::Store { .. } => 1.0,
            Inst::Push { .. } | Inst::Pop { .. } => 1.0,
            Inst::Call { .. } | Inst::CallReg { .. } | Inst::Ret => 2.0,
            Inst::CallHost { .. } => 2.0,
            Inst::Div { .. } => 10.0,
            Inst::MovdquLoad { .. } | Inst::MovdquStore { .. } => 1.0,
            Inst::WrPkru | Inst::RdPkru => 3.0,
            Inst::WrGsBase { .. } | Inst::RdGsBase { .. } | Inst::WrFsBase { .. } => 2.0,
            _ => 1.0,
        }
    }

    /// Serial (non-pipelined) extra cycles for an instruction.
    pub fn serial_cycles(&self, inst: &Inst) -> f64 {
        match inst {
            Inst::Imul { .. } | Inst::ImulRRI { .. } => self.mul_cycles,
            Inst::Div { width, .. } => {
                if *width == Width::Q {
                    self.div_cycles * 1.6
                } else {
                    self.div_cycles
                }
            }
            Inst::Shift { amount: ShiftAmount::Cl, .. } => 0.5,
            Inst::WrPkru => self.wrpkru_cycles,
            Inst::RdPkru => self.rdpkru_cycles,
            Inst::WrGsBase { .. } | Inst::WrFsBase { .. } => self.wrgsbase_cycles,
            Inst::RdGsBase { .. } => 2.0,
            Inst::CallHost { .. } => self.call_host_cycles,
            Inst::Lfence => self.lfence_cycles,
            _ => 0.0,
        }
    }

    /// The throughput cost of one instruction occupying `bytes` of fetch.
    #[inline]
    pub fn throughput_cycles(&self, inst: &Inst, bytes: usize) -> f64 {
        let back = self.uops(inst) / self.issue_width;
        let front = bytes as f64 / self.fetch_bytes_per_cycle;
        let mut c = back.max(front);
        if inst.mem().is_some_and(|m| m.addr32) {
            c += self.addr32_decode_cycles;
        }
        c
    }

    /// Converts a cycle count to nanoseconds at the model frequency.
    #[inline]
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.freq_ghz
    }
}

/// Execution counters produced by a [`crate::emu::Machine`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Retired instructions.
    pub insts: u64,
    /// Modeled cycles.
    pub cycles: f64,
    /// Data loads executed.
    pub loads: u64,
    /// Data stores executed.
    pub stores: u64,
    /// L1I misses.
    pub icache_misses: u64,
    /// L1D misses.
    pub dcache_misses: u64,
    /// Conditional/indirect branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// Host calls executed.
    pub host_calls: u64,
    /// Code bytes fetched (sum of executed instruction lengths).
    pub code_bytes_fetched: u64,
    /// Cycles attributed to each [`crate::Provenance`] class, indexed by
    /// [`crate::Provenance::index`]. Per-instruction throughput, latency,
    /// serialization, and host-call cycles land in the bucket of the
    /// instruction that paid them; microarchitectural penalties are broken
    /// out into the three `*_penalty_cycles` fields below.
    pub prov_cycles: [f64; crate::Provenance::COUNT],
    /// Cycles lost to L1I misses (the front-end stall bucket).
    pub icache_penalty_cycles: f64,
    /// Cycles lost to L1D misses. The emulator's data-side penalty model is
    /// the cache/dTLB surface: fig7's dTLB pressure shows up here.
    pub dcache_penalty_cycles: f64,
    /// Cycles lost to branch mispredictions.
    pub branch_penalty_cycles: f64,
    /// Speculation windows opened (one per modeled mispredict rollback when
    /// a [`crate::emu::SpecConfig`] is installed; always 0 otherwise).
    pub spec_flushes: u64,
    /// Wrong-path µops transiently executed across all windows. These µops
    /// are *not* charged cycles (their latency hides under the mispredict
    /// penalty already attributed), so the exact-sum invariant
    /// `attributed_cycles() == cycles` is untouched by speculation; their
    /// cache/TLB side effects do persist.
    pub spec_uops: u64,
    /// Speculative leak events: a transient memory access whose address was
    /// derived from secret-region data (the taint rule DESIGN.md §16
    /// documents). Nonzero means the compiled artifact is Spectre-unsafe
    /// under this strategy/mitigation combination.
    pub spec_leaks: u64,
}

impl RunStats {
    /// Modeled wall time in nanoseconds under `model`.
    pub fn ns(&self, model: &CostModel) -> f64 {
        model.cycles_to_ns(self.cycles)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.insts as f64 / self.cycles
        }
    }

    /// Sum of all attribution buckets: the per-provenance buckets plus
    /// the three penalty buckets, added in a fixed order.
    ///
    /// The emulator finalizes `cycles` *from* this sum at every successful
    /// return, so for stats produced by a run the invariant
    /// `attributed_cycles() == cycles` holds exactly (bit-for-bit), not
    /// merely to within rounding. Synthetic stats built by hand may leave
    /// the buckets empty.
    pub fn attributed_cycles(&self) -> f64 {
        let mut total = 0.0;
        for b in self.prov_cycles {
            total += b;
        }
        total + self.icache_penalty_cycles + self.dcache_penalty_cycles + self.branch_penalty_cycles
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &RunStats) {
        self.insts += other.insts;
        self.cycles += other.cycles;
        self.loads += other.loads;
        self.stores += other.stores;
        self.icache_misses += other.icache_misses;
        self.dcache_misses += other.dcache_misses;
        self.branches += other.branches;
        self.branch_misses += other.branch_misses;
        self.host_calls += other.host_calls;
        self.code_bytes_fetched += other.code_bytes_fetched;
        for (dst, src) in self.prov_cycles.iter_mut().zip(other.prov_cycles) {
            *dst += src;
        }
        self.icache_penalty_cycles += other.icache_penalty_cycles;
        self.dcache_penalty_cycles += other.dcache_penalty_cycles;
        self.branch_penalty_cycles += other.branch_penalty_cycles;
        self.spec_flushes += other.spec_flushes;
        self.spec_uops += other.spec_uops;
        self.spec_leaks += other.spec_leaks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gpr, Mem, Seg};

    #[test]
    fn defaults_are_sane() {
        let m = CostModel::default();
        assert!(m.issue_width >= 1.0);
        assert!(m.wrpkru_cycles > m.wrgsbase_cycles, "PKRU writes are the expensive ones");
    }

    #[test]
    fn throughput_accounts_for_fetch() {
        let m = CostModel::default();
        let short = Inst::Nop;
        // A 10-byte instruction is fetch-bound at 16 B/cycle.
        let long = Inst::MovRI { dst: Gpr::Rax, imm: i64::MAX, width: Width::Q };
        assert!(m.throughput_cycles(&long, 10) > m.throughput_cycles(&short, 1));
    }

    #[test]
    fn addr32_prefix_costs_extra() {
        let m = CostModel::default();
        let plain = Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::Rbx), width: Width::Q };
        let segue = Inst::Load {
            dst: Gpr::Rax,
            mem: Mem::base(Gpr::Rbx).with_seg(Seg::Gs).with_addr32(),
            width: Width::Q,
        };
        // Same byte count assumed; the prefixed form still costs more.
        assert!(m.throughput_cycles(&segue, 4) > m.throughput_cycles(&plain, 4));
    }

    #[test]
    fn cycles_to_ns_uses_pinned_frequency() {
        let m = CostModel::default();
        assert!((m.cycles_to_ns(2.2e9) - 1e9).abs() < 1.0);
    }

    #[test]
    fn stats_merge() {
        let mut a = RunStats { insts: 10, cycles: 5.0, ..Default::default() };
        let b = RunStats { insts: 6, cycles: 3.0, loads: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.insts, 16);
        assert_eq!(a.loads, 2);
        assert!((a.ipc() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_zero_cycles_is_zero_not_nan() {
        let empty = RunStats::default();
        assert_eq!(empty.ipc(), 0.0);
        let insts_only = RunStats { insts: 42, ..Default::default() };
        assert_eq!(insts_only.ipc(), 0.0, "zero cycles must not divide");
    }

    #[test]
    fn attribution_buckets_merge_and_sum() {
        use crate::Provenance;
        let mut a = RunStats::default();
        a.prov_cycles[Provenance::GuestCompute.index()] = 10.0;
        a.icache_penalty_cycles = 2.0;
        let mut b = RunStats::default();
        b.prov_cycles[Provenance::BoundsGuard.index()] = 5.0;
        b.dcache_penalty_cycles = 1.0;
        b.branch_penalty_cycles = 0.5;
        a.merge(&b);
        assert_eq!(a.prov_cycles[Provenance::GuestCompute.index()], 10.0);
        assert_eq!(a.prov_cycles[Provenance::BoundsGuard.index()], 5.0);
        assert_eq!(a.attributed_cycles(), 18.5);
    }
}
