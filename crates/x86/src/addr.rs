//! Memory operands (x86-64 addressing modes).

use crate::{Gpr, Seg};

/// An index-register scale factor (the `*1`, `*2`, `*4`, `*8` in
/// `[base + index*scale + disp]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// ×1
    #[default]
    S1,
    /// ×2
    S2,
    /// ×4
    S4,
    /// ×8
    S8,
}

impl Scale {
    /// The multiplication factor as an integer.
    #[inline]
    pub const fn factor(self) -> u64 {
        match self {
            Scale::S1 => 1,
            Scale::S2 => 2,
            Scale::S4 => 4,
            Scale::S8 => 8,
        }
    }

    /// The 2-bit SIB encoding of this scale.
    #[inline]
    pub const fn sib_bits(self) -> u8 {
        match self {
            Scale::S1 => 0,
            Scale::S2 => 1,
            Scale::S4 => 2,
            Scale::S8 => 3,
        }
    }

    /// Creates a scale from a factor of 1, 2, 4 or 8; `None` otherwise.
    pub const fn from_factor(f: u64) -> Option<Scale> {
        match f {
            1 => Some(Scale::S1),
            2 => Some(Scale::S2),
            4 => Some(Scale::S4),
            8 => Some(Scale::S8),
            _ => None,
        }
    }
}

/// A memory operand: `seg:[base + index*scale + disp]`.
///
/// Two fields carry the architectural machinery Segue depends on:
///
/// - [`Mem::seg`]: a segment override. When set to [`Seg::Gs`], the segment
///   base (the sandbox's linear-memory base under Segue) is added to the
///   effective address *by the hardware*, costing one prefix byte instead of
///   one extra instruction and one register.
/// - [`Mem::addr32`]: the address-size override (`0x67` prefix). When set,
///   the effective address `base + index*scale + disp` is computed **modulo
///   2³²** and zero-extended — exactly Wasm's 32-bit index arithmetic, for
///   free. (The segment base is added *after* truncation, so the result
///   still lands inside the sandbox's 4 GiB + guard window.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Gpr>,
    /// Optional scaled index register.
    pub index: Option<(Gpr, Scale)>,
    /// Displacement, sign-extended at address-generation time.
    pub disp: i32,
    /// Optional segment override (`fs`/`gs`).
    pub seg: Option<Seg>,
    /// Address-size override: compute the effective address modulo 2³².
    pub addr32: bool,
}

impl Mem {
    /// `[base]`
    pub const fn base(base: Gpr) -> Mem {
        Mem { base: Some(base), index: None, disp: 0, seg: None, addr32: false }
    }

    /// `[base + disp]`
    pub const fn base_disp(base: Gpr, disp: i32) -> Mem {
        Mem { base: Some(base), index: None, disp, seg: None, addr32: false }
    }

    /// `[base + index*scale + disp]`
    pub const fn bisd(base: Gpr, index: Gpr, scale: Scale, disp: i32) -> Mem {
        Mem { base: Some(base), index: Some((index, scale)), disp, seg: None, addr32: false }
    }

    /// `[index*scale + disp]` (no base register).
    pub const fn isd(index: Gpr, scale: Scale, disp: i32) -> Mem {
        Mem { base: None, index: Some((index, scale)), disp, seg: None, addr32: false }
    }

    /// `[disp]` — absolute address, mainly useful in tests.
    pub const fn abs(disp: i32) -> Mem {
        Mem { base: None, index: None, disp, seg: None, addr32: false }
    }

    /// Adds a segment override, returning the modified operand.
    #[must_use]
    pub const fn with_seg(mut self, seg: Seg) -> Mem {
        self.seg = Some(seg);
        self
    }

    /// Adds the address-size override (32-bit effective-address arithmetic),
    /// returning the modified operand.
    #[must_use]
    pub const fn with_addr32(mut self) -> Mem {
        self.addr32 = true;
        self
    }

    /// The registers read when computing this operand's effective address.
    pub fn regs_read(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }

    /// Folds a compile-time-known value of the *base* register into the
    /// displacement, freeing the register: `seg:[base + index*s + d]` with
    /// `base == value` becomes `seg:[index*s + (value + d)]`.
    ///
    /// Returns `None` when the fold is not encodable or not
    /// address-preserving — the combined displacement must fit the signed
    /// 32-bit displacement field. Within that range the fold is exact for
    /// both address sizes: the 64-bit effective address sees the same sum
    /// (a disp32 is sign-extended, and `value + disp` fits i32 by the
    /// check), and under [`Mem::addr32`] both forms truncate that same sum.
    #[must_use]
    pub fn fold_constant_base(self, value: u32) -> Option<Mem> {
        self.base?;
        let disp = i32::try_from(i64::from(value) + i64::from(self.disp)).ok()?;
        Some(Mem { base: None, disp, ..self })
    }

    /// Substitutes the address expression `inner` for this operand's base
    /// register: if `t = lea inner` then `seg:[t + index*s + d]` becomes
    /// `seg:[inner.base + inner.index + index*s + (inner.disp + d)]`.
    ///
    /// Returns `None` whenever the combination exceeds what one x86 operand
    /// encodes — more than one index register, a displacement outside the
    /// signed 32-bit field, or a segment override on `inner` (segment
    /// prefixes apply to the whole operand, not a sub-expression).
    ///
    /// This is *purely* the encoding-legality check. It does not decide
    /// semantic legality: callers substituting a 32-bit (`lea r32`) result
    /// must also set [`Mem::addr32`] so the wrap the `lea` performed still
    /// happens, and must prove the displacement does not cross the wrap
    /// boundary (see `sfi-core`'s fusion pass).
    #[must_use]
    pub fn substitute_base(self, inner: Mem) -> Option<Mem> {
        self.base?;
        if self.index.is_some() && inner.index.is_some() {
            return None; // one SIB index slot
        }
        if inner.seg.is_some() {
            return None;
        }
        let disp = self.disp.checked_add(inner.disp)?;
        Some(Mem { base: inner.base, index: self.index.or(inner.index), disp, ..self })
    }

    /// Computes the effective address given a register file and segment bases.
    ///
    /// This is the architecturally faithful computation: the linear sum is
    /// truncated to 32 bits first when [`Mem::addr32`] is set, and the
    /// segment base is added afterwards.
    pub fn effective_addr(
        &self,
        gpr: impl Fn(Gpr) -> u64,
        seg_base: impl Fn(Seg) -> u64,
    ) -> u64 {
        let mut ea = self.disp as i64 as u64;
        if let Some(b) = self.base {
            ea = ea.wrapping_add(gpr(b));
        }
        if let Some((i, s)) = self.index {
            ea = ea.wrapping_add(gpr(i).wrapping_mul(s.factor()));
        }
        if self.addr32 {
            ea &= 0xFFFF_FFFF;
        }
        if let Some(seg) = self.seg {
            ea = ea.wrapping_add(seg_base(seg));
        }
        ea
    }
}

impl core::fmt::Display for Mem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(seg) = self.seg {
            write!(f, "{seg}:")?;
        }
        f.write_str("[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            if self.addr32 {
                write!(f, "{}", b.name32())?;
            } else {
                write!(f, "{b}")?;
            }
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                f.write_str(" + ")?;
            }
            if self.addr32 {
                write!(f, "{}", i.name32())?;
            } else {
                write!(f, "{i}")?;
            }
            if s != Scale::S1 {
                write!(f, "*{}", s.factor())?;
            }
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, " - {:#x}", -(self.disp as i64))?;
                } else {
                    write!(f, " + {:#x}", self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs(vals: &[(Gpr, u64)]) -> impl Fn(Gpr) -> u64 + '_ {
        move |g| vals.iter().find(|(r, _)| *r == g).map(|(_, v)| *v).unwrap_or(0)
    }

    #[test]
    fn effective_addr_plain() {
        let m = Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 0x8);
        let ea = m.effective_addr(regs(&[(Gpr::Rcx, 0x100), (Gpr::Rdx, 3)]), |_| 0);
        assert_eq!(ea, 0x100 + 12 + 8);
    }

    #[test]
    fn addr32_truncates_before_segment_base() {
        // This is the crux of Segue's "mixed-mode arithmetic" (§3.1): the
        // 32-bit wrap happens before the 64-bit segment base is added.
        let m = Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 0x8)
            .with_seg(Seg::Gs)
            .with_addr32();
        let gs_base = 0x7000_0000_0000u64;
        let ea = m.effective_addr(
            regs(&[(Gpr::Rcx, 0xFFFF_FFFF), (Gpr::Rdx, 2)]),
            |_| gs_base,
        );
        let wrapped = (0xFFFF_FFFFu64 + 8 + 8) & 0xFFFF_FFFF;
        assert_eq!(ea, gs_base + wrapped);
    }

    #[test]
    fn no_addr32_keeps_64_bit_sum() {
        // Without the override, a large index lands past 4 GiB — i.e. in the
        // guard region, where SFI wants it to trap.
        let m = Mem::base_disp(Gpr::Rcx, 0x10).with_seg(Seg::Gs);
        let ea = m.effective_addr(regs(&[(Gpr::Rcx, 0xFFFF_FFFF)]), |_| 0x1_0000_0000);
        assert_eq!(ea, 0x1_0000_0000 + 0xFFFF_FFFF + 0x10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Mem::base(Gpr::Rax).to_string(), "[rax]");
        assert_eq!(
            Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 8).to_string(),
            "[rcx + rdx*4 + 0x8]"
        );
        assert_eq!(
            Mem::base(Gpr::Rbx).with_seg(Seg::Gs).with_addr32().to_string(),
            "gs:[ebx]"
        );
        assert_eq!(Mem::abs(0x100).to_string(), "[0x100]");
        assert_eq!(Mem::base_disp(Gpr::Rbp, -8).to_string(), "[rbp - 0x8]");
    }

    #[test]
    fn scale_round_trip() {
        for s in [Scale::S1, Scale::S2, Scale::S4, Scale::S8] {
            assert_eq!(Scale::from_factor(s.factor()), Some(s));
        }
        assert_eq!(Scale::from_factor(3), None);
        assert_eq!(Scale::from_factor(16), None, "x86 SIB stops at *8");
    }

    #[test]
    fn fold_constant_base_is_address_preserving() {
        let m = Mem::bisd(Gpr::Rbx, Gpr::Rdx, Scale::S4, 0x10).with_seg(Seg::Gs);
        let folded = m.fold_constant_base(0x1000).expect("fits disp32");
        assert_eq!(folded.base, None);
        assert_eq!(folded.index, Some((Gpr::Rdx, Scale::S4)));
        assert_eq!(folded.disp, 0x1010);
        assert_eq!(folded.seg, Some(Seg::Gs));
        let gs = 0x7000_0000u64;
        let ea = |mm: &Mem| mm.effective_addr(regs(&[(Gpr::Rbx, 0x1000), (Gpr::Rdx, 3)]), |_| gs);
        assert_eq!(ea(&m), ea(&folded));
        // Negative displacements fold too, as long as the sum fits.
        let neg = Mem::base_disp(Gpr::Rbx, -0x20).fold_constant_base(0x8).unwrap();
        assert_eq!(neg.disp, -0x18);
    }

    #[test]
    fn fold_constant_base_rejects_disp32_overflow() {
        // The combined displacement exceeds the signed 32-bit field: the
        // encoder has nowhere to put it, so the fold must be rejected.
        let m = Mem::base_disp(Gpr::Rbx, i32::MAX);
        assert_eq!(m.fold_constant_base(1), None);
        assert_eq!(m.fold_constant_base(0x8000_0000), None);
        assert!(m.fold_constant_base(0).is_some(), "exactly i32::MAX still encodes");
        // No base register: nothing to fold.
        assert_eq!(Mem::abs(4).fold_constant_base(1), None);
    }

    #[test]
    fn substitute_base_respects_encoding_limits() {
        // [t + 8] with t = lea [rcx + rdx*4 + 0x10] → [rcx + rdx*4 + 0x18].
        let outer = Mem::base_disp(Gpr::Rbx, 8);
        let inner = Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 0x10);
        let s = outer.substitute_base(inner).expect("one base, one index");
        assert_eq!((s.base, s.index, s.disp), (Some(Gpr::Rcx), Some((Gpr::Rdx, Scale::S4)), 0x18));

        // Two index registers cannot share the one SIB index slot.
        let outer_indexed = Mem::bisd(Gpr::Rbx, Gpr::Rsi, Scale::S2, 0);
        assert_eq!(outer_indexed.substitute_base(inner), None);

        // Displacement overflow past the signed 32-bit field is rejected.
        let big = Mem::base_disp(Gpr::Rbx, i32::MAX);
        assert_eq!(big.substitute_base(Mem::base_disp(Gpr::Rcx, 1)), None);

        // A segment override on the inner expression cannot be nested.
        assert_eq!(outer.substitute_base(Mem::base(Gpr::Rcx).with_seg(Seg::Gs)), None);
    }
}
