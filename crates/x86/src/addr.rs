//! Memory operands (x86-64 addressing modes).

use crate::{Gpr, Seg};

/// An index-register scale factor (the `*1`, `*2`, `*4`, `*8` in
/// `[base + index*scale + disp]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// ×1
    #[default]
    S1,
    /// ×2
    S2,
    /// ×4
    S4,
    /// ×8
    S8,
}

impl Scale {
    /// The multiplication factor as an integer.
    #[inline]
    pub const fn factor(self) -> u64 {
        match self {
            Scale::S1 => 1,
            Scale::S2 => 2,
            Scale::S4 => 4,
            Scale::S8 => 8,
        }
    }

    /// The 2-bit SIB encoding of this scale.
    #[inline]
    pub const fn sib_bits(self) -> u8 {
        match self {
            Scale::S1 => 0,
            Scale::S2 => 1,
            Scale::S4 => 2,
            Scale::S8 => 3,
        }
    }

    /// Creates a scale from a factor of 1, 2, 4 or 8; `None` otherwise.
    pub const fn from_factor(f: u64) -> Option<Scale> {
        match f {
            1 => Some(Scale::S1),
            2 => Some(Scale::S2),
            4 => Some(Scale::S4),
            8 => Some(Scale::S8),
            _ => None,
        }
    }
}

/// A memory operand: `seg:[base + index*scale + disp]`.
///
/// Two fields carry the architectural machinery Segue depends on:
///
/// - [`Mem::seg`]: a segment override. When set to [`Seg::Gs`], the segment
///   base (the sandbox's linear-memory base under Segue) is added to the
///   effective address *by the hardware*, costing one prefix byte instead of
///   one extra instruction and one register.
/// - [`Mem::addr32`]: the address-size override (`0x67` prefix). When set,
///   the effective address `base + index*scale + disp` is computed **modulo
///   2³²** and zero-extended — exactly Wasm's 32-bit index arithmetic, for
///   free. (The segment base is added *after* truncation, so the result
///   still lands inside the sandbox's 4 GiB + guard window.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Gpr>,
    /// Optional scaled index register.
    pub index: Option<(Gpr, Scale)>,
    /// Displacement, sign-extended at address-generation time.
    pub disp: i32,
    /// Optional segment override (`fs`/`gs`).
    pub seg: Option<Seg>,
    /// Address-size override: compute the effective address modulo 2³².
    pub addr32: bool,
}

impl Mem {
    /// `[base]`
    pub const fn base(base: Gpr) -> Mem {
        Mem { base: Some(base), index: None, disp: 0, seg: None, addr32: false }
    }

    /// `[base + disp]`
    pub const fn base_disp(base: Gpr, disp: i32) -> Mem {
        Mem { base: Some(base), index: None, disp, seg: None, addr32: false }
    }

    /// `[base + index*scale + disp]`
    pub const fn bisd(base: Gpr, index: Gpr, scale: Scale, disp: i32) -> Mem {
        Mem { base: Some(base), index: Some((index, scale)), disp, seg: None, addr32: false }
    }

    /// `[index*scale + disp]` (no base register).
    pub const fn isd(index: Gpr, scale: Scale, disp: i32) -> Mem {
        Mem { base: None, index: Some((index, scale)), disp, seg: None, addr32: false }
    }

    /// `[disp]` — absolute address, mainly useful in tests.
    pub const fn abs(disp: i32) -> Mem {
        Mem { base: None, index: None, disp, seg: None, addr32: false }
    }

    /// Adds a segment override, returning the modified operand.
    #[must_use]
    pub const fn with_seg(mut self, seg: Seg) -> Mem {
        self.seg = Some(seg);
        self
    }

    /// Adds the address-size override (32-bit effective-address arithmetic),
    /// returning the modified operand.
    #[must_use]
    pub const fn with_addr32(mut self) -> Mem {
        self.addr32 = true;
        self
    }

    /// The registers read when computing this operand's effective address.
    pub fn regs_read(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }

    /// Computes the effective address given a register file and segment bases.
    ///
    /// This is the architecturally faithful computation: the linear sum is
    /// truncated to 32 bits first when [`Mem::addr32`] is set, and the
    /// segment base is added afterwards.
    pub fn effective_addr(
        &self,
        gpr: impl Fn(Gpr) -> u64,
        seg_base: impl Fn(Seg) -> u64,
    ) -> u64 {
        let mut ea = self.disp as i64 as u64;
        if let Some(b) = self.base {
            ea = ea.wrapping_add(gpr(b));
        }
        if let Some((i, s)) = self.index {
            ea = ea.wrapping_add(gpr(i).wrapping_mul(s.factor()));
        }
        if self.addr32 {
            ea &= 0xFFFF_FFFF;
        }
        if let Some(seg) = self.seg {
            ea = ea.wrapping_add(seg_base(seg));
        }
        ea
    }
}

impl core::fmt::Display for Mem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(seg) = self.seg {
            write!(f, "{seg}:")?;
        }
        f.write_str("[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            if self.addr32 {
                write!(f, "{}", b.name32())?;
            } else {
                write!(f, "{b}")?;
            }
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                f.write_str(" + ")?;
            }
            if self.addr32 {
                write!(f, "{}", i.name32())?;
            } else {
                write!(f, "{i}")?;
            }
            if s != Scale::S1 {
                write!(f, "*{}", s.factor())?;
            }
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, " - {:#x}", -(self.disp as i64))?;
                } else {
                    write!(f, " + {:#x}", self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs(vals: &[(Gpr, u64)]) -> impl Fn(Gpr) -> u64 + '_ {
        move |g| vals.iter().find(|(r, _)| *r == g).map(|(_, v)| *v).unwrap_or(0)
    }

    #[test]
    fn effective_addr_plain() {
        let m = Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 0x8);
        let ea = m.effective_addr(regs(&[(Gpr::Rcx, 0x100), (Gpr::Rdx, 3)]), |_| 0);
        assert_eq!(ea, 0x100 + 12 + 8);
    }

    #[test]
    fn addr32_truncates_before_segment_base() {
        // This is the crux of Segue's "mixed-mode arithmetic" (§3.1): the
        // 32-bit wrap happens before the 64-bit segment base is added.
        let m = Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 0x8)
            .with_seg(Seg::Gs)
            .with_addr32();
        let gs_base = 0x7000_0000_0000u64;
        let ea = m.effective_addr(
            regs(&[(Gpr::Rcx, 0xFFFF_FFFF), (Gpr::Rdx, 2)]),
            |_| gs_base,
        );
        let wrapped = (0xFFFF_FFFFu64 + 8 + 8) & 0xFFFF_FFFF;
        assert_eq!(ea, gs_base + wrapped);
    }

    #[test]
    fn no_addr32_keeps_64_bit_sum() {
        // Without the override, a large index lands past 4 GiB — i.e. in the
        // guard region, where SFI wants it to trap.
        let m = Mem::base_disp(Gpr::Rcx, 0x10).with_seg(Seg::Gs);
        let ea = m.effective_addr(regs(&[(Gpr::Rcx, 0xFFFF_FFFF)]), |_| 0x1_0000_0000);
        assert_eq!(ea, 0x1_0000_0000 + 0xFFFF_FFFF + 0x10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Mem::base(Gpr::Rax).to_string(), "[rax]");
        assert_eq!(
            Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 8).to_string(),
            "[rcx + rdx*4 + 0x8]"
        );
        assert_eq!(
            Mem::base(Gpr::Rbx).with_seg(Seg::Gs).with_addr32().to_string(),
            "gs:[ebx]"
        );
        assert_eq!(Mem::abs(0x100).to_string(), "[0x100]");
        assert_eq!(Mem::base_disp(Gpr::Rbp, -8).to_string(), "[rbp - 0x8]");
    }

    #[test]
    fn scale_round_trip() {
        for s in [Scale::S1, Scale::S2, Scale::S4, Scale::S8] {
            assert_eq!(Scale::from_factor(s.factor()), Some(s));
        }
        assert_eq!(Scale::from_factor(3), None);
    }
}
