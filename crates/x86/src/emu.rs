//! The deterministic x86-64 emulator.
//!
//! [`Machine`] executes a [`Program`] against a pluggable [`MemBus`]
//! (a flat test memory here; `sfi-vm` provides a paged, MPK/MTE-checking
//! bus). It retires instructions one at a time, models an L1I/L1D cache and
//! a 2-bit branch predictor, and charges cycles through
//! [`crate::cost::CostModel`].
//!
//! ## Code-address model
//!
//! Code addresses during *execution* are instruction indices (a `Ret` with an
//! empty shadow call stack ends the run); the byte-accurate layout from
//! [`crate::encode`] is used for fetch/i-cache accounting. This split keeps
//! the emulator simple while preserving the size-dependent effects that the
//! Segue evaluation needs.

use std::collections::HashMap;
use std::fmt;

use crate::cache::Cache;
use crate::cost::{CostModel, RunStats};
use crate::encode::{encode_program, EncodeError, Encoded};
use crate::inst::{AluOp, ShiftAmount, ShiftOp};
use crate::{Cond, Gpr, Inst, MemFault, Program, Seg, Trap, Width};

/// Per-access context handed to the bus (the MPK rights register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// The current PKRU value: 2 bits per key, `(AD, WD)` pairs; key *k*'s
    /// access-disable bit is `pkru >> (2k) & 1`, write-disable is
    /// `pkru >> (2k+1) & 1`.
    pub pkru: u32,
}

impl AccessCtx {
    /// A context with all keys enabled (PKRU = 0).
    pub const ALL_ENABLED: AccessCtx = AccessCtx { pkru: 0 };

    /// Whether reads are permitted for `key` under this PKRU.
    #[inline]
    pub fn may_read(&self, key: u8) -> bool {
        self.pkru >> (2 * key) & 1 == 0
    }

    /// Whether writes are permitted for `key` under this PKRU.
    #[inline]
    pub fn may_write(&self, key: u8) -> bool {
        self.may_read(key) && (self.pkru >> (2 * key + 1)) & 1 == 0
    }
}

/// Configuration for the bounded speculation window (DESIGN.md §16).
///
/// When installed on a [`Machine`], every mispredicted conditional branch
/// and every stale-BTB indirect branch opens a transient window: up to
/// `window` µops of the wrong path execute against *shadow* register state
/// and a store-forwarding buffer, then roll back. Cache state is
/// deliberately **not** rolled back — that residue is the Spectre side
/// channel this model exists to measure.
///
/// The window also carries a taint tracker: a transient load from the
/// configured secret region taints its destination register; when a
/// secret-derived value later forms the address of any transient memory
/// access (the "transmit"), the access is recorded in
/// [`RunStats::spec_leaks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecConfig {
    window: u32,
    secret_lo: u64,
    secret_hi: u64,
}

impl SpecConfig {
    /// Default window: 32 µops, a small ROB's worth of wrong-path work.
    /// Real reorder buffers run 200+ entries; 32 keeps windows cheap to
    /// simulate while still being deep enough for every gadget shape the
    /// corpus exercises (load → derive → transmit is ≤ 10 µops).
    pub const DEFAULT_WINDOW: u32 = 32;

    /// Upper clamp on the window. Deeper windows only re-walk the same
    /// wrong path; 128 bounds worst-case simulation cost per mispredict.
    pub const MAX_WINDOW: u32 = 128;

    /// Creates a speculation config.
    ///
    /// `window` is the µop budget per transient window (clamped to
    /// [`SpecConfig::MAX_WINDOW`]); `[secret_lo, secret_hi)` is the region
    /// whose contents taint transient loads.
    ///
    /// # Errors
    ///
    /// [`SpecError::ZeroWindow`] if `window == 0` (a zero-length window can
    /// never leak and would report false safety), and
    /// [`SpecError::EmptySecretRegion`] if `secret_lo >= secret_hi`.
    pub fn new(window: u32, secret_lo: u64, secret_hi: u64) -> Result<SpecConfig, SpecError> {
        if window == 0 {
            return Err(SpecError::ZeroWindow);
        }
        if secret_lo >= secret_hi {
            return Err(SpecError::EmptySecretRegion);
        }
        Ok(SpecConfig { window: window.min(Self::MAX_WINDOW), secret_lo, secret_hi })
    }

    /// The (possibly clamped) µop budget per window.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The tainted secret region as `(lo, hi)`.
    pub fn secret_range(&self) -> (u64, u64) {
        (self.secret_lo, self.secret_hi)
    }

    #[inline]
    fn in_secret(&self, addr: u64) -> bool {
        addr >= self.secret_lo && addr < self.secret_hi
    }
}

/// A rejected [`SpecConfig`] (degenerate window or secret region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// The requested window was zero µops wide.
    ZeroWindow,
    /// The secret region was empty (`lo >= hi`).
    EmptySecretRegion,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ZeroWindow => {
                f.write_str("speculation window must be at least 1 µop (W=0 disables the detector)")
            }
            SpecError::EmptySecretRegion => f.write_str("secret region is empty (lo >= hi)"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A data-memory backend for the emulator.
pub trait MemBus {
    /// Loads `width` bytes at `addr`, zero-extended.
    fn load(&mut self, addr: u64, width: Width, ctx: AccessCtx) -> Result<u64, MemFault>;
    /// Stores the low `width` bytes of `val` at `addr`.
    fn store(&mut self, addr: u64, width: Width, val: u64, ctx: AccessCtx)
        -> Result<(), MemFault>;

    /// Loads 16 bytes (for `movdqu`). The default issues two 8-byte loads.
    fn load128(&mut self, addr: u64, ctx: AccessCtx) -> Result<u128, MemFault> {
        let lo = self.load(addr, Width::Q, ctx)?;
        let hi = self.load(addr + 8, Width::Q, ctx)?;
        Ok((lo as u128) | ((hi as u128) << 64))
    }

    /// Stores 16 bytes (for `movdqu`). The default issues two 8-byte stores.
    fn store128(&mut self, addr: u64, val: u128, ctx: AccessCtx) -> Result<(), MemFault> {
        self.store(addr, Width::Q, val as u64, ctx)?;
        self.store(addr + 8, Width::Q, (val >> 64) as u64, ctx)
    }
}

/// A flat, fully mapped memory for tests and self-contained benchmarks.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    bytes: Vec<u8>,
}

impl FlatMemory {
    /// Creates a zeroed flat memory of `size` bytes.
    pub fn new(size: usize) -> FlatMemory {
        FlatMemory { bytes: vec![0; size] }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Direct view of the backing bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Direct mutable view of the backing bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, MemFault> {
        let end = addr.checked_add(len).ok_or(MemFault::OutOfRange { addr })?;
        if end as usize > self.bytes.len() {
            return Err(MemFault::OutOfRange { addr });
        }
        Ok(addr as usize)
    }
}

impl MemBus for FlatMemory {
    fn load(&mut self, addr: u64, width: Width, _ctx: AccessCtx) -> Result<u64, MemFault> {
        let i = self.check(addr, width.bytes())?;
        let mut buf = [0u8; 8];
        buf[..width.bytes() as usize].copy_from_slice(&self.bytes[i..i + width.bytes() as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    fn store(
        &mut self,
        addr: u64,
        width: Width,
        val: u64,
        _ctx: AccessCtx,
    ) -> Result<(), MemFault> {
        let i = self.check(addr, width.bytes())?;
        self.bytes[i..i + width.bytes() as usize]
            .copy_from_slice(&val.to_le_bytes()[..width.bytes() as usize]);
        Ok(())
    }
}

/// Architectural flags (the subset compilers branch on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

impl Flags {
    /// Evaluates a condition code against these flags.
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::L => self.sf != self.of,
            Cond::Le => self.zf || self.sf != self.of,
            Cond::G => !self.zf && self.sf == self.of,
            Cond::Ge => self.sf == self.of,
            Cond::B => self.cf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::Ae => !self.cf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
        }
    }
}

/// The architectural register state.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct RegFile {
    gpr: [u64; 16],
    xmm: [u128; 16],
    /// `%gs` segment base (Segue's sandbox heap base).
    pub gs_base: u64,
    /// `%fs` segment base (conventionally TLS).
    pub fs_base: u64,
    /// MPK rights register.
    pub pkru: u32,
    /// Current flags.
    pub flags: Flags,
}


impl RegFile {
    /// Reads a general-purpose register (full 64 bits).
    #[inline]
    pub fn gpr(&self, r: Gpr) -> u64 {
        self.gpr[r.index()]
    }

    /// Writes a general-purpose register (full 64 bits).
    #[inline]
    pub fn set_gpr(&mut self, r: Gpr, v: u64) {
        self.gpr[r.index()] = v;
    }

    /// Writes a register at `width` with x86 merge semantics: 32-bit writes
    /// zero the upper half; 8/16-bit writes merge into the low bits.
    #[inline]
    pub fn write_width(&mut self, r: Gpr, w: Width, v: u64) {
        let slot = &mut self.gpr[r.index()];
        *slot = match w {
            Width::Q => v,
            Width::D => v & 0xFFFF_FFFF,
            Width::W => (*slot & !0xFFFF) | (v & 0xFFFF),
            Width::B => (*slot & !0xFF) | (v & 0xFF),
        };
    }

    /// Reads an XMM register.
    #[inline]
    pub fn xmm(&self, x: crate::Xmm) -> u128 {
        self.xmm[x.index()]
    }

    /// Writes an XMM register.
    #[inline]
    pub fn set_xmm(&mut self, x: crate::Xmm, v: u128) {
        self.xmm[x.index()] = v;
    }

    fn seg_base(&self, s: Seg) -> u64 {
        match s {
            Seg::Fs => self.fs_base,
            Seg::Gs => self.gs_base,
        }
    }
}

/// A program paired with its encoded byte layout.
#[derive(Debug, Clone)]
pub struct Image {
    program: Program,
    encoded: Encoded,
}

impl Image {
    /// Encodes `program` (with branch relaxation) and pairs it for execution.
    pub fn load(program: Program) -> Result<Image, EncodeError> {
        let encoded = encode_program(&program)?;
        Ok(Image { program, encoded })
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The encoded bytes/offsets.
    pub fn encoded(&self) -> &Encoded {
        &self.encoded
    }

    /// Total code size in bytes.
    pub fn code_size(&self) -> usize {
        self.encoded.len()
    }
}

/// Host-call handler: receives the host function id, registers and bus.
///
/// Returns the extra cycles the host work should be charged (e.g. a bulk
/// `memory.copy` costs time proportional to its length).
pub type HostHandler<'a, M> = dyn FnMut(u32, &mut RegFile, &mut M) -> Result<f64, Trap> + 'a;

/// The emulator.
///
/// A `Machine` owns register state, caches, and a cost model. Caches stay
/// warm across [`Machine::run_image`] calls; call [`Machine::reset_caches`]
/// between unrelated measurements.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Architectural registers.
    pub regs: RegFile,
    /// The cycle cost model.
    pub cost: CostModel,
    icache: Cache,
    dcache: Cache,
    fuel: u64,
    allow_system: bool,
    spec: Option<SpecConfig>,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// A machine with default cost model and caches.
    pub fn new() -> Machine {
        Machine {
            regs: RegFile::default(),
            cost: CostModel::default(),
            icache: Cache::l1i_default(),
            dcache: Cache::l1d_default(),
            fuel: 2_000_000_000,
            allow_system: true,
            spec: None,
        }
    }

    /// A machine with a custom cost model.
    pub fn with_cost(cost: CostModel) -> Machine {
        Machine { cost, ..Machine::new() }
    }

    /// Sets the instruction budget for subsequent runs.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Forbids `wrpkru`/`wr*base` (models sandbox code, which must never
    /// contain them — §3.2's "Wasm compilers control which instructions are
    /// emitted").
    pub fn forbid_system_instructions(&mut self) {
        self.allow_system = false;
    }

    /// Turns on the bounded speculation window for subsequent runs.
    ///
    /// Off by default — with no config installed, runs are bit-identical to
    /// the pre-speculation emulator. With it, mispredicted branches execute
    /// transient wrong-path µops per [`SpecConfig`], populating the
    /// `spec_flushes` / `spec_uops` / `spec_leaks` buckets of
    /// [`RunStats`] (pure counters: no cycles are charged, so the exact-sum
    /// invariant `attributed_cycles() == cycles` is untouched).
    pub fn enable_speculation(&mut self, cfg: SpecConfig) {
        self.spec = Some(cfg);
    }

    /// Removes the speculation config (back to the architectural-only model).
    pub fn disable_speculation(&mut self) {
        self.spec = None;
    }

    /// The installed speculation config, if any.
    pub fn speculation(&self) -> Option<SpecConfig> {
        self.spec
    }

    /// Reads a general-purpose register.
    pub fn gpr(&self, r: Gpr) -> u64 {
        self.regs.gpr(r)
    }

    /// Writes a general-purpose register.
    pub fn set_gpr(&mut self, r: Gpr, v: u64) {
        self.regs.set_gpr(r, v);
    }

    /// Invalidates both L1 caches (keeps their counters).
    pub fn reset_caches(&mut self) {
        self.icache.flush();
        self.dcache.flush();
    }

    /// Shared reference to the data cache (for miss accounting).
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// Shared reference to the instruction cache.
    pub fn icache(&self) -> &Cache {
        &self.icache
    }

    /// Encodes and runs `program` from its first instruction with no host.
    ///
    /// Convenience wrapper over [`Image::load`] + [`Machine::run_image`].
    ///
    /// # Panics
    ///
    /// Panics if the program fails to encode (unbound label, illegal
    /// addressing mode) — these are compiler bugs, not runtime conditions.
    pub fn run(&mut self, program: &Program, bus: &mut impl MemBus) -> Result<RunStats, Trap> {
        let image = Image::load(program.clone()).expect("program must encode");
        self.run_image(&image, bus)
    }

    /// Runs a pre-encoded image from instruction 0 with no host handler.
    pub fn run_image(&mut self, image: &Image, bus: &mut impl MemBus) -> Result<RunStats, Trap> {
        self.run_image_from(image, 0, bus, &mut |f, _, _| {
            Err(Trap::BadControlFlow { target: u64::from(f) })
        })
    }

    /// Runs a pre-encoded image with a host-call handler.
    pub fn run_image_with_host<M: MemBus>(
        &mut self,
        image: &Image,
        bus: &mut M,
        host: &mut HostHandler<'_, M>,
    ) -> Result<RunStats, Trap> {
        self.run_image_from(image, 0, bus, host)
    }

    /// Runs a pre-encoded image starting at instruction index `entry`.
    pub fn run_image_from<M: MemBus>(
        &mut self,
        image: &Image,
        entry: usize,
        bus: &mut M,
        host: &mut HostHandler<'_, M>,
    ) -> Result<RunStats, Trap> {
        let prog = &image.program;
        let insts = prog.insts();
        let enc = &image.encoded;
        let mut stats = RunStats::default();
        let mut pc = entry;
        let mut call_stack: Vec<usize> = Vec::with_capacity(64);
        // 2-bit counters per instruction site (weakly taken initial state).
        let mut predictor: Vec<u8> = vec![1; insts.len()];
        let mut btb: HashMap<usize, usize> = HashMap::new();
        let mut fuel = self.fuel;

        macro_rules! ctx {
            () => {
                AccessCtx { pkru: self.regs.pkru }
            };
        }

        // Set when the top-level `ret` retires: the instruction still flows
        // through the common attribution tail below before the loop exits.
        let mut finished = false;

        while pc < insts.len() {
            if fuel == 0 {
                return Err(Trap::FuelExhausted);
            }
            fuel -= 1;

            let inst = &insts[pc];
            let ilen = enc.inst_len(pc);
            stats.insts += 1;
            stats.code_bytes_fetched += ilen as u64;
            // Miss counters before this instruction: the deltas after the
            // dispatch below reconstruct exactly the penalty cycles it was
            // charged (each miss adds one fixed `*_miss_cycles` constant).
            let miss0 = (stats.icache_misses, stats.dcache_misses, stats.branch_misses);
            let mut cycles = self.cost.throughput_cycles(inst, ilen);
            if !self.icache.access(u64::from(enc.offsets[pc])) {
                stats.icache_misses += 1;
                cycles += self.cost.icache_miss_cycles;
            }

            let mut next = pc + 1;
            match *inst {
                Inst::MovRR { dst, src, width } => {
                    let v = width.mask(self.regs.gpr(src));
                    self.regs.write_width(dst, width, v);
                }
                Inst::MovRI { dst, imm, width } => {
                    self.regs.write_width(dst, width, imm as u64);
                }
                Inst::Load { dst, mem, width } => {
                    cycles += self.load_latency();
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, width.bytes());
                    let v = bus.load(ea, width, ctx!())?;
                    stats.loads += 1;
                    // A 32-bit load zero-extends; 8/16-bit merge.
                    if width == Width::D || width == Width::Q {
                        self.regs.set_gpr(dst, width.mask(v));
                    } else {
                        self.regs.write_width(dst, width, v);
                    }
                }
                Inst::LoadSx { dst, mem, width } => {
                    cycles += self.load_latency();
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, width.bytes());
                    let v = bus.load(ea, width, ctx!())?;
                    stats.loads += 1;
                    self.regs.set_gpr(dst, width.sext(v));
                }
                Inst::LoadZx { dst, mem, width } => {
                    cycles += self.load_latency();
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, width.bytes());
                    let v = bus.load(ea, width, ctx!())?;
                    stats.loads += 1;
                    self.regs.set_gpr(dst, width.mask(v));
                }
                Inst::Store { src, mem, width } => {
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, width.bytes());
                    bus.store(ea, width, width.mask(self.regs.gpr(src)), ctx!())?;
                    stats.stores += 1;
                }
                Inst::StoreImm { imm, mem, width } => {
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, width.bytes());
                    bus.store(ea, width, width.mask(imm as i64 as u64), ctx!())?;
                    stats.stores += 1;
                }
                Inst::Lea { dst, mem, width } => {
                    // lea ignores the segment base; addr32 still truncates.
                    let mut ea = mem.disp as i64 as u64;
                    if let Some(b) = mem.base {
                        ea = ea.wrapping_add(self.regs.gpr(b));
                    }
                    if let Some((i, s)) = mem.index {
                        ea = ea.wrapping_add(self.regs.gpr(i).wrapping_mul(s.factor()));
                    }
                    if mem.addr32 {
                        ea &= 0xFFFF_FFFF;
                    }
                    self.regs.write_width(dst, width, ea);
                }
                Inst::Movzx { dst, src, from } => {
                    self.regs.set_gpr(dst, from.mask(self.regs.gpr(src)));
                }
                Inst::Movsx { dst, src, from } => {
                    self.regs.set_gpr(dst, from.sext(self.regs.gpr(src)));
                }
                Inst::AluRR { op, dst, src, width } => {
                    let a = width.mask(self.regs.gpr(dst));
                    let b = width.mask(self.regs.gpr(src));
                    let r = self.alu(op, a, b, width);
                    if op.writes_dst() {
                        self.regs.write_width(dst, width, r);
                    }
                }
                Inst::AluRI { op, dst, imm, width } => {
                    let a = width.mask(self.regs.gpr(dst));
                    let b = width.mask(imm as i64 as u64);
                    let r = self.alu(op, a, b, width);
                    if op.writes_dst() {
                        self.regs.write_width(dst, width, r);
                    }
                }
                Inst::AluRM { op, dst, mem, width } => {
                    cycles += self.load_latency();
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, width.bytes());
                    let b = bus.load(ea, width, ctx!())?;
                    stats.loads += 1;
                    let a = width.mask(self.regs.gpr(dst));
                    let r = self.alu(op, a, width.mask(b), width);
                    if op.writes_dst() {
                        self.regs.write_width(dst, width, r);
                    }
                }
                Inst::TestRR { a, b, width } => {
                    let x = width.mask(self.regs.gpr(a)) & width.mask(self.regs.gpr(b));
                    self.regs.flags = Flags {
                        zf: x == 0,
                        sf: x >> width.sign_bit() & 1 == 1,
                        cf: false,
                        of: false,
                    };
                }
                Inst::Imul { dst, src, width } => {
                    let r = width
                        .mask(self.regs.gpr(dst))
                        .wrapping_mul(width.mask(self.regs.gpr(src)));
                    self.regs.write_width(dst, width, width.mask(r));
                }
                Inst::ImulRRI { dst, src, imm, width } => {
                    let r = width.mask(self.regs.gpr(src)).wrapping_mul(width.mask(imm as i64 as u64));
                    self.regs.write_width(dst, width, width.mask(r));
                }
                Inst::Div { src, width, signed } => {
                    self.div(src, width, signed)?;
                }
                Inst::Cdq { width } => {
                    let a = width.mask(self.regs.gpr(Gpr::Rax));
                    let sign = a >> width.sign_bit() & 1 == 1;
                    let v = if sign { width.mask(u64::MAX) } else { 0 };
                    self.regs.write_width(Gpr::Rdx, width, v);
                }
                Inst::Shift { op, dst, amount, width } => {
                    let n = match amount {
                        ShiftAmount::Imm(i) => u32::from(i),
                        ShiftAmount::Cl => (self.regs.gpr(Gpr::Rcx) & 0xFF) as u32,
                    };
                    let n = n & (width.bytes() as u32 * 8 - 1);
                    let a = width.mask(self.regs.gpr(dst));
                    let r = Self::shift_compute(op, a, n, width);
                    self.regs.write_width(dst, width, r);
                    if n != 0 {
                        self.regs.flags.zf = r == 0;
                        self.regs.flags.sf = r >> width.sign_bit() & 1 == 1;
                    }
                }
                Inst::Neg { dst, width } => {
                    let a = width.mask(self.regs.gpr(dst));
                    let r = self.alu(AluOp::Sub, 0, a, width);
                    self.regs.write_width(dst, width, r);
                }
                Inst::Not { dst, width } => {
                    let a = width.mask(self.regs.gpr(dst));
                    self.regs.write_width(dst, width, width.mask(!a));
                }
                Inst::Cmov { cond, dst, src, width } => {
                    if self.regs.flags.cond(cond) {
                        let v = width.mask(self.regs.gpr(src));
                        self.regs.write_width(dst, width, v);
                    } else if width == Width::D {
                        // cmov always writes in 32-bit form (zeroes upper).
                        let v = width.mask(self.regs.gpr(dst));
                        self.regs.set_gpr(dst, v);
                    }
                }
                Inst::Setcc { cond, dst } => {
                    let v = u64::from(self.regs.flags.cond(cond));
                    self.regs.set_gpr(dst, v);
                }
                Inst::Jmp { target } => {
                    next = self.resolve(prog, target)?;
                    cycles += self.cost.taken_branch_cycles;
                }
                Inst::Jcc { cond, target } => {
                    stats.branches += 1;
                    let taken = self.regs.flags.cond(cond);
                    let ctr = &mut predictor[pc];
                    let predicted_taken = *ctr >= 2;
                    *ctr = match (taken, *ctr) {
                        (true, c) if c < 3 => c + 1,
                        (false, c) if c > 0 => c - 1,
                        (_, c) => c,
                    };
                    if predicted_taken != taken {
                        stats.branch_misses += 1;
                        cycles += self.cost.branch_miss_cycles;
                        // Wrong-path fetch: the front end ran down the
                        // *predicted* direction until the mispredict
                        // resolved. With speculation enabled, model those
                        // transient µops (rolled back architecturally, but
                        // their cache footprint persists).
                        if self.spec.is_some() {
                            let wrong = if predicted_taken {
                                prog.resolve(target)
                            } else {
                                Some(pc + 1)
                            };
                            if let Some(start) = wrong {
                                self.speculate(image, start, &predictor, &btb, bus, &mut stats);
                            }
                        }
                    }
                    if taken {
                        next = self.resolve(prog, target)?;
                        cycles += self.cost.taken_branch_cycles;
                    }
                }
                Inst::JmpReg { reg } => {
                    stats.branches += 1;
                    let t = self.regs.gpr(reg) as usize;
                    if t >= insts.len() {
                        return Err(Trap::BadControlFlow { target: t as u64 });
                    }
                    let prev = btb.insert(pc, t);
                    if prev != Some(t) {
                        stats.branch_misses += 1;
                        cycles += self.cost.branch_miss_cycles;
                        // Stale BTB entry: the front end speculated into the
                        // *previous* target with the *current* register
                        // state — the transient type-confusion channel.
                        if let Some(old) = prev {
                            if self.spec.is_some() {
                                self.speculate(image, old, &predictor, &btb, bus, &mut stats);
                            }
                        }
                    }
                    next = t;
                    cycles += self.cost.taken_branch_cycles;
                }
                Inst::Call { target } => {
                    call_stack.push(pc + 1);
                    next = self.resolve(prog, target)?;
                    cycles += self.cost.taken_branch_cycles;
                }
                Inst::CallReg { reg } => {
                    stats.branches += 1;
                    let t = self.regs.gpr(reg) as usize;
                    if t >= insts.len() {
                        return Err(Trap::BadControlFlow { target: t as u64 });
                    }
                    let prev = btb.insert(pc, t);
                    if prev != Some(t) {
                        stats.branch_misses += 1;
                        cycles += self.cost.branch_miss_cycles;
                        if let Some(old) = prev {
                            if self.spec.is_some() {
                                self.speculate(image, old, &predictor, &btb, bus, &mut stats);
                            }
                        }
                    }
                    call_stack.push(pc + 1);
                    next = t;
                    cycles += self.cost.taken_branch_cycles;
                }
                Inst::CallHost { func } => {
                    stats.host_calls += 1;
                    cycles += host(func, &mut self.regs, bus)?;
                }
                Inst::Ret => match call_stack.pop() {
                    Some(ra) => {
                        next = ra;
                        cycles += self.cost.taken_branch_cycles;
                    }
                    None => finished = true,
                },
                Inst::Push { reg } => {
                    let sp = self.regs.gpr(Gpr::Rsp).wrapping_sub(8);
                    self.regs.set_gpr(Gpr::Rsp, sp);
                    cycles += self.data_access(&mut stats, sp, 8);
                    bus.store(sp, Width::Q, self.regs.gpr(reg), ctx!())?;
                    stats.stores += 1;
                }
                Inst::Pop { reg } => {
                    cycles += self.load_latency();
                    let sp = self.regs.gpr(Gpr::Rsp);
                    cycles += self.data_access(&mut stats, sp, 8);
                    let v = bus.load(sp, Width::Q, ctx!())?;
                    stats.loads += 1;
                    self.regs.set_gpr(reg, v);
                    self.regs.set_gpr(Gpr::Rsp, sp.wrapping_add(8));
                }
                Inst::MovdquLoad { dst, mem } => {
                    cycles += self.load_latency();
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, 16);
                    let v = bus.load128(ea, ctx!())?;
                    stats.loads += 1;
                    self.regs.set_xmm(dst, v);
                }
                Inst::MovdquStore { src, mem } => {
                    let ea = self.ea(&mem);
                    cycles += self.data_access(&mut stats, ea, 16);
                    bus.store128(ea, self.regs.xmm(src), ctx!())?;
                    stats.stores += 1;
                }
                Inst::MovdqaRR { dst, src } => {
                    let v = self.regs.xmm(src);
                    self.regs.set_xmm(dst, v);
                }
                Inst::WrGsBase { src } => {
                    if !self.allow_system {
                        return Err(Trap::PrivilegedInstruction);
                    }
                    self.regs.gs_base = self.regs.gpr(src);
                }
                Inst::RdGsBase { dst } => {
                    let v = self.regs.gs_base;
                    self.regs.set_gpr(dst, v);
                }
                Inst::WrFsBase { src } => {
                    if !self.allow_system {
                        return Err(Trap::PrivilegedInstruction);
                    }
                    self.regs.fs_base = self.regs.gpr(src);
                }
                Inst::WrPkru => {
                    if !self.allow_system {
                        return Err(Trap::PrivilegedInstruction);
                    }
                    self.regs.pkru = self.regs.gpr(Gpr::Rax) as u32;
                }
                Inst::RdPkru => {
                    let v = u64::from(self.regs.pkru);
                    self.regs.set_gpr(Gpr::Rax, v);
                }
                Inst::Ud2 => return Err(Trap::Undefined),
                Inst::Lfence => {
                    // Architecturally a no-op; its effect is that no
                    // speculative window can cross it (see `speculate`) and
                    // the serial-dispatch charge from the cost model.
                }
                Inst::Nop => {}
            }
            cycles += self.cost.serial_cycles(inst);
            // Attribution: split this instruction's charge into its
            // microarchitectural penalties (reconstructed from the miss
            // deltas) and the remainder, which lands in the bucket of the
            // provenance class the compiler tagged the instruction with.
            let pen_i = (stats.icache_misses - miss0.0) as f64 * self.cost.icache_miss_cycles;
            let pen_d = (stats.dcache_misses - miss0.1) as f64 * self.cost.dcache_miss_cycles;
            let pen_b = (stats.branch_misses - miss0.2) as f64 * self.cost.branch_miss_cycles;
            stats.icache_penalty_cycles += pen_i;
            stats.dcache_penalty_cycles += pen_d;
            stats.branch_penalty_cycles += pen_b;
            stats.prov_cycles[prog.prov_at(pc).index()] += cycles - (pen_i + pen_d + pen_b);
            if finished {
                break;
            }
            pc = next;
        }
        // Finalize total cycles *from* the buckets so the sum invariant
        // (`attributed_cycles() == cycles`) holds bit-for-bit on every
        // successful return; see DESIGN.md §14.
        stats.cycles = stats.attributed_cycles();
        Ok(stats)
    }

    /// Executes one transient wrong-path window starting at `start`.
    ///
    /// Shadow state only: registers and flags are cloned and discarded,
    /// stores land in a forwarding buffer that never reaches the bus, and
    /// nothing is charged to `cycles` (the spec buckets are pure counters,
    /// so the exact-sum invariant is untouched). The two effects that
    /// persist past the rollback are the cache footprint — wrong-path
    /// fetches and data touches stay resident, which **is** the side
    /// channel — and the taint-based leak counter.
    ///
    /// Taint rules: a transient load whose address falls in the configured
    /// secret region taints its destination; taint propagates through ALU,
    /// moves, shifts, and store-to-load forwarding; any transient memory
    /// access whose *address* is tainted (or an indirect branch through a
    /// tainted register) records a leak.
    fn speculate<M: MemBus>(
        &mut self,
        image: &Image,
        start: usize,
        predictor: &[u8],
        btb: &HashMap<usize, usize>,
        bus: &mut M,
        stats: &mut RunStats,
    ) {
        let Some(spec) = self.spec else { return };
        stats.spec_flushes += 1;
        let prog = &image.program;
        let insts = prog.insts();
        let enc = &image.encoded;
        let mut regs = self.regs.clone();
        // One taint bit per GPR / XMM register; `flags_taint` covers EFLAGS.
        let mut taint: u16 = 0;
        let mut xtaint: u16 = 0;
        let mut flags_taint = false;
        // Byte-granular store-forwarding buffer, each byte carrying taint.
        let mut store_buf: HashMap<u64, (u8, bool)> = HashMap::new();
        let mut spec_stack: Vec<usize> = Vec::new();
        let mut pc = start;
        let mut budget = i64::from(spec.window);

        macro_rules! is_t {
            ($r:expr) => {
                taint & (1u16 << $r.index()) != 0
            };
        }
        // Width-aware taint write: 32/64-bit destinations are fully
        // overwritten (taint replaced); 8/16-bit writes merge (taint ORs).
        macro_rules! put_t {
            ($dst:expr, $w:expr, $t:expr) => {{
                let bit = 1u16 << $dst.index();
                if matches!($w, Width::Q | Width::D) {
                    if $t {
                        taint |= bit;
                    } else {
                        taint &= !bit;
                    }
                } else if $t {
                    taint |= bit;
                }
            }};
        }
        // Effective address of a transient access: touches the D-cache
        // (the persistent footprint) and records a leak when the address
        // is secret-derived — that touch is the transmit.
        macro_rules! mem_ea {
            ($mem:expr, $len:expr) => {{
                let m = $mem;
                let ea = m.effective_addr(|r| regs.gpr(r), |s| regs.seg_base(s));
                let mut addr_t = false;
                if let Some(b) = m.base {
                    addr_t |= is_t!(b);
                }
                if let Some((i, _)) = m.index {
                    addr_t |= is_t!(i);
                }
                if addr_t {
                    stats.spec_leaks += 1;
                }
                self.dcache.access_range(ea, $len);
                ea
            }};
        }
        // Transient load value + taint: secret-region bytes are synthesized
        // deterministically (the region lives outside the architecturally
        // mapped sandbox, so the bus would fault); other addresses read
        // through the bus with faulting loads forwarding zero; the store
        // buffer overlays both.
        macro_rules! spec_load {
            ($ea:expr, $w:expr) => {{
                let ea: u64 = $ea;
                let w: Width = $w;
                let mut t = spec.in_secret(ea);
                let mut v: u64 = if t {
                    let mut x = 0u64;
                    for i in 0..w.bytes() {
                        x |= u64::from((ea.wrapping_add(i) as u8) ^ 0xA5) << (8 * i);
                    }
                    x
                } else {
                    bus.load(ea, w, AccessCtx { pkru: regs.pkru }).unwrap_or(0)
                };
                for i in 0..w.bytes() {
                    if let Some(&(b, bt)) = store_buf.get(&ea.wrapping_add(i)) {
                        v = (v & !(0xFFu64 << (8 * i))) | (u64::from(b) << (8 * i));
                        t |= bt;
                    }
                }
                (v, t)
            }};
        }
        macro_rules! spec_store {
            ($ea:expr, $w:expr, $v:expr, $t:expr) => {{
                let ea: u64 = $ea;
                let v: u64 = $v;
                for i in 0..$w.bytes() {
                    store_buf.insert(ea.wrapping_add(i), ((v >> (8 * i)) as u8, $t));
                }
            }};
        }

        'window: while budget > 0 && pc < insts.len() {
            let inst = &insts[pc];
            let uops = self.cost.uops(inst).ceil().max(1.0) as i64;
            budget -= uops;
            stats.spec_uops += uops as u64;
            // Wrong-path fetch touches the I-cache; the footprint persists.
            self.icache.access(u64::from(enc.offsets[pc]));
            let mut next = pc + 1;
            match *inst {
                Inst::MovRR { dst, src, width } => {
                    let v = width.mask(regs.gpr(src));
                    regs.write_width(dst, width, v);
                    let t = is_t!(src);
                    put_t!(dst, width, t);
                }
                Inst::MovRI { dst, imm, width } => {
                    regs.write_width(dst, width, imm as u64);
                    put_t!(dst, width, false);
                }
                Inst::Load { dst, mem, width } => {
                    let ea = mem_ea!(&mem, width.bytes());
                    let (v, t) = spec_load!(ea, width);
                    if width == Width::D || width == Width::Q {
                        regs.set_gpr(dst, width.mask(v));
                    } else {
                        regs.write_width(dst, width, v);
                    }
                    put_t!(dst, width, t);
                }
                Inst::LoadSx { dst, mem, width } => {
                    let ea = mem_ea!(&mem, width.bytes());
                    let (v, t) = spec_load!(ea, width);
                    regs.set_gpr(dst, width.sext(v));
                    put_t!(dst, Width::Q, t);
                }
                Inst::LoadZx { dst, mem, width } => {
                    let ea = mem_ea!(&mem, width.bytes());
                    let (v, t) = spec_load!(ea, width);
                    regs.set_gpr(dst, width.mask(v));
                    put_t!(dst, Width::Q, t);
                }
                Inst::Store { src, mem, width } => {
                    let ea = mem_ea!(&mem, width.bytes());
                    spec_store!(ea, width, width.mask(regs.gpr(src)), is_t!(src));
                }
                Inst::StoreImm { imm, mem, width } => {
                    let ea = mem_ea!(&mem, width.bytes());
                    spec_store!(ea, width, width.mask(imm as i64 as u64), false);
                }
                Inst::Lea { dst, mem, width } => {
                    let mut ea = mem.disp as i64 as u64;
                    let mut t = false;
                    if let Some(b) = mem.base {
                        ea = ea.wrapping_add(regs.gpr(b));
                        t |= is_t!(b);
                    }
                    if let Some((i, s)) = mem.index {
                        ea = ea.wrapping_add(regs.gpr(i).wrapping_mul(s.factor()));
                        t |= is_t!(i);
                    }
                    if mem.addr32 {
                        ea &= 0xFFFF_FFFF;
                    }
                    regs.write_width(dst, width, ea);
                    put_t!(dst, width, t);
                }
                Inst::Movzx { dst, src, from } => {
                    regs.set_gpr(dst, from.mask(regs.gpr(src)));
                    let t = is_t!(src);
                    put_t!(dst, Width::Q, t);
                }
                Inst::Movsx { dst, src, from } => {
                    regs.set_gpr(dst, from.sext(regs.gpr(src)));
                    let t = is_t!(src);
                    put_t!(dst, Width::Q, t);
                }
                Inst::AluRR { op, dst, src, width } => {
                    let a = width.mask(regs.gpr(dst));
                    let b = width.mask(regs.gpr(src));
                    let (r, f) = Self::alu_compute(op, a, b, width);
                    regs.flags = f;
                    let t = is_t!(dst) | is_t!(src);
                    flags_taint = t;
                    if op.writes_dst() {
                        regs.write_width(dst, width, r);
                        put_t!(dst, width, t);
                    }
                }
                Inst::AluRI { op, dst, imm, width } => {
                    let a = width.mask(regs.gpr(dst));
                    let b = width.mask(imm as i64 as u64);
                    let (r, f) = Self::alu_compute(op, a, b, width);
                    regs.flags = f;
                    let t = is_t!(dst);
                    flags_taint = t;
                    if op.writes_dst() {
                        regs.write_width(dst, width, r);
                        put_t!(dst, width, t);
                    }
                }
                Inst::AluRM { op, dst, mem, width } => {
                    let ea = mem_ea!(&mem, width.bytes());
                    let (b, mt) = spec_load!(ea, width);
                    let a = width.mask(regs.gpr(dst));
                    let (r, f) = Self::alu_compute(op, a, width.mask(b), width);
                    regs.flags = f;
                    let t = is_t!(dst) | mt;
                    flags_taint = t;
                    if op.writes_dst() {
                        regs.write_width(dst, width, r);
                        put_t!(dst, width, t);
                    }
                }
                Inst::TestRR { a, b, width } => {
                    let x = width.mask(regs.gpr(a)) & width.mask(regs.gpr(b));
                    regs.flags = Flags {
                        zf: x == 0,
                        sf: x >> width.sign_bit() & 1 == 1,
                        cf: false,
                        of: false,
                    };
                    flags_taint = is_t!(a) | is_t!(b);
                }
                Inst::Imul { dst, src, width } => {
                    let r = width.mask(regs.gpr(dst)).wrapping_mul(width.mask(regs.gpr(src)));
                    regs.write_width(dst, width, width.mask(r));
                    let t = is_t!(dst) | is_t!(src);
                    put_t!(dst, width, t);
                }
                Inst::ImulRRI { dst, src, imm, width } => {
                    let r = width.mask(regs.gpr(src)).wrapping_mul(width.mask(imm as i64 as u64));
                    regs.write_width(dst, width, width.mask(r));
                    let t = is_t!(src);
                    put_t!(dst, width, t);
                }
                // Divides serialize the window in this model (their latency
                // outlives any realistic transient window).
                Inst::Div { .. } => break 'window,
                Inst::Cdq { width } => {
                    let a = width.mask(regs.gpr(Gpr::Rax));
                    let sign = a >> width.sign_bit() & 1 == 1;
                    let v = if sign { width.mask(u64::MAX) } else { 0 };
                    regs.write_width(Gpr::Rdx, width, v);
                    let t = is_t!(Gpr::Rax);
                    put_t!(Gpr::Rdx, width, t);
                }
                Inst::Shift { op, dst, amount, width } => {
                    let (n0, amt_t) = match amount {
                        ShiftAmount::Imm(i) => (u32::from(i), false),
                        ShiftAmount::Cl => ((regs.gpr(Gpr::Rcx) & 0xFF) as u32, is_t!(Gpr::Rcx)),
                    };
                    let n = n0 & (width.bytes() as u32 * 8 - 1);
                    let a = width.mask(regs.gpr(dst));
                    let r = Self::shift_compute(op, a, n, width);
                    regs.write_width(dst, width, r);
                    let t = is_t!(dst) | amt_t;
                    put_t!(dst, width, t);
                    if n != 0 {
                        regs.flags.zf = r == 0;
                        regs.flags.sf = r >> width.sign_bit() & 1 == 1;
                        flags_taint = t;
                    }
                }
                Inst::Neg { dst, width } => {
                    let a = width.mask(regs.gpr(dst));
                    let (r, f) = Self::alu_compute(AluOp::Sub, 0, a, width);
                    regs.flags = f;
                    regs.write_width(dst, width, r);
                    flags_taint = is_t!(dst);
                }
                Inst::Not { dst, width } => {
                    let a = width.mask(regs.gpr(dst));
                    regs.write_width(dst, width, width.mask(!a));
                }
                Inst::Cmov { cond, dst, src, width } => {
                    if regs.flags.cond(cond) {
                        let v = width.mask(regs.gpr(src));
                        regs.write_width(dst, width, v);
                        let t = is_t!(src) | flags_taint;
                        put_t!(dst, width, t);
                    } else if width == Width::D {
                        let v = width.mask(regs.gpr(dst));
                        regs.set_gpr(dst, v);
                    }
                }
                Inst::Setcc { cond, dst } => {
                    let v = u64::from(regs.flags.cond(cond));
                    regs.set_gpr(dst, v);
                    put_t!(dst, Width::Q, flags_taint);
                }
                Inst::Jmp { target } => match prog.resolve(target) {
                    Some(t) => next = t,
                    None => break 'window,
                },
                Inst::Jcc { target, .. } => {
                    // Nested branches follow the predictor (read-only: the
                    // wrong path must not train the committed state).
                    let predicted = predictor.get(pc).is_some_and(|&c| c >= 2);
                    if predicted {
                        match prog.resolve(target) {
                            Some(t) => next = t,
                            None => break 'window,
                        }
                    }
                }
                Inst::JmpReg { reg } => {
                    if is_t!(reg) {
                        // Secret-steered fetch: the target itself transmits.
                        stats.spec_leaks += 1;
                        break 'window;
                    }
                    // The transient front end follows the BTB, not the
                    // (not-yet-executed) register value.
                    match btb.get(&pc) {
                        Some(&t) if t < insts.len() => next = t,
                        _ => break 'window,
                    }
                }
                Inst::Call { target } => match prog.resolve(target) {
                    Some(t) => {
                        spec_stack.push(pc + 1);
                        next = t;
                    }
                    None => break 'window,
                },
                Inst::CallReg { reg } => {
                    if is_t!(reg) {
                        stats.spec_leaks += 1;
                        break 'window;
                    }
                    match btb.get(&pc) {
                        Some(&t) if t < insts.len() => {
                            spec_stack.push(pc + 1);
                            next = t;
                        }
                        _ => break 'window,
                    }
                }
                Inst::Ret => match spec_stack.pop() {
                    Some(ra) => next = ra,
                    // Returning into the committed caller would need the
                    // real RSB; end the window instead.
                    None => break 'window,
                },
                // The window cannot cross host transitions, serializing
                // system writes, faults, or an lfence — the last one being
                // exactly the mitigation contract.
                Inst::CallHost { .. }
                | Inst::WrGsBase { .. }
                | Inst::WrFsBase { .. }
                | Inst::WrPkru
                | Inst::Ud2
                | Inst::Lfence => break 'window,
                Inst::RdGsBase { dst } => {
                    let v = regs.gs_base;
                    regs.set_gpr(dst, v);
                    put_t!(dst, Width::Q, false);
                }
                Inst::RdPkru => {
                    let v = u64::from(regs.pkru);
                    regs.set_gpr(Gpr::Rax, v);
                    put_t!(Gpr::Rax, Width::Q, false);
                }
                Inst::Push { reg } => {
                    let sp = regs.gpr(Gpr::Rsp).wrapping_sub(8);
                    regs.set_gpr(Gpr::Rsp, sp);
                    if is_t!(Gpr::Rsp) {
                        stats.spec_leaks += 1;
                    }
                    self.dcache.access_range(sp, 8);
                    spec_store!(sp, Width::Q, regs.gpr(reg), is_t!(reg));
                }
                Inst::Pop { reg } => {
                    let sp = regs.gpr(Gpr::Rsp);
                    if is_t!(Gpr::Rsp) {
                        stats.spec_leaks += 1;
                    }
                    self.dcache.access_range(sp, 8);
                    let (v, t) = spec_load!(sp, Width::Q);
                    regs.set_gpr(reg, v);
                    regs.set_gpr(Gpr::Rsp, sp.wrapping_add(8));
                    put_t!(reg, Width::Q, t);
                }
                Inst::MovdquLoad { dst, mem } => {
                    let ea = mem_ea!(&mem, 16);
                    let (lo, t0) = spec_load!(ea, Width::Q);
                    let (hi, t1) = spec_load!(ea.wrapping_add(8), Width::Q);
                    regs.set_xmm(dst, (lo as u128) | ((hi as u128) << 64));
                    let bit = 1u16 << dst.index();
                    if t0 | t1 {
                        xtaint |= bit;
                    } else {
                        xtaint &= !bit;
                    }
                }
                Inst::MovdquStore { src, mem } => {
                    let ea = mem_ea!(&mem, 16);
                    let v = regs.xmm(src);
                    let t = xtaint & (1u16 << src.index()) != 0;
                    spec_store!(ea, Width::Q, v as u64, t);
                    spec_store!(ea.wrapping_add(8), Width::Q, (v >> 64) as u64, t);
                }
                Inst::MovdqaRR { dst, src } => {
                    let v = regs.xmm(src);
                    regs.set_xmm(dst, v);
                    let bit = 1u16 << dst.index();
                    if xtaint & (1u16 << src.index()) != 0 {
                        xtaint |= bit;
                    } else {
                        xtaint &= !bit;
                    }
                }
                Inst::Nop => {}
            }
            pc = next;
        }
    }

    #[inline]
    fn ea(&self, mem: &crate::Mem) -> u64 {
        mem.effective_addr(|r| self.regs.gpr(r), |s| self.regs.seg_base(s))
    }

    #[inline]
    fn data_access(&mut self, stats: &mut RunStats, ea: u64, len: u64) -> f64 {
        let misses = self.dcache.access_range(ea, len);
        stats.dcache_misses += u64::from(misses);
        f64::from(misses) * self.cost.dcache_miss_cycles
    }

    /// Exposed-latency charge for load-like instructions.
    #[inline]
    fn load_latency(&self) -> f64 {
        self.cost.load_cycles
    }

    fn resolve(&self, prog: &Program, target: crate::Label) -> Result<usize, Trap> {
        prog.resolve(target).ok_or(Trap::BadControlFlow { target: u64::from(target.0) })
    }

    /// Pure shift: `a` shifted/rotated by the pre-masked amount `n`.
    fn shift_compute(op: ShiftOp, a: u64, n: u32, width: Width) -> u64 {
        let bits = width.bytes() as u32 * 8;
        let r = match op {
            ShiftOp::Shl => a.wrapping_shl(n),
            ShiftOp::Shr => a.wrapping_shr(n),
            ShiftOp::Sar => (width.sext(a) as i64).wrapping_shr(n) as u64,
            ShiftOp::Rol => {
                if n == 0 {
                    a
                } else {
                    (a << n | a >> (bits - n)) & width.mask(u64::MAX)
                }
            }
            ShiftOp::Ror => {
                if n == 0 {
                    a
                } else {
                    (a >> n | a << (bits - n)) & width.mask(u64::MAX)
                }
            }
        };
        width.mask(r)
    }

    /// Pure ALU: result and flags, no machine state touched (shared between
    /// the architectural path and the transient wrong-path interpreter).
    fn alu_compute(op: AluOp, a: u64, b: u64, width: Width) -> (u64, Flags) {
        let sign = width.sign_bit();
        let (r, cf, of) = match op {
            AluOp::Add => {
                let r = width.mask(a.wrapping_add(b));
                let cf = r < a;
                let of = ((a ^ r) & (b ^ r)) >> sign & 1 == 1;
                (r, cf, of)
            }
            AluOp::Sub | AluOp::Cmp => {
                let r = width.mask(a.wrapping_sub(b));
                let cf = a < b;
                let of = ((a ^ b) & (a ^ r)) >> sign & 1 == 1;
                (r, cf, of)
            }
            AluOp::And => (a & b, false, false),
            AluOp::Or => (a | b, false, false),
            AluOp::Xor => (a ^ b, false, false),
        };
        (r, Flags { zf: r == 0, sf: r >> sign & 1 == 1, cf, of })
    }

    fn alu(&mut self, op: AluOp, a: u64, b: u64, width: Width) -> u64 {
        let (r, flags) = Self::alu_compute(op, a, b, width);
        self.regs.flags = flags;
        r
    }

    fn div(&mut self, src: Gpr, width: Width, signed: bool) -> Result<(), Trap> {
        let d = width.mask(self.regs.gpr(src));
        if d == 0 {
            return Err(Trap::DivideError);
        }
        match width {
            Width::Q => {
                let lo = self.regs.gpr(Gpr::Rax) as u128;
                let hi = self.regs.gpr(Gpr::Rdx) as u128;
                let dividend = (hi << 64) | lo;
                if signed {
                    let dividend = dividend as i128;
                    let divisor = self.regs.gpr(src) as i64 as i128;
                    let q = dividend / divisor;
                    let r = dividend % divisor;
                    if q > i64::MAX as i128 || q < i64::MIN as i128 {
                        return Err(Trap::DivideError);
                    }
                    self.regs.set_gpr(Gpr::Rax, q as u64);
                    self.regs.set_gpr(Gpr::Rdx, r as u64);
                } else {
                    let divisor = self.regs.gpr(src) as u128;
                    let q = dividend / divisor;
                    if q > u64::MAX as u128 {
                        return Err(Trap::DivideError);
                    }
                    self.regs.set_gpr(Gpr::Rax, q as u64);
                    self.regs.set_gpr(Gpr::Rdx, (dividend % divisor) as u64);
                }
            }
            _ => {
                let bits = width.bytes() as u32 * 8;
                let lo = width.mask(self.regs.gpr(Gpr::Rax));
                let hi = width.mask(self.regs.gpr(Gpr::Rdx));
                let dividend = (u128::from(hi) << bits) | u128::from(lo);
                if signed {
                    let shift = 128 - 2 * bits;
                    let dividend = ((dividend << shift) as i128) >> shift;
                    let divisor = i128::from(width.sext(d) as i64);
                    let q = dividend / divisor;
                    let r = dividend % divisor;
                    let min = -(1i128 << (bits - 1));
                    let max = (1i128 << (bits - 1)) - 1;
                    if q < min || q > max {
                        return Err(Trap::DivideError);
                    }
                    self.regs.write_width(Gpr::Rax, width, width.mask(q as u64));
                    self.regs.write_width(Gpr::Rdx, width, width.mask(r as u64));
                } else {
                    let divisor = u128::from(d);
                    let q = dividend / divisor;
                    if q >> bits != 0 {
                        return Err(Trap::DivideError);
                    }
                    self.regs.write_width(Gpr::Rax, width, q as u64);
                    self.regs.write_width(Gpr::Rdx, width, (dividend % divisor) as u64);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mem;

    fn run_prog(p: &Program, mem_size: usize) -> (Machine, FlatMemory, RunStats) {
        let mut mem = FlatMemory::new(mem_size);
        let mut m = Machine::new();
        let image = Image::load(p.clone()).unwrap();
        let stats = m.run_image(&image, &mut mem).unwrap();
        (m, mem, stats)
    }

    #[test]
    fn mov_and_alu() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 40, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 2, width: Width::Q });
        p.push(Inst::AluRR { op: AluOp::Add, dst: Gpr::Rax, src: Gpr::Rbx, width: Width::Q });
        p.push(Inst::Ret);
        let (m, _, stats) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rax), 42);
        assert_eq!(stats.insts, 4);
        assert!(stats.cycles > 0.0);
    }

    #[test]
    fn thirty_two_bit_writes_zero_extend() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: -1, width: Width::Q });
        p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rax, imm: 1, width: Width::D });
        p.push(Inst::Ret);
        let (m, _, _) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rax), 0, "32-bit add must zero the upper half");
    }

    #[test]
    fn loop_counts_and_branch_prediction_warms_up() {
        // for (rcx = 100; rcx != 0; rcx--) {}
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rcx, imm: 100, width: Width::Q });
        let top = p.here();
        p.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Rcx, imm: 1, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::Ne, target: top });
        p.push(Inst::Ret);
        let (_, _, stats) = run_prog(&p, 64);
        assert_eq!(stats.insts, 1 + 200 + 1);
        assert_eq!(stats.branches, 100);
        assert!(stats.branch_misses <= 3, "predictor should saturate: {}", stats.branch_misses);
    }

    #[test]
    fn segment_relative_load_uses_gs_base() {
        let mut p = Program::new();
        // gs:[ebx] with gs_base = 0x100, rbx = 8 → address 0x108.
        p.push(Inst::Load {
            dst: Gpr::Rax,
            mem: Mem::base(Gpr::Rbx).with_seg(Seg::Gs).with_addr32(),
            width: Width::Q,
        });
        p.push(Inst::Ret);
        let mut mem = FlatMemory::new(0x200);
        mem.bytes_mut()[0x108..0x110].copy_from_slice(&0xDEADu64.to_le_bytes());
        let mut m = Machine::new();
        m.regs.gs_base = 0x100;
        m.set_gpr(Gpr::Rbx, 8);
        let image = Image::load(p).unwrap();
        m.run_image(&image, &mut mem).unwrap();
        assert_eq!(m.gpr(Gpr::Rax), 0xDEAD);
    }

    #[test]
    fn addr32_wraps_index_before_gs() {
        let mut p = Program::new();
        p.push(Inst::Load {
            dst: Gpr::Rax,
            mem: Mem::base_disp(Gpr::Rbx, 0x10).with_seg(Seg::Gs).with_addr32(),
            width: Width::B,
        });
        p.push(Inst::Ret);
        let mut mem = FlatMemory::new(0x200);
        mem.bytes_mut()[0x100 + 0x0F] = 0x77;
        let mut m = Machine::new();
        m.regs.gs_base = 0x100;
        // rbx = 2^32 - 1; (rbx + 0x10) mod 2^32 = 0xF.
        m.set_gpr(Gpr::Rbx, 0xFFFF_FFFF);
        let image = Image::load(p).unwrap();
        m.run_image(&image, &mut mem).unwrap();
        assert_eq!(m.gpr(Gpr::Rax) & 0xFF, 0x77);
    }

    #[test]
    fn division_signed_and_unsigned() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: -7, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 2, width: Width::Q });
        p.push(Inst::Cdq { width: Width::Q });
        p.push(Inst::Div { src: Gpr::Rbx, width: Width::Q, signed: true });
        p.push(Inst::Ret);
        let (m, _, _) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rax) as i64, -3);
        assert_eq!(m.gpr(Gpr::Rdx) as i64, -1);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 1, width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rdx, imm: 0, width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::D });
        p.push(Inst::Div { src: Gpr::Rbx, width: Width::D, signed: false });
        p.push(Inst::Ret);
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        let image = Image::load(p).unwrap();
        assert_eq!(m.run_image(&image, &mut mem), Err(Trap::DivideError));
    }

    #[test]
    fn div32_uses_edx_eax() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 100, width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rdx, imm: 0, width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 7, width: Width::D });
        p.push(Inst::Div { src: Gpr::Rbx, width: Width::D, signed: false });
        p.push(Inst::Ret);
        let (m, _, _) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rax), 14);
        assert_eq!(m.gpr(Gpr::Rdx), 2);
    }

    #[test]
    fn ud2_traps() {
        let mut p = Program::new();
        p.push(Inst::Ud2);
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        let image = Image::load(p).unwrap();
        assert_eq!(m.run_image(&image, &mut mem), Err(Trap::Undefined));
    }

    #[test]
    fn call_and_ret() {
        let mut p = Program::new();
        let f = p.fresh_label();
        p.push(Inst::Call { target: f });
        p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rax, imm: 1, width: Width::Q });
        p.push(Inst::Ret); // outer return
        p.bind(f);
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 10, width: Width::Q });
        p.push(Inst::Ret);
        let (m, _, _) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rax), 11);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rsp, imm: 64, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 0x1234, width: Width::Q });
        p.push(Inst::Push { reg: Gpr::Rax });
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 0, width: Width::Q });
        p.push(Inst::Pop { reg: Gpr::Rbx });
        p.push(Inst::Ret);
        let (m, _, _) = run_prog(&p, 128);
        assert_eq!(m.gpr(Gpr::Rbx), 0x1234);
        assert_eq!(m.gpr(Gpr::Rsp), 64);
    }

    #[test]
    fn host_calls_are_dispatched() {
        let mut p = Program::new();
        p.push(Inst::CallHost { func: 7 });
        p.push(Inst::Ret);
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        let image = Image::load(p).unwrap();
        let mut seen = Vec::new();
        let stats = m
            .run_image_with_host(&image, &mut mem, &mut |f, regs, _| {
                seen.push(f);
                regs.set_gpr(Gpr::Rax, 99);
                Ok(0.0)
            })
            .unwrap();
        assert_eq!(seen, vec![7]);
        assert_eq!(m.gpr(Gpr::Rax), 99);
        assert_eq!(stats.host_calls, 1);
    }

    #[test]
    fn forbidden_system_instructions_trap() {
        let mut p = Program::new();
        p.push(Inst::WrPkru);
        p.push(Inst::Ret);
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        m.forbid_system_instructions();
        let image = Image::load(p).unwrap();
        assert_eq!(m.run_image(&image, &mut mem), Err(Trap::PrivilegedInstruction));
    }

    #[test]
    fn wrpkru_updates_pkru_and_costs_cycles() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 0b1100, width: Width::D });
        p.push(Inst::Ret);
        let mut pk = Program::new();
        pk.push(Inst::MovRI { dst: Gpr::Rax, imm: 0b1100, width: Width::D });
        pk.push(Inst::WrPkru);
        pk.push(Inst::Ret);
        let (_, _, s_plain) = run_prog(&p, 64);
        let (m, _, s_pkru) = run_prog(&pk, 64);
        assert_eq!(m.regs.pkru, 0b1100);
        let delta = s_pkru.cycles - s_plain.cycles;
        assert!(delta >= CostModel::default().wrpkru_cycles, "wrpkru must be expensive: {delta}");
    }

    #[test]
    fn fuel_exhaustion() {
        let mut p = Program::new();
        let top = p.here();
        p.push(Inst::Jmp { target: top });
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        m.set_fuel(1000);
        let image = Image::load(p).unwrap();
        assert_eq!(m.run_image(&image, &mut mem), Err(Trap::FuelExhausted));
    }

    #[test]
    fn indirect_jump_via_register() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 3, width: Width::Q }); // 0
        p.push(Inst::JmpReg { reg: Gpr::Rax }); // 1
        p.push(Inst::Ud2); // 2 — skipped
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 5, width: Width::Q }); // 3
        p.push(Inst::Ret); // 4
        let (m, _, _) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rbx), 5);
    }

    #[test]
    fn indirect_jump_out_of_range_traps() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 1000, width: Width::Q });
        p.push(Inst::JmpReg { reg: Gpr::Rax });
        let mut mem = FlatMemory::new(64);
        let mut m = Machine::new();
        let image = Image::load(p).unwrap();
        assert!(matches!(
            m.run_image(&image, &mut mem),
            Err(Trap::BadControlFlow { target: 1000 })
        ));
    }

    #[test]
    fn simd_roundtrip() {
        let mut p = Program::new();
        p.push(Inst::MovdquLoad { dst: crate::Xmm(0), mem: Mem::abs(0x10) });
        p.push(Inst::MovdqaRR { dst: crate::Xmm(1), src: crate::Xmm(0) });
        p.push(Inst::MovdquStore { src: crate::Xmm(1), mem: Mem::abs(0x30) });
        p.push(Inst::Ret);
        let mut mem = FlatMemory::new(0x100);
        for i in 0..16 {
            mem.bytes_mut()[0x10 + i] = i as u8;
        }
        let mut m = Machine::new();
        let image = Image::load(p).unwrap();
        m.run_image(&image, &mut mem).unwrap();
        assert_eq!(&mem.bytes()[0x30..0x40], &(0..16).map(|i| i as u8).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn dcache_misses_counted() {
        // Stride through 256 KiB — guaranteed misses with a 48 KiB L1D.
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rcx, imm: 4096, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::Q });
        let top = p.here();
        p.push(Inst::Load {
            dst: Gpr::Rax,
            mem: Mem::base(Gpr::Rbx),
            width: Width::Q,
        });
        p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rbx, imm: 64, width: Width::Q });
        p.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Rcx, imm: 1, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::Ne, target: top });
        p.push(Inst::Ret);
        let (_, _, stats) = run_prog(&p, 4096 * 64);
        assert_eq!(stats.loads, 4096);
        assert!(stats.dcache_misses >= 4000, "cold strides must miss: {}", stats.dcache_misses);
    }

    #[test]
    fn cmov_and_setcc() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 5, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 9, width: Width::Q });
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::Rax, src: Gpr::Rbx, width: Width::Q });
        p.push(Inst::Cmov { cond: Cond::L, dst: Gpr::Rax, src: Gpr::Rbx, width: Width::Q });
        p.push(Inst::Setcc { cond: Cond::L, dst: Gpr::Rcx });
        p.push(Inst::Ret);
        let (m, _, _) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rax), 9);
        assert_eq!(m.gpr(Gpr::Rcx), 1);
    }

    /// A classic Spectre-v1 shape: a bounds check (`cmp; ja`) trained
    /// in-bounds for 15 trips, then fed a secret-region offset on the last
    /// trip. Architecturally the body is skipped; transiently the load at
    /// the secret offset and the dependent probe both execute.
    fn spectre_gadget(with_fence: bool) -> Program {
        let mut p = Program::new();
        let top = p.fresh_label();
        let oob = p.fresh_label();
        p.push(Inst::MovRI { dst: Gpr::Rdx, imm: 0x1000, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rcx, imm: 16, width: Width::Q });
        p.bind(top);
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 8, width: Width::Q });
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rcx, imm: 1, width: Width::Q });
        p.push(Inst::Cmov { cond: Cond::E, dst: Gpr::Rbx, src: Gpr::Rdx, width: Width::Q });
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rbx, imm: 16, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::A, target: oob });
        if with_fence {
            p.push(Inst::Lfence);
        }
        p.push(Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::Rbx), width: Width::B });
        p.push(Inst::Shift {
            op: ShiftOp::Shl,
            dst: Gpr::Rax,
            amount: ShiftAmount::Imm(6),
            width: Width::Q,
        });
        p.push(Inst::Load { dst: Gpr::R8, mem: Mem::base_disp(Gpr::Rax, 0x200), width: Width::Q });
        p.bind(oob);
        p.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Rcx, imm: 1, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::Ne, target: top });
        p.push(Inst::Ret);
        p
    }

    fn spec_cfg() -> SpecConfig {
        SpecConfig::new(SpecConfig::DEFAULT_WINDOW, 0x1000, 0x1040).unwrap()
    }

    #[test]
    fn spec_config_rejects_degenerate() {
        assert_eq!(SpecConfig::new(0, 0, 0x100), Err(SpecError::ZeroWindow));
        assert_eq!(SpecConfig::new(32, 0x100, 0x100), Err(SpecError::EmptySecretRegion));
        assert_eq!(SpecConfig::new(32, 0x200, 0x100), Err(SpecError::EmptySecretRegion));
    }

    #[test]
    fn spec_config_clamps_window() {
        assert_eq!(SpecConfig::DEFAULT_WINDOW, 32);
        let cfg = SpecConfig::new(1000, 0, 0x100).unwrap();
        assert_eq!(cfg.window(), SpecConfig::MAX_WINDOW);
        assert_eq!(SpecConfig::new(1, 0, 0x100).unwrap().window(), 1);
    }

    #[test]
    fn bounds_check_bypass_leaks_transiently() {
        let p = spectre_gadget(false);
        let mut mem = FlatMemory::new(0x20000);
        let mut m = Machine::new();
        m.enable_speculation(spec_cfg());
        let image = Image::load(p).unwrap();
        let stats = m.run_image(&image, &mut mem).unwrap();
        assert!(stats.spec_flushes > 0, "mispredict must open a window");
        assert!(stats.spec_uops > 0);
        assert!(stats.spec_leaks > 0, "secret-derived probe address must be flagged");
        // Spec buckets are pure counters: the exact-sum invariant holds.
        assert_eq!(stats.attributed_cycles(), stats.cycles);
    }

    #[test]
    fn lfence_closes_the_window() {
        let p = spectre_gadget(true);
        let mut mem = FlatMemory::new(0x20000);
        let mut m = Machine::new();
        m.enable_speculation(spec_cfg());
        let image = Image::load(p).unwrap();
        let stats = m.run_image(&image, &mut mem).unwrap();
        assert!(stats.spec_flushes > 0, "the mispredict still happens");
        assert_eq!(stats.spec_leaks, 0, "the fence must stop the transient load");
    }

    #[test]
    fn speculation_rolls_back_architectural_state() {
        let p = spectre_gadget(false);
        let image = Image::load(p).unwrap();
        let run = |spec: Option<SpecConfig>| {
            let mut mem = FlatMemory::new(0x20000);
            let mut m = Machine::new();
            if let Some(cfg) = spec {
                m.enable_speculation(cfg);
            }
            m.run_image(&image, &mut mem).unwrap();
            (m, mem)
        };
        let (m_off, mem_off) = run(None);
        let (m_on, mem_on) = run(Some(spec_cfg()));
        for r in Gpr::ALL {
            assert_eq!(m_off.gpr(r), m_on.gpr(r), "gpr {r:?} must roll back");
        }
        assert_eq!(m_off.regs.flags, m_on.regs.flags);
        assert_eq!(mem_off.bytes(), mem_on.bytes(), "spec stores must never hit memory");
    }

    #[test]
    fn speculation_disabled_is_bit_identical() {
        let p = spectre_gadget(false);
        let image = Image::load(p).unwrap();
        let mut mem = FlatMemory::new(0x20000);
        let mut m = Machine::new();
        let base = m.run_image(&image, &mut mem).unwrap();
        assert_eq!(base.spec_flushes, 0);
        assert_eq!(base.spec_uops, 0);
        assert_eq!(base.spec_leaks, 0);
    }

    #[test]
    fn flags_unsigned_compare() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 1, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: -1, width: Width::Q }); // u64::MAX
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::Rax, src: Gpr::Rbx, width: Width::Q });
        p.push(Inst::Setcc { cond: Cond::B, dst: Gpr::Rcx }); // 1 < MAX unsigned
        p.push(Inst::Setcc { cond: Cond::G, dst: Gpr::Rdx }); // 1 > -1 signed
        p.push(Inst::Ret);
        let (m, _, _) = run_prog(&p, 64);
        assert_eq!(m.gpr(Gpr::Rcx), 1);
        assert_eq!(m.gpr(Gpr::Rdx), 1);
    }
}
