//! # sfi-x86: an x86-64 subset model for SFI research
//!
//! This crate models the slice of the x86-64 architecture that matters for
//! software-based fault isolation (SFI) research, as used by the Segue &
//! ColorGuard reproduction:
//!
//! - [`Gpr`], [`Seg`], [`Mem`]: registers and addressing modes, including the
//!   `%gs`/`%fs` segment overrides and the address-size override that Segue
//!   relies on (§3.1 of the paper).
//! - [`Inst`] and [`Program`]: an instruction set rich enough to express the
//!   code that Wasm/SFI compilers emit (ALU, loads/stores, `lea`, branches,
//!   calls, 128-bit SIMD moves, `wrgsbase`, `wrpkru`).
//! - [`encode`]: a byte-accurate encoder. Segue's costs are partly *encoding*
//!   costs (the one-byte `gs` prefix, the one-byte address-size override), so
//!   instruction lengths here are real x86-64 lengths, not estimates.
//! - [`emu::Machine`]: a deterministic emulator that executes programs,
//!   counts instructions, simulates an L1 instruction and data cache, and
//!   charges cycles through a documented, tunable [`cost::CostModel`].
//!
//! The emulator is *deterministic and observable*: every figure in the paper
//! reproduction is derived from exact instruction/byte/miss counts rather
//! than wall-clock noise.
//!
//! ## Example
//!
//! ```
//! use sfi_x86::{Gpr, Inst, Mem, Program, Width};
//! use sfi_x86::emu::{FlatMemory, Machine};
//!
//! // mov rax, 7 ; mov [0x100], rax ; mov rbx, [0x100] ; ret
//! let mut p = Program::new();
//! p.push(Inst::MovRI { dst: Gpr::Rax, imm: 7, width: Width::Q });
//! p.push(Inst::Store { src: Gpr::Rax, mem: Mem::abs(0x100), width: Width::Q });
//! p.push(Inst::Load { dst: Gpr::Rbx, mem: Mem::abs(0x100), width: Width::Q });
//! p.push(Inst::Ret);
//!
//! let mut mem = FlatMemory::new(0x1000);
//! let mut m = Machine::new();
//! m.run(&p, &mut mem).unwrap();
//! assert_eq!(m.gpr(Gpr::Rbx), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod emu;
pub mod encode;

pub use inst::{AluOp, ShiftAmount, ShiftOp};

mod addr;
pub mod inst;
mod program;
mod reg;

pub use addr::{Mem, Scale};
pub use inst::{Cond, Inst, Width};
pub use program::{Label, Program, Provenance};
pub use reg::{Gpr, Seg, Xmm};

/// A fault raised by a memory access during emulation.
///
/// This is the architectural trap surface that SFI schemes rely on: guard
/// regions raise [`MemFault::Unmapped`], MPK striping raises
/// [`MemFault::PkuViolation`], MTE raises [`MemFault::MteTagMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MemFault {
    /// Access to a virtual address with no mapping (page fault on an
    /// unmapped page, e.g. a guard region).
    Unmapped {
        /// The faulting virtual address.
        addr: u64,
    },
    /// Access denied by page permissions (e.g. write to a read-only page,
    /// or any access to a `PROT_NONE` guard page).
    Protection {
        /// The faulting virtual address.
        addr: u64,
    },
    /// Access to a page whose MPK color is not enabled in the current PKRU.
    PkuViolation {
        /// The faulting virtual address.
        addr: u64,
        /// The protection key (color) of the page.
        key: u8,
    },
    /// ARM-MTE-style tag mismatch: the pointer's tag does not match the
    /// granule's memory tag.
    MteTagMismatch {
        /// The faulting virtual address.
        addr: u64,
        /// Tag carried in the pointer's top byte.
        ptr_tag: u8,
        /// Tag stored for the granule.
        mem_tag: u8,
    },
    /// Access outside the bounds of a flat test memory.
    OutOfRange {
        /// The faulting virtual address.
        addr: u64,
    },
}

impl core::fmt::Display for MemFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            MemFault::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemFault::Protection { addr } => write!(f, "protection violation at {addr:#x}"),
            MemFault::PkuViolation { addr, key } => {
                write!(f, "MPK violation at {addr:#x} (page key {key})")
            }
            MemFault::MteTagMismatch { addr, ptr_tag, mem_tag } => write!(
                f,
                "MTE tag mismatch at {addr:#x} (pointer tag {ptr_tag:#x}, memory tag {mem_tag:#x})"
            ),
            MemFault::OutOfRange { addr } => write!(f, "address {addr:#x} out of range"),
        }
    }
}

impl std::error::Error for MemFault {}

/// A reason emulation stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// A memory access faulted.
    Mem(MemFault),
    /// Division by zero or signed overflow in `div`/`idiv`.
    DivideError,
    /// An explicit `ud2` (used by SFI bounds-check failure paths).
    Undefined,
    /// The program ran past its instruction budget (likely an infinite loop).
    FuelExhausted,
    /// A branch target or call target was out of range.
    BadControlFlow {
        /// The offending target (label id or instruction index).
        target: u64,
    },
    /// `wrpkru`/`wrgsbase` executed while the machine forbids them (models a
    /// sandbox that must not contain these instructions).
    PrivilegedInstruction,
}

impl core::fmt::Display for Trap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Trap::Mem(m) => write!(f, "memory fault: {m}"),
            Trap::DivideError => write!(f, "divide error"),
            Trap::Undefined => write!(f, "undefined instruction (ud2)"),
            Trap::FuelExhausted => write!(f, "instruction budget exhausted"),
            Trap::BadControlFlow { target } => write!(f, "bad control-flow target {target}"),
            Trap::PrivilegedInstruction => write!(f, "forbidden privileged instruction"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<MemFault> for Trap {
    fn from(value: MemFault) -> Self {
        Trap::Mem(value)
    }
}
