//! Byte-accurate x86-64 machine-code encoding.
//!
//! Segue's trade-offs are partly *encoding* trade-offs: the `gs` segment
//! override and the address-size override each cost one prefix byte on every
//! sandboxed memory access, while eliminating a whole extra instruction
//! (4–5 bytes) in the common case. Table 2 of the paper (binary-size
//! reduction) and the 473_astar outlier (i-cache pressure from longer loads)
//! both hinge on real instruction lengths, so this module implements genuine
//! x86-64 encoding: legacy prefixes, REX, ModRM/SIB, displacement and
//! immediate size selection, and short/near branch relaxation.
//!
//! ```
//! use sfi_x86::{Gpr, Inst, Mem, Seg, Width};
//! use sfi_x86::encode::encode_inst;
//!
//! // Figure 1c, pattern 1: mov r10, gs:[ebx]  — five bytes.
//! let seg_load = Inst::Load {
//!     dst: Gpr::R10,
//!     mem: Mem::base(Gpr::Rbx).with_seg(Seg::Gs).with_addr32(),
//!     width: Width::Q,
//! };
//! assert_eq!(encode_inst(&seg_load).unwrap(), vec![0x65, 0x67, 0x4C, 0x8B, 0x13]);
//! ```

use crate::inst::{AluOp, ShiftAmount, ShiftOp};
use crate::{Cond, Gpr, Inst, Label, Mem, Program, Width};

/// An encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// `%rsp` cannot be used as an index register.
    RspIndex,
    /// A branch referenced an unbound label.
    UnboundLabel(Label),
    /// An immediate did not fit the encodable range for the instruction.
    ImmediateOutOfRange(i64),
}

impl core::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EncodeError::RspIndex => f.write_str("%rsp cannot be an index register"),
            EncodeError::UnboundLabel(l) => write!(f, "unbound label {l}"),
            EncodeError::ImmediateOutOfRange(v) => write!(f, "immediate {v} out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// A fully encoded program.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The machine-code bytes.
    pub bytes: Vec<u8>,
    /// Byte offset of each instruction (same indexing as `Program::insts`).
    pub offsets: Vec<u32>,
}

impl Encoded {
    /// Total code size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the code is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The length in bytes of instruction `i`.
    pub fn inst_len(&self, i: usize) -> usize {
        let start = self.offsets[i] as usize;
        let end = self.offsets.get(i + 1).map_or(self.bytes.len(), |&o| o as usize);
        end - start
    }
}

struct Enc {
    bytes: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { bytes: Vec::with_capacity(8) }
    }

    fn b(&mut self, byte: u8) -> &mut Self {
        self.bytes.push(byte);
        self
    }

    fn imm8(&mut self, v: i8) -> &mut Self {
        self.bytes.push(v as u8);
        self
    }

    fn imm16(&mut self, v: i16) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn imm32(&mut self, v: i32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn imm64(&mut self, v: i64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Emits legacy prefixes for a memory operand (segment, address-size)
    /// plus the operand-size prefix for 16-bit operations.
    fn legacy_prefixes(&mut self, mem: Option<&Mem>, width: Option<Width>) -> &mut Self {
        if let Some(m) = mem {
            if let Some(seg) = m.seg {
                self.b(seg.prefix_byte());
            }
            if m.addr32 {
                self.b(0x67);
            }
        }
        if width == Some(Width::W) {
            self.b(0x66);
        }
        self
    }

    /// Emits a REX prefix if needed. `reg`/`index`/`base` are the extension
    /// bits for the ModRM.reg, SIB.index and ModRM.rm/SIB.base fields.
    fn rex(&mut self, w: bool, r: bool, x: bool, b: bool, force: bool) -> &mut Self {
        if w || r || x || b || force {
            self.b(0x40 | (w as u8) << 3 | (r as u8) << 2 | (x as u8) << 1 | b as u8);
        }
        self
    }

    /// Emits ModRM (+ SIB + displacement) addressing `mem` with `reg_field`
    /// in ModRM.reg.
    fn modrm_mem(&mut self, reg_field: u8, mem: &Mem) -> Result<&mut Self, EncodeError> {
        let reg = reg_field & 7;
        match (mem.base, mem.index) {
            (None, None) => {
                // [disp32] — encoded as SIB with no base, no index.
                self.b(reg << 3 | 0b100);
                self.b(0x25); // scale=0, index=100 (none), base=101 (disp32)
                self.imm32(mem.disp);
            }
            (Some(base), None) => {
                let bb = (base.index() as u8) & 7;
                let (modbits, disp_len) = disp_mode(mem.disp, base);
                if bb == 0b100 {
                    // rsp/r12 as base requires SIB.
                    self.b(modbits << 6 | reg << 3 | 0b100);
                    self.b(0x24); // scale=0, index=none, base=rsp
                } else {
                    self.b(modbits << 6 | reg << 3 | bb);
                }
                self.emit_disp(mem.disp, disp_len);
            }
            (base, Some((index, scale))) => {
                if index == Gpr::Rsp {
                    return Err(EncodeError::RspIndex);
                }
                let xi = (index.index() as u8) & 7;
                match base {
                    Some(b) => {
                        let bb = (b.index() as u8) & 7;
                        let (modbits, disp_len) = disp_mode(mem.disp, b);
                        self.b(modbits << 6 | reg << 3 | 0b100);
                        self.b(scale.sib_bits() << 6 | xi << 3 | bb);
                        self.emit_disp(mem.disp, disp_len);
                    }
                    None => {
                        // No base: mod=00, SIB.base=101 → disp32 always.
                        self.b(reg << 3 | 0b100);
                        self.b(scale.sib_bits() << 6 | xi << 3 | 0b101);
                        self.imm32(mem.disp);
                    }
                }
            }
        }
        Ok(self)
    }

    fn emit_disp(&mut self, disp: i32, len: u8) {
        match len {
            0 => {}
            1 => {
                self.imm8(disp as i8);
            }
            4 => {
                self.imm32(disp);
            }
            _ => unreachable!(),
        }
    }

    /// ModRM for a register r/m operand.
    fn modrm_reg(&mut self, reg_field: u8, rm: u8) -> &mut Self {
        self.b(0b11 << 6 | (reg_field & 7) << 3 | (rm & 7))
    }
}

/// Displacement mode for `[base + disp]`: returns (mod bits, disp length).
fn disp_mode(disp: i32, base: Gpr) -> (u8, u8) {
    // mod=00 with rm=101 (rbp/r13) means RIP-relative / disp32-no-base, so
    // those bases always need at least a disp8.
    let base_is_bp = matches!(base, Gpr::Rbp | Gpr::R13);
    if disp == 0 && !base_is_bp {
        (0b00, 0)
    } else if (-128..=127).contains(&disp) {
        (0b01, 1)
    } else {
        (0b10, 4)
    }
}

fn mem_rex_bits(mem: &Mem) -> (bool, bool) {
    let x = mem.index.is_some_and(|(i, _)| i.needs_rex_bit());
    let b = mem.base.is_some_and(Gpr::needs_rex_bit);
    (x, b)
}

/// REX is forced for 8-bit access to spl/bpl/sil/dil.
fn byte_reg_forces_rex(width: Width, reg: Gpr) -> bool {
    width == Width::B && matches!(reg, Gpr::Rsp | Gpr::Rbp | Gpr::Rsi | Gpr::Rdi)
}

/// Encodes a single non-relative instruction into bytes.
///
/// Branches and calls are encoded with their largest (near, rel32) form;
/// use [`encode_program`] to get relaxed (short where possible) encodings.
pub fn encode_inst(inst: &Inst) -> Result<Vec<u8>, EncodeError> {
    encode_with(inst, |_| 0x7FFF_FFFF)
}

/// Encodes one instruction, resolving branch targets through `target_disp`
/// (which maps a label to the rel32 displacement from the *end* of this
/// instruction, assuming its near form).
fn encode_with(inst: &Inst, target_disp: impl Fn(Label) -> i64) -> Result<Vec<u8>, EncodeError> {
    let mut e = Enc::new();
    match *inst {
        Inst::MovRR { dst, src, width } => {
            e.legacy_prefixes(None, Some(width));
            let force = byte_reg_forces_rex(width, dst) || byte_reg_forces_rex(width, src);
            e.rex(width == Width::Q, src.needs_rex_bit(), false, dst.needs_rex_bit(), force);
            e.b(if width == Width::B { 0x88 } else { 0x89 });
            e.modrm_reg(src.index() as u8, dst.index() as u8);
        }
        Inst::MovRI { dst, imm, width } => match width {
            Width::B => {
                e.rex(false, false, false, dst.needs_rex_bit(), byte_reg_forces_rex(width, dst));
                e.b(0xB0 + (dst.index() as u8 & 7)).imm8(imm as i8);
            }
            Width::W => {
                e.b(0x66);
                e.rex(false, false, false, dst.needs_rex_bit(), false);
                e.b(0xB8 + (dst.index() as u8 & 7)).imm16(imm as i16);
            }
            Width::D => {
                e.rex(false, false, false, dst.needs_rex_bit(), false);
                e.b(0xB8 + (dst.index() as u8 & 7)).imm32(imm as i32);
            }
            Width::Q => {
                if i32::try_from(imm).is_ok() {
                    // REX.W C7 /0 imm32 (sign-extended).
                    e.rex(true, false, false, dst.needs_rex_bit(), false);
                    e.b(0xC7).modrm_reg(0, dst.index() as u8).imm32(imm as i32);
                } else {
                    e.rex(true, false, false, dst.needs_rex_bit(), false);
                    e.b(0xB8 + (dst.index() as u8 & 7)).imm64(imm);
                }
            }
        },
        Inst::Load { dst, mem, width } => {
            e.legacy_prefixes(Some(&mem), Some(width));
            let (x, b) = mem_rex_bits(&mem);
            e.rex(width == Width::Q, dst.needs_rex_bit(), x, b, byte_reg_forces_rex(width, dst));
            e.b(if width == Width::B { 0x8A } else { 0x8B });
            e.modrm_mem(dst.index() as u8, &mem)?;
        }
        Inst::LoadSx { dst, mem, width } => {
            e.legacy_prefixes(Some(&mem), None);
            let (x, b) = mem_rex_bits(&mem);
            e.rex(true, dst.needs_rex_bit(), x, b, false);
            match width {
                Width::B => {
                    e.b(0x0F).b(0xBE);
                }
                Width::W => {
                    e.b(0x0F).b(0xBF);
                }
                Width::D => {
                    e.b(0x63); // movsxd
                }
                Width::Q => {
                    e.b(0x8B); // plain 64-bit load
                }
            }
            e.modrm_mem(dst.index() as u8, &mem)?;
        }
        Inst::LoadZx { dst, mem, width } => {
            e.legacy_prefixes(Some(&mem), None);
            let (x, b) = mem_rex_bits(&mem);
            e.rex(false, dst.needs_rex_bit(), x, b, false);
            match width {
                Width::B => {
                    e.b(0x0F).b(0xB6);
                }
                Width::W => {
                    e.b(0x0F).b(0xB7);
                }
                // 32-bit loads zero-extend natively: plain mov.
                Width::D | Width::Q => {
                    e.b(0x8B);
                }
            }
            e.modrm_mem(dst.index() as u8, &mem)?;
        }
        Inst::Store { src, mem, width } => {
            e.legacy_prefixes(Some(&mem), Some(width));
            let (x, b) = mem_rex_bits(&mem);
            e.rex(width == Width::Q, src.needs_rex_bit(), x, b, byte_reg_forces_rex(width, src));
            e.b(if width == Width::B { 0x88 } else { 0x89 });
            e.modrm_mem(src.index() as u8, &mem)?;
        }
        Inst::StoreImm { imm, mem, width } => {
            e.legacy_prefixes(Some(&mem), Some(width));
            let (x, b) = mem_rex_bits(&mem);
            e.rex(width == Width::Q, false, x, b, false);
            e.b(if width == Width::B { 0xC6 } else { 0xC7 });
            e.modrm_mem(0, &mem)?;
            match width {
                Width::B => {
                    e.imm8(imm as i8);
                }
                Width::W => {
                    e.imm16(imm as i16);
                }
                Width::D | Width::Q => {
                    e.imm32(imm);
                }
            }
        }
        Inst::Lea { dst, mem, width } => {
            e.legacy_prefixes(Some(&mem), None);
            let (x, b) = mem_rex_bits(&mem);
            e.rex(width == Width::Q, dst.needs_rex_bit(), x, b, false);
            e.b(0x8D);
            e.modrm_mem(dst.index() as u8, &mem)?;
        }
        Inst::Movzx { dst, src, from } => {
            e.rex(
                from != Width::D,
                dst.needs_rex_bit(),
                false,
                src.needs_rex_bit(),
                byte_reg_forces_rex(from, src),
            );
            match from {
                Width::B => {
                    e.b(0x0F).b(0xB6);
                }
                Width::W => {
                    e.b(0x0F).b(0xB7);
                }
                // movzx from 32 bits is just `mov r32, r32`.
                Width::D | Width::Q => {
                    e.b(0x8B);
                }
            }
            e.modrm_reg(dst.index() as u8, src.index() as u8);
        }
        Inst::Movsx { dst, src, from } => {
            e.rex(true, dst.needs_rex_bit(), false, src.needs_rex_bit(), false);
            match from {
                Width::B => {
                    e.b(0x0F).b(0xBE);
                }
                Width::W => {
                    e.b(0x0F).b(0xBF);
                }
                Width::D | Width::Q => {
                    e.b(0x63);
                }
            }
            e.modrm_reg(dst.index() as u8, src.index() as u8);
        }
        Inst::AluRR { op, dst, src, width } => {
            e.legacy_prefixes(None, Some(width));
            let force = byte_reg_forces_rex(width, dst) || byte_reg_forces_rex(width, src);
            e.rex(width == Width::Q, src.needs_rex_bit(), false, dst.needs_rex_bit(), force);
            let base: u8 = match op {
                AluOp::Add => 0x00,
                AluOp::Or => 0x08,
                AluOp::And => 0x20,
                AluOp::Sub => 0x28,
                AluOp::Xor => 0x30,
                AluOp::Cmp => 0x38,
            };
            e.b(base + if width == Width::B { 0 } else { 1 });
            e.modrm_reg(src.index() as u8, dst.index() as u8);
        }
        Inst::AluRI { op, dst, imm, width } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(
                width == Width::Q,
                false,
                false,
                dst.needs_rex_bit(),
                byte_reg_forces_rex(width, dst),
            );
            let ext: u8 = match op {
                AluOp::Add => 0,
                AluOp::Or => 1,
                AluOp::And => 4,
                AluOp::Sub => 5,
                AluOp::Xor => 6,
                AluOp::Cmp => 7,
            };
            if width == Width::B {
                e.b(0x80).modrm_reg(ext, dst.index() as u8).imm8(imm as i8);
            } else if (-128..=127).contains(&imm) {
                e.b(0x83).modrm_reg(ext, dst.index() as u8).imm8(imm as i8);
            } else {
                e.b(0x81).modrm_reg(ext, dst.index() as u8);
                if width == Width::W {
                    e.imm16(imm as i16);
                } else {
                    e.imm32(imm);
                }
            }
        }
        Inst::AluRM { op, dst, mem, width } => {
            e.legacy_prefixes(Some(&mem), Some(width));
            let (x, b) = mem_rex_bits(&mem);
            e.rex(width == Width::Q, dst.needs_rex_bit(), x, b, byte_reg_forces_rex(width, dst));
            let base: u8 = match op {
                AluOp::Add => 0x02,
                AluOp::Or => 0x0A,
                AluOp::And => 0x22,
                AluOp::Sub => 0x2A,
                AluOp::Xor => 0x32,
                AluOp::Cmp => 0x3A,
            };
            e.b(base + if width == Width::B { 0 } else { 1 });
            e.modrm_mem(dst.index() as u8, &mem)?;
        }
        Inst::TestRR { a, b, width } => {
            e.legacy_prefixes(None, Some(width));
            let force = byte_reg_forces_rex(width, a) || byte_reg_forces_rex(width, b);
            e.rex(width == Width::Q, b.needs_rex_bit(), false, a.needs_rex_bit(), force);
            e.b(if width == Width::B { 0x84 } else { 0x85 });
            e.modrm_reg(b.index() as u8, a.index() as u8);
        }
        Inst::Imul { dst, src, width } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(width == Width::Q, dst.needs_rex_bit(), false, src.needs_rex_bit(), false);
            e.b(0x0F).b(0xAF);
            e.modrm_reg(dst.index() as u8, src.index() as u8);
        }
        Inst::ImulRRI { dst, src, imm, width } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(width == Width::Q, dst.needs_rex_bit(), false, src.needs_rex_bit(), false);
            if (-128..=127).contains(&imm) {
                e.b(0x6B).modrm_reg(dst.index() as u8, src.index() as u8).imm8(imm as i8);
            } else {
                e.b(0x69).modrm_reg(dst.index() as u8, src.index() as u8).imm32(imm);
            }
        }
        Inst::Div { src, width, signed } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(
                width == Width::Q,
                false,
                false,
                src.needs_rex_bit(),
                byte_reg_forces_rex(width, src),
            );
            e.b(if width == Width::B { 0xF6 } else { 0xF7 });
            e.modrm_reg(if signed { 7 } else { 6 }, src.index() as u8);
        }
        Inst::Cdq { width } => {
            e.rex(width == Width::Q, false, false, false, false);
            e.b(0x99);
        }
        Inst::Shift { op, dst, amount, width } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(
                width == Width::Q,
                false,
                false,
                dst.needs_rex_bit(),
                byte_reg_forces_rex(width, dst),
            );
            let ext: u8 = match op {
                ShiftOp::Rol => 0,
                ShiftOp::Ror => 1,
                ShiftOp::Shl => 4,
                ShiftOp::Shr => 5,
                ShiftOp::Sar => 7,
            };
            match amount {
                ShiftAmount::Imm(1) => {
                    e.b(if width == Width::B { 0xD0 } else { 0xD1 });
                    e.modrm_reg(ext, dst.index() as u8);
                }
                ShiftAmount::Imm(n) => {
                    e.b(if width == Width::B { 0xC0 } else { 0xC1 });
                    e.modrm_reg(ext, dst.index() as u8).imm8(n as i8);
                }
                ShiftAmount::Cl => {
                    e.b(if width == Width::B { 0xD2 } else { 0xD3 });
                    e.modrm_reg(ext, dst.index() as u8);
                }
            }
        }
        Inst::Neg { dst, width } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(width == Width::Q, false, false, dst.needs_rex_bit(), false);
            e.b(if width == Width::B { 0xF6 } else { 0xF7 });
            e.modrm_reg(3, dst.index() as u8);
        }
        Inst::Not { dst, width } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(width == Width::Q, false, false, dst.needs_rex_bit(), false);
            e.b(if width == Width::B { 0xF6 } else { 0xF7 });
            e.modrm_reg(2, dst.index() as u8);
        }
        Inst::Cmov { cond, dst, src, width } => {
            e.legacy_prefixes(None, Some(width));
            e.rex(width == Width::Q, dst.needs_rex_bit(), false, src.needs_rex_bit(), false);
            e.b(0x0F).b(0x40 + cond_code(cond));
            e.modrm_reg(dst.index() as u8, src.index() as u8);
        }
        Inst::Setcc { cond, dst } => {
            e.rex(false, false, false, dst.needs_rex_bit(), byte_reg_forces_rex(Width::B, dst));
            e.b(0x0F).b(0x90 + cond_code(cond));
            e.modrm_reg(0, dst.index() as u8);
        }
        Inst::Jmp { target } => {
            let d = target_disp(target);
            if (-128..=127).contains(&d) {
                e.b(0xEB).imm8(d as i8);
            } else {
                e.b(0xE9).imm32(d as i32);
            }
        }
        Inst::Jcc { cond, target } => {
            let d = target_disp(target);
            if (-128..=127).contains(&d) {
                e.b(0x70 + cond_code(cond)).imm8(d as i8);
            } else {
                e.b(0x0F).b(0x80 + cond_code(cond)).imm32(d as i32);
            }
        }
        Inst::JmpReg { reg } => {
            e.rex(false, false, false, reg.needs_rex_bit(), false);
            e.b(0xFF).modrm_reg(4, reg.index() as u8);
        }
        Inst::Call { target } => {
            let d = target_disp(target);
            e.b(0xE8).imm32(d as i32);
        }
        Inst::CallReg { reg } => {
            e.rex(false, false, false, reg.needs_rex_bit(), false);
            e.b(0xFF).modrm_reg(2, reg.index() as u8);
        }
        Inst::CallHost { .. } => {
            // Modeled as `call [rip+disp32]` through the host trampoline table.
            e.b(0xFF).b(0x15).imm32(0);
        }
        Inst::Ret => {
            e.b(0xC3);
        }
        Inst::Push { reg } => {
            e.rex(false, false, false, reg.needs_rex_bit(), false);
            e.b(0x50 + (reg.index() as u8 & 7));
        }
        Inst::Pop { reg } => {
            e.rex(false, false, false, reg.needs_rex_bit(), false);
            e.b(0x58 + (reg.index() as u8 & 7));
        }
        Inst::MovdquLoad { dst, mem } => {
            if let Some(seg) = mem.seg {
                e.b(seg.prefix_byte());
            }
            if mem.addr32 {
                e.b(0x67);
            }
            e.b(0xF3);
            let (x, b) = mem_rex_bits(&mem);
            e.rex(false, dst.needs_rex_bit(), x, b, false);
            e.b(0x0F).b(0x6F);
            e.modrm_mem(dst.index() as u8, &mem)?;
        }
        Inst::MovdquStore { src, mem } => {
            if let Some(seg) = mem.seg {
                e.b(seg.prefix_byte());
            }
            if mem.addr32 {
                e.b(0x67);
            }
            e.b(0xF3);
            let (x, b) = mem_rex_bits(&mem);
            e.rex(false, src.needs_rex_bit(), x, b, false);
            e.b(0x0F).b(0x7F);
            e.modrm_mem(src.index() as u8, &mem)?;
        }
        Inst::MovdqaRR { dst, src } => {
            e.b(0x66);
            e.rex(false, dst.needs_rex_bit(), false, src.needs_rex_bit(), false);
            e.b(0x0F).b(0x6F);
            e.modrm_reg(dst.index() as u8, src.index() as u8);
        }
        Inst::WrGsBase { src } => {
            e.b(0xF3);
            e.rex(true, false, false, src.needs_rex_bit(), false);
            e.b(0x0F).b(0xAE);
            e.modrm_reg(3, src.index() as u8);
        }
        Inst::RdGsBase { dst } => {
            e.b(0xF3);
            e.rex(true, false, false, dst.needs_rex_bit(), false);
            e.b(0x0F).b(0xAE);
            e.modrm_reg(1, dst.index() as u8);
        }
        Inst::WrFsBase { src } => {
            e.b(0xF3);
            e.rex(true, false, false, src.needs_rex_bit(), false);
            e.b(0x0F).b(0xAE);
            e.modrm_reg(2, src.index() as u8);
        }
        Inst::WrPkru => {
            e.b(0x0F).b(0x01).b(0xEF);
        }
        Inst::RdPkru => {
            e.b(0x0F).b(0x01).b(0xEE);
        }
        Inst::Ud2 => {
            e.b(0x0F).b(0x0B);
        }
        Inst::Lfence => {
            e.b(0x0F).b(0xAE).b(0xE8);
        }
        Inst::Nop => {
            e.b(0x90);
        }
    }
    Ok(e.bytes)
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::E => 0x4,
        Cond::Ne => 0x5,
        Cond::L => 0xC,
        Cond::Le => 0xE,
        Cond::G => 0xF,
        Cond::Ge => 0xD,
        Cond::B => 0x2,
        Cond::Be => 0x6,
        Cond::A => 0x7,
        Cond::Ae => 0x3,
        Cond::S => 0x8,
        Cond::Ns => 0x9,
    }
}

/// Encodes a whole program with branch relaxation (short forms where the
/// displacement fits in 8 bits).
///
/// Relaxation starts from the all-near encoding and repeatedly shrinks
/// branches whose displacement fits; since shrinking only moves code closer
/// together, the iteration converges.
pub fn encode_program(p: &Program) -> Result<Encoded, EncodeError> {
    p.check_labels().map_err(EncodeError::UnboundLabel)?;
    let n = p.len();
    // Pass 1: compute instruction lengths with all-near branches.
    let mut lens: Vec<u32> = Vec::with_capacity(n);
    for inst in p.insts() {
        lens.push(encode_with(inst, |_| 0x7FFF_FFFF)?.len() as u32);
    }
    let mut offsets = prefix_offsets(&lens);

    // Iterate: re-encode branches with real displacements; lengths only
    // shrink, so this converges (bounded by instruction count).
    for _ in 0..n.max(4) {
        let mut changed = false;
        for (i, inst) in p.insts().iter().enumerate() {
            if !matches!(inst, Inst::Jmp { .. } | Inst::Jcc { .. }) {
                continue;
            }
            let end = offsets[i] + lens[i];
            let len = encode_with(inst, |l| {
                let t = p.resolve(l).expect("checked above");
                i64::from(offsets[t]) - i64::from(end)
            })?
            .len() as u32;
            if len < lens[i] {
                lens[i] = len;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        offsets = prefix_offsets(&lens);
    }

    // Final emission.
    let mut bytes = Vec::with_capacity(offsets.last().copied().unwrap_or(0) as usize);
    for (i, inst) in p.insts().iter().enumerate() {
        let end = offsets[i] + lens[i];
        let enc = encode_with(inst, |l| {
            let t = p.resolve(l).expect("checked above");
            i64::from(offsets[t]) - i64::from(end)
        })?;
        debug_assert_eq!(enc.len() as u32, lens[i], "length drift for {inst}");
        bytes.extend_from_slice(&enc);
    }
    Ok(Encoded { bytes, offsets })
}

fn prefix_offsets(lens: &[u32]) -> Vec<u32> {
    let mut offs = Vec::with_capacity(lens.len() + 1);
    let mut acc = 0u32;
    for &l in lens {
        offs.push(acc);
        acc += l;
    }
    offs.push(acc);
    offs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mem, Scale, Seg};

    fn enc(i: Inst) -> Vec<u8> {
        encode_inst(&i).unwrap()
    }

    #[test]
    fn figure1_baseline_pattern1() {
        // mov ebx, ebx (truncation)
        assert_eq!(
            enc(Inst::MovRR { dst: Gpr::Rbx, src: Gpr::Rbx, width: Width::D }),
            vec![0x89, 0xDB]
        );
        // mov r10, [rax + rbx]
        assert_eq!(
            enc(Inst::Load {
                dst: Gpr::R10,
                mem: Mem::bisd(Gpr::Rax, Gpr::Rbx, Scale::S1, 0),
                width: Width::Q
            }),
            vec![0x4C, 0x8B, 0x14, 0x18]
        );
    }

    #[test]
    fn figure1_segue_pattern1() {
        // mov r10, gs:[ebx] — one instruction, five bytes.
        assert_eq!(
            enc(Inst::Load {
                dst: Gpr::R10,
                mem: Mem::base(Gpr::Rbx).with_seg(Seg::Gs).with_addr32(),
                width: Width::Q
            }),
            vec![0x65, 0x67, 0x4C, 0x8B, 0x13]
        );
    }

    #[test]
    fn figure1_baseline_pattern2() {
        // lea edi, [rcx + rdx*4 + 8]
        assert_eq!(
            enc(Inst::Lea {
                dst: Gpr::Rdi,
                mem: Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 8),
                width: Width::D
            }),
            vec![0x8D, 0x7C, 0x91, 0x08]
        );
        // mov r11, [rax + rdi]
        assert_eq!(
            enc(Inst::Load {
                dst: Gpr::R11,
                mem: Mem::bisd(Gpr::Rax, Gpr::Rdi, Scale::S1, 0),
                width: Width::Q
            }),
            vec![0x4C, 0x8B, 0x1C, 0x38]
        );
    }

    #[test]
    fn figure1_segue_pattern2() {
        // mov r11, gs:[ecx + edx*4 + 8] — 7 bytes vs 8 for the 2-inst form.
        assert_eq!(
            enc(Inst::Load {
                dst: Gpr::R11,
                mem: Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 8)
                    .with_seg(Seg::Gs)
                    .with_addr32(),
                width: Width::Q
            }),
            vec![0x65, 0x67, 0x4C, 0x8B, 0x5C, 0x91, 0x08]
        );
    }

    #[test]
    fn rsp_base_needs_sib_and_rbp_needs_disp() {
        // mov rax, [rsp] → REX.W 8B 04 24
        assert_eq!(
            enc(Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::Rsp), width: Width::Q }),
            vec![0x48, 0x8B, 0x04, 0x24]
        );
        // mov rax, [rbp] → REX.W 8B 45 00 (mod=01 disp8=0)
        assert_eq!(
            enc(Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::Rbp), width: Width::Q }),
            vec![0x48, 0x8B, 0x45, 0x00]
        );
        // r13 behaves like rbp, r12 like rsp.
        assert_eq!(
            enc(Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::R13), width: Width::Q }),
            vec![0x49, 0x8B, 0x45, 0x00]
        );
        assert_eq!(
            enc(Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::R12), width: Width::Q }),
            vec![0x49, 0x8B, 0x04, 0x24]
        );
    }

    #[test]
    fn rsp_index_rejected() {
        let bad = Inst::Load {
            dst: Gpr::Rax,
            mem: Mem::isd(Gpr::Rsp, Scale::S2, 0),
            width: Width::Q,
        };
        assert_eq!(encode_inst(&bad), Err(EncodeError::RspIndex));
    }

    #[test]
    fn imm_width_selection() {
        // add rax, 8 → short imm8 form (83 C0 08 + REX.W).
        assert_eq!(
            enc(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rax, imm: 8, width: Width::Q }),
            vec![0x48, 0x83, 0xC0, 0x08]
        );
        // add rax, 0x1000 → imm32 form.
        assert_eq!(
            enc(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rax, imm: 0x1000, width: Width::Q }),
            vec![0x48, 0x81, 0xC0, 0x00, 0x10, 0x00, 0x00]
        );
        // mov rax, small → 7 bytes; mov rax, huge → 10 bytes.
        assert_eq!(enc(Inst::MovRI { dst: Gpr::Rax, imm: 1, width: Width::Q }).len(), 7);
        assert_eq!(
            enc(Inst::MovRI { dst: Gpr::Rax, imm: 0x1_0000_0000, width: Width::Q }).len(),
            10
        );
    }

    #[test]
    fn system_instruction_lengths() {
        assert_eq!(enc(Inst::WrPkru), vec![0x0F, 0x01, 0xEF]);
        assert_eq!(enc(Inst::RdPkru), vec![0x0F, 0x01, 0xEE]);
        assert_eq!(enc(Inst::WrGsBase { src: Gpr::Rax }).len(), 5);
        assert_eq!(enc(Inst::Ud2), vec![0x0F, 0x0B]);
    }

    #[test]
    fn branch_relaxation() {
        // A short backward loop should use the 2-byte jcc form.
        let mut p = Program::new();
        let top = p.here();
        p.push(Inst::AluRI { op: AluOp::Sub, dst: Gpr::Rcx, imm: 1, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::Ne, target: top });
        p.push(Inst::Ret);
        let e = encode_program(&p).unwrap();
        assert_eq!(e.inst_len(1), 2, "short jcc expected: {:02x?}", e.bytes);
        // sub(4) + jcc(2) + ret(1)
        assert_eq!(e.len(), 7);
        // Displacement: from end of jcc (offset 6) back to 0 → -6.
        assert_eq!(e.bytes[5] as i8, -6);
    }

    #[test]
    fn long_branches_stay_near() {
        let mut p = Program::new();
        let top = p.here();
        for _ in 0..64 {
            p.push(Inst::MovRI { dst: Gpr::Rax, imm: 0, width: Width::D });
        }
        p.push(Inst::Jmp { target: top });
        let e = encode_program(&p).unwrap();
        // 64 × 5-byte movs = 320 > 127, so the jmp must be near (5 bytes).
        assert_eq!(e.inst_len(64), 5);
    }

    #[test]
    fn offsets_are_consistent() {
        let mut p = Program::new();
        p.push(Inst::Nop);
        p.push(Inst::MovRI { dst: Gpr::R8, imm: -1, width: Width::Q });
        p.push(Inst::Ret);
        let e = encode_program(&p).unwrap();
        assert_eq!(e.offsets[0], 0);
        assert_eq!(e.inst_len(0), 1);
        assert_eq!(e.offsets[3] as usize, e.len());
    }

    #[test]
    fn segment_prefix_adds_exactly_one_byte() {
        let plain = enc(Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::Rbx), width: Width::Q });
        let seg = enc(Inst::Load {
            dst: Gpr::Rax,
            mem: Mem::base(Gpr::Rbx).with_seg(Seg::Gs),
            width: Width::Q,
        });
        assert_eq!(seg.len(), plain.len() + 1);
        assert_eq!(seg[0], 0x65);
    }
}
