//! Register definitions.

/// The sixteen x86-64 general-purpose registers.
///
/// Register numbering follows the hardware encoding (`Rax = 0` … `R15 = 15`),
/// so [`Gpr::index`] can be used directly when building REX/ModRM bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen registers, in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// The hardware encoding of this register (0–15).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with hardware encoding `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`.
    #[inline]
    pub const fn from_index(idx: usize) -> Gpr {
        Self::ALL[idx]
    }

    /// Whether encoding this register in the reg or r/m field of a 64-bit
    /// instruction needs a REX extension bit (i.e. `R8`–`R15`).
    #[inline]
    pub const fn needs_rex_bit(self) -> bool {
        (self as u8) >= 8
    }

    /// The conventional AT&T-style name of the 64-bit register.
    pub const fn name64(self) -> &'static str {
        match self {
            Gpr::Rax => "rax",
            Gpr::Rcx => "rcx",
            Gpr::Rdx => "rdx",
            Gpr::Rbx => "rbx",
            Gpr::Rsp => "rsp",
            Gpr::Rbp => "rbp",
            Gpr::Rsi => "rsi",
            Gpr::Rdi => "rdi",
            Gpr::R8 => "r8",
            Gpr::R9 => "r9",
            Gpr::R10 => "r10",
            Gpr::R11 => "r11",
            Gpr::R12 => "r12",
            Gpr::R13 => "r13",
            Gpr::R14 => "r14",
            Gpr::R15 => "r15",
        }
    }

    /// The name of the 32-bit sub-register (`eax`, `r8d`, …).
    pub fn name32(self) -> String {
        match self {
            Gpr::Rax => "eax".to_owned(),
            Gpr::Rcx => "ecx".to_owned(),
            Gpr::Rdx => "edx".to_owned(),
            Gpr::Rbx => "ebx".to_owned(),
            Gpr::Rsp => "esp".to_owned(),
            Gpr::Rbp => "ebp".to_owned(),
            Gpr::Rsi => "esi".to_owned(),
            Gpr::Rdi => "edi".to_owned(),
            other => format!("{}d", other.name64()),
        }
    }
}

impl core::fmt::Display for Gpr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name64())
    }
}

/// The two segment registers that survive in x86-64 long mode.
///
/// Segment *limits* are not enforced in long mode; only the segment *base*
/// participates in address generation, and only for `%fs`/`%gs`. Segue stores
/// the sandbox heap base here (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seg {
    /// `%fs` — conventionally reserved for thread-local storage on Linux.
    Fs,
    /// `%gs` — the register Segue uses for the linear-memory base.
    Gs,
}

impl Seg {
    /// The legacy prefix byte that selects this segment (0x64 / 0x65).
    #[inline]
    pub const fn prefix_byte(self) -> u8 {
        match self {
            Seg::Fs => 0x64,
            Seg::Gs => 0x65,
        }
    }
}

impl core::fmt::Display for Seg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Seg::Fs => "fs",
            Seg::Gs => "gs",
        })
    }
}

/// The sixteen SSE registers (used for 128-bit bulk-memory moves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xmm(pub u8);

impl Xmm {
    /// The hardware encoding of this register (0–15).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this register needs a REX extension bit.
    #[inline]
    pub const fn needs_rex_bit(self) -> bool {
        self.0 >= 8
    }
}

impl core::fmt::Display for Xmm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Gpr::from_index(i), *r);
        }
    }

    #[test]
    fn rex_bits() {
        assert!(!Gpr::Rdi.needs_rex_bit());
        assert!(Gpr::R8.needs_rex_bit());
        assert!(Xmm(9).needs_rex_bit());
        assert!(!Xmm(7).needs_rex_bit());
    }

    #[test]
    fn segment_prefixes_match_isa() {
        assert_eq!(Seg::Fs.prefix_byte(), 0x64);
        assert_eq!(Seg::Gs.prefix_byte(), 0x65);
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::Rax.to_string(), "rax");
        assert_eq!(Gpr::R10.name32(), "r10d");
        assert_eq!(Gpr::Rcx.name32(), "ecx");
        assert_eq!(Seg::Gs.to_string(), "gs");
        assert_eq!(Xmm(3).to_string(), "xmm3");
    }
}
