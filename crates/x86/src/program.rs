//! Programs: instruction sequences with resolved labels.

use crate::Inst;

/// Why an instruction exists: the attribution class the cycle profiler
/// buckets modeled cycles into.
///
/// Every instruction a compiler pushes defaults to [`Provenance::GuestCompute`];
/// the SFI compiler retags the instructions it inserts for sandboxing
/// (guards, truncations, address materialization, prologue/epilogue glue),
/// and slots the optimizing passes turn into `nop`s are retagged
/// [`Provenance::OptInserted`]. The taxonomy is the contract DESIGN.md §14
/// documents; [`Provenance::ALL`] fixes the export order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Provenance {
    /// Code the guest program asked for (the default for every push).
    #[default]
    GuestCompute,
    /// Heap bounds/masking guards, stack-limit checks, and the
    /// `call_indirect` table/signature checks.
    BoundsGuard,
    /// Address materialization the strategy could not fold into an
    /// addressing mode (the `lea` Segue's `%gs`+addr32 access eliminates).
    SegueAddressing,
    /// Deferred `i32.wrap_i64` truncations paid as `mov r32, r32`.
    Truncation,
    /// Sandbox entry/exit protocol instructions (segment setup, stack
    /// handoff) emitted in prologues and around host calls.
    TransitionGlue,
    /// Slots the optimizing tier or vectorizer rewrote to `nop`
    /// (label-stable removal leaves the slot behind).
    OptInserted,
    /// Spectre mitigation code inserted by the `MitigationLevel` passes
    /// (post-branch `lfence`s, SLH predicated masks, strengthened index
    /// masks) — the per-strategy security tax the §16 frontier measures.
    SpecMitigation,
}

impl Provenance {
    /// All classes, in the canonical export order.
    pub const ALL: [Provenance; 7] = [
        Provenance::GuestCompute,
        Provenance::BoundsGuard,
        Provenance::SegueAddressing,
        Provenance::Truncation,
        Provenance::TransitionGlue,
        Provenance::OptInserted,
        Provenance::SpecMitigation,
    ];

    /// Number of classes (the length of per-provenance bucket arrays).
    pub const COUNT: usize = 7;

    /// Stable snake_case name used in metric labels and folded stacks.
    pub fn name(self) -> &'static str {
        match self {
            Provenance::GuestCompute => "guest_compute",
            Provenance::BoundsGuard => "bounds_guard",
            Provenance::SegueAddressing => "segue_addressing",
            Provenance::Truncation => "truncation",
            Provenance::TransitionGlue => "transition_glue",
            Provenance::OptInserted => "opt_inserted",
            Provenance::SpecMitigation => "spec_mitigation",
        }
    }

    /// Index into per-provenance bucket arrays; matches [`Provenance::ALL`].
    pub fn index(self) -> usize {
        match self {
            Provenance::GuestCompute => 0,
            Provenance::BoundsGuard => 1,
            Provenance::SegueAddressing => 2,
            Provenance::Truncation => 3,
            Provenance::TransitionGlue => 4,
            Provenance::OptInserted => 5,
            Provenance::SpecMitigation => 6,
        }
    }
}

/// A branch target, resolved by the owning [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl core::fmt::Display for Label {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// A straight-line sequence of instructions plus label bindings.
///
/// Code addresses in the emulator are *instruction indices*; the
/// [`crate::encode`] module separately assigns byte offsets so that code
/// size and i-cache behaviour use real x86-64 encodings.
///
/// Labels are created with [`Program::fresh_label`] and later bound to the
/// current position with [`Program::bind`]; forward references are the norm.
#[derive(Debug, Clone, Default)]
pub struct Program {
    insts: Vec<Inst>,
    /// `labels[l] == usize::MAX` means "not yet bound".
    labels: Vec<usize>,
    /// Indirect-call table: function index → label (models the table that a
    /// Wasm engine uses for `call_indirect`).
    func_table: Vec<Label>,
    /// Attribution class per instruction, index-aligned with `insts`.
    /// Rewriting passes work in place (removals become `nop`), so the
    /// alignment survives optimization without any fixup.
    prov: Vec<Provenance>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Appends an instruction, returning its index. The instruction is
    /// tagged [`Provenance::GuestCompute`]; use [`Program::tag_last`] or
    /// [`Program::set_prov`] to reclassify SFI-inserted code.
    pub fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.prov.push(Provenance::GuestCompute);
        self.insts.len() - 1
    }

    /// Retags the last `n` pushed instructions with `prov`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` instructions exist.
    pub fn tag_last(&mut self, n: usize, prov: Provenance) {
        assert!(n <= self.prov.len(), "tag_last({n}) on {} insts", self.prov.len());
        let start = self.prov.len() - n;
        for slot in &mut self.prov[start..] {
            *slot = prov;
        }
    }

    /// Retags the instruction at `index` with `prov`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_prov(&mut self, index: usize, prov: Provenance) {
        self.prov[index] = prov;
    }

    /// The attribution class of the instruction at `index`
    /// ([`Provenance::GuestCompute`] if never tagged).
    pub fn prov_at(&self, index: usize) -> Provenance {
        self.prov.get(index).copied().unwrap_or_default()
    }

    /// Inserts `inst` at `index`, shifting everything at `index` and later
    /// down by one — **label-stable**: a label bound at a position *after*
    /// `index` keeps pointing at the same instruction, while a label bound
    /// exactly *at* `index` now points at the inserted instruction (so a
    /// branch landing there executes it first, then falls through to the
    /// original target — which is exactly what mitigation passes inserting
    /// architectural no-ops like `lfence` at branch targets want).
    ///
    /// Indirect-call dispatch is unaffected: the function table maps to
    /// labels, which this method re-bases along with every other label.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert(&mut self, index: usize, inst: Inst, prov: Provenance) {
        assert!(index <= self.insts.len(), "insert({index}) past {} insts", self.insts.len());
        self.insts.insert(index, inst);
        self.prov.insert(index, prov);
        for slot in &mut self.labels {
            if *slot != usize::MAX && *slot > index {
                *slot += 1;
            }
        }
    }

    /// Creates a new, unbound label.
    pub fn fresh_label(&mut self) -> Label {
        self.labels.push(usize::MAX);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the *next* instruction to be pushed.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert_eq!(*slot, usize::MAX, "label {label:?} bound twice");
        *slot = self.insts.len();
    }

    /// Creates a label already bound to the next instruction.
    pub fn here(&mut self) -> Label {
        let l = self.fresh_label();
        self.bind(l);
        l
    }

    /// Resolves a label to an instruction index, or `None` if unbound.
    pub fn resolve(&self, label: Label) -> Option<usize> {
        let idx = *self.labels.get(label.0 as usize)?;
        (idx != usize::MAX).then_some(idx)
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the instructions (used by rewriting passes).
    pub fn insts_mut(&mut self) -> &mut [Inst] {
        &mut self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Registers a function in the indirect-call table; returns its index.
    pub fn add_func_table_entry(&mut self, target: Label) -> u32 {
        self.func_table.push(target);
        self.func_table.len() as u32 - 1
    }

    /// Looks up a function-table entry.
    pub fn func_table_entry(&self, idx: u32) -> Option<Label> {
        self.func_table.get(idx as usize).copied()
    }

    /// Number of function-table entries.
    pub fn func_table_len(&self) -> usize {
        self.func_table.len()
    }

    /// All bound labels with their instruction positions.
    pub fn label_positions(&self) -> Vec<(Label, usize)> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &idx)| idx != usize::MAX)
            .map(|(i, &idx)| (Label(i as u32), idx))
            .collect()
    }

    /// Creates `n` fresh unbound labels (used by program-rewriting passes
    /// that must preserve existing label ids).
    pub fn reserve_labels(&mut self, n: usize) {
        self.labels.resize(self.labels.len() + n, usize::MAX);
    }

    /// Binds `label` to an explicit instruction index (rewriter use).
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind_at(&mut self, label: Label, index: usize) {
        let slot = &mut self.labels[label.0 as usize];
        assert_eq!(*slot, usize::MAX, "label {label:?} bound twice");
        *slot = index;
    }

    /// Returns `Err` with the first unbound label, if any. Run this before
    /// emulation or encoding.
    pub fn check_labels(&self) -> Result<(), Label> {
        for (i, &idx) in self.labels.iter().enumerate() {
            if idx == usize::MAX {
                return Err(Label(i as u32));
            }
        }
        Ok(())
    }

    /// A human-readable listing (labels interleaved with instructions).
    pub fn listing(&self) -> String {
        use core::fmt::Write as _;
        let mut by_pos: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
        for (i, &idx) in self.labels.iter().enumerate() {
            if idx != usize::MAX {
                by_pos.entry(idx).or_default().push(i as u32);
            }
        }
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(ls) = by_pos.get(&i) {
                for l in ls {
                    let _ = writeln!(out, ".L{l}:");
                }
            }
            let _ = writeln!(out, "    {inst}");
        }
        if let Some(ls) = by_pos.get(&self.insts.len()) {
            for l in ls {
                let _ = writeln!(out, ".L{l}:");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gpr, Width};

    #[test]
    fn labels_bind_and_resolve() {
        let mut p = Program::new();
        let top = p.fresh_label();
        assert_eq!(p.resolve(top), None);
        p.bind(top);
        p.push(Inst::Nop);
        p.push(Inst::Jmp { target: top });
        assert_eq!(p.resolve(top), Some(0));
        assert!(p.check_labels().is_ok());
    }

    #[test]
    fn unbound_labels_detected() {
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::Jmp { target: l });
        assert_eq!(p.check_labels(), Err(l));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut p = Program::new();
        let l = p.fresh_label();
        p.bind(l);
        p.bind(l);
    }

    #[test]
    fn func_table() {
        let mut p = Program::new();
        let l = p.here();
        p.push(Inst::Ret);
        let idx = p.add_func_table_entry(l);
        assert_eq!(p.func_table_entry(idx), Some(l));
        assert_eq!(p.func_table_entry(99), None);
    }

    #[test]
    fn insert_is_label_stable() {
        let mut p = Program::new();
        p.push(Inst::Nop); // 0
        let at = p.here(); // label at 1
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 1, width: Width::Q }); // 1
        let after = p.here(); // label at 2
        p.push(Inst::Ret); // 2
        p.insert(1, Inst::Ud2, Provenance::SpecMitigation);
        // Label bound *at* the insertion point now hits the inserted inst…
        assert_eq!(p.resolve(at), Some(1));
        assert!(matches!(p.insts()[1], Inst::Ud2));
        assert_eq!(p.prov_at(1), Provenance::SpecMitigation);
        // …and later labels keep pointing at the same instruction.
        assert_eq!(p.resolve(after), Some(3));
        assert!(matches!(p.insts()[3], Inst::Ret));
    }

    #[test]
    fn listing_contains_labels() {
        let mut p = Program::new();
        let l = p.here();
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 1, width: Width::Q });
        p.push(Inst::Jmp { target: l });
        let s = p.listing();
        assert!(s.contains(".L0:"), "{s}");
        assert!(s.contains("jmp .L0"), "{s}");
    }
}
