//! The instruction set.

use crate::{Gpr, Label, Mem, Xmm};

/// Operand width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// 8 bits.
    B,
    /// 16 bits.
    W,
    /// 32 bits. Writes to a 32-bit register zero the upper 32 bits — the
    /// property Wasm/SFI compilers exploit for free zero-extension.
    D,
    /// 64 bits.
    Q,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            Width::B => 1,
            Width::W => 2,
            Width::D => 4,
            Width::Q => 8,
        }
    }

    /// Masks `v` to this width (zero-extension).
    #[inline]
    pub const fn mask(self, v: u64) -> u64 {
        match self {
            Width::B => v & 0xFF,
            Width::W => v & 0xFFFF,
            Width::D => v & 0xFFFF_FFFF,
            Width::Q => v,
        }
    }

    /// Sign-extends the low bits of `v` at this width to 64 bits.
    #[inline]
    pub const fn sext(self, v: u64) -> u64 {
        match self {
            Width::B => v as u8 as i8 as i64 as u64,
            Width::W => v as u16 as i16 as i64 as u64,
            Width::D => v as u32 as i32 as i64 as u64,
            Width::Q => v,
        }
    }

    /// The sign bit position (7, 15, 31 or 63).
    #[inline]
    pub const fn sign_bit(self) -> u32 {
        (self.bytes() as u32) * 8 - 1
    }
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// `cmp`: computes `dst - src` for flags only; `dst` is not written.
    Cmp,
}

impl AluOp {
    /// Whether this operation writes its destination.
    #[inline]
    pub const fn writes_dst(self) -> bool {
        !matches!(self, AluOp::Cmp)
    }

    /// Mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }
}

/// Shift operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
}

impl ShiftOp {
    /// Mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
            ShiftOp::Rol => "rol",
            ShiftOp::Ror => "ror",
        }
    }
}

/// A shift amount: immediate or the `%cl` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftAmount {
    /// Immediate count (masked to the operand width at execution).
    Imm(u8),
    /// Count taken from `%cl`.
    Cl,
}

/// Condition codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    /// ZF=1 (`je`)
    E,
    /// ZF=0 (`jne`)
    Ne,
    /// signed less (`jl`)
    L,
    /// signed less-or-equal (`jle`)
    Le,
    /// signed greater (`jg`)
    G,
    /// signed greater-or-equal (`jge`)
    Ge,
    /// unsigned below (`jb`)
    B,
    /// unsigned below-or-equal (`jbe`)
    Be,
    /// unsigned above (`ja`)
    A,
    /// unsigned above-or-equal (`jae`)
    Ae,
    /// SF=1 (`js`)
    S,
    /// SF=0 (`jns`)
    Ns,
}

impl Cond {
    /// Mnemonic suffix (`e`, `ne`, `l`, …).
    pub const fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }

    /// The negated condition.
    pub const fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::Ge => Cond::L,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }
}

/// One x86-64 instruction (or model pseudo-instruction).
///
/// Control-flow targets are [`Label`]s resolved by the containing
/// [`crate::Program`]; indirect targets ([`Inst::JmpReg`], [`Inst::CallReg`])
/// hold *instruction indices* in the emulator's code-address model, while the
/// [`crate::encode`] module still assigns every instruction a byte-accurate
/// length for size and i-cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Inst {
    // ---- data movement ----
    /// `mov dst, src`
    MovRR { dst: Gpr, src: Gpr, width: Width },
    /// `mov dst, imm`
    MovRI { dst: Gpr, imm: i64, width: Width },
    /// `mov dst, [mem]` — a 32-bit load zero-extends.
    Load { dst: Gpr, mem: Mem, width: Width },
    /// `movsx dst, <width> [mem]` — sign-extending load to 64 bits.
    LoadSx { dst: Gpr, mem: Mem, width: Width },
    /// `movzx dst, <width> [mem]` — zero-extending 8/16-bit load (what Wasm
    /// compilers emit for `i32.load8_u`/`i32.load16_u`).
    LoadZx { dst: Gpr, mem: Mem, width: Width },
    /// `mov [mem], src`
    Store { src: Gpr, mem: Mem, width: Width },
    /// `mov <width> [mem], imm`
    StoreImm { imm: i32, mem: Mem, width: Width },
    /// `lea dst, [mem]` — with `width == D` this is the 32-bit `lea` that
    /// wraps modulo 2³² and zero-extends (e.g. `lea edi, [ecx+edx*4+8]`).
    Lea { dst: Gpr, mem: Mem, width: Width },
    /// `movzx dst, src<from>` (register form).
    Movzx { dst: Gpr, src: Gpr, from: Width },
    /// `movsx dst, src<from>` (register form, to 64 bits).
    Movsx { dst: Gpr, src: Gpr, from: Width },

    // ---- ALU ----
    /// `op dst, src`
    AluRR { op: AluOp, dst: Gpr, src: Gpr, width: Width },
    /// `op dst, imm`
    AluRI { op: AluOp, dst: Gpr, imm: i32, width: Width },
    /// `op dst, [mem]` — ALU with a memory source operand.
    AluRM { op: AluOp, dst: Gpr, mem: Mem, width: Width },
    /// `test a, b`
    TestRR { a: Gpr, b: Gpr, width: Width },
    /// `imul dst, src`
    Imul { dst: Gpr, src: Gpr, width: Width },
    /// `imul dst, src, imm`
    ImulRRI { dst: Gpr, src: Gpr, imm: i32, width: Width },
    /// `div src` / `idiv src`: divides `rdx:rax` (the emulator requires the
    /// compiler to have zeroed/sign-extended `rdx` first); quotient → `rax`,
    /// remainder → `rdx`. Traps on divide-by-zero or overflow.
    Div { src: Gpr, width: Width, signed: bool },
    /// `cdq`/`cqo`: sign-extend `rax` into `rdx` at `width`.
    Cdq { width: Width },
    /// `shl`/`shr`/`sar`/`rol`/`ror`
    Shift { op: ShiftOp, dst: Gpr, amount: ShiftAmount, width: Width },
    /// `neg dst`
    Neg { dst: Gpr, width: Width },
    /// `not dst`
    Not { dst: Gpr, width: Width },
    /// `cmov<cond> dst, src`
    Cmov { cond: Cond, dst: Gpr, src: Gpr, width: Width },
    /// `set<cond> dst` (writes 0/1 into the full register for simplicity).
    Setcc { cond: Cond, dst: Gpr },

    // ---- control flow ----
    /// `jmp label`
    Jmp { target: Label },
    /// `j<cond> label`
    Jcc { cond: Cond, target: Label },
    /// `jmp reg` — indirect jump; the register holds an instruction index.
    JmpReg { reg: Gpr },
    /// `call label`
    Call { target: Label },
    /// `call reg` — indirect call; the register holds an instruction index.
    CallReg { reg: Gpr },
    /// Pseudo: call out of the sandbox into the host runtime (models the
    /// trampoline that a Wasm engine uses for WASI/host calls).
    CallHost { func: u32 },
    /// `ret`
    Ret,
    /// `push reg`
    Push { reg: Gpr },
    /// `pop reg`
    Pop { reg: Gpr },

    // ---- SIMD (bulk memory) ----
    /// `movdqu xmm, [mem]` — 128-bit load.
    MovdquLoad { dst: Xmm, mem: Mem },
    /// `movdqu [mem], xmm` — 128-bit store.
    MovdquStore { src: Xmm, mem: Mem },
    /// `movdqa dst, src` (register move).
    MovdqaRR { dst: Xmm, src: Xmm },

    // ---- system ----
    /// `wrgsbase src` (FSGSBASE extension; Segue's context-switch cost).
    WrGsBase { src: Gpr },
    /// `rdgsbase dst`
    RdGsBase { dst: Gpr },
    /// `wrfsbase src`
    WrFsBase { src: Gpr },
    /// `wrpkru` — writes PKRU from `eax` (requires `ecx = edx = 0`);
    /// ColorGuard's per-transition cost (~40 cycles, §6.4.1).
    WrPkru,
    /// `rdpkru` — reads PKRU into `eax`.
    RdPkru,
    /// `ud2` — deterministic trap (bounds-check failure path).
    Ud2,
    /// `lfence` — load/speculation fence. Architecturally a no-op in this
    /// model; the emulator's speculation window cannot cross it, which is
    /// what the `MitigationLevel::Lfence` hardening pass relies on.
    Lfence,
    /// `nop`
    Nop,
}

impl Inst {
    /// The memory operand of this instruction, if it accesses memory.
    pub fn mem(&self) -> Option<&Mem> {
        match self {
            Inst::Load { mem, .. }
            | Inst::LoadSx { mem, .. }
            | Inst::LoadZx { mem, .. }
            | Inst::Store { mem, .. }
            | Inst::StoreImm { mem, .. }
            | Inst::AluRM { mem, .. }
            | Inst::MovdquLoad { mem, .. }
            | Inst::MovdquStore { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// Mutable access to the memory operand, if any. `lea` is excluded on
    /// purpose: its operand is an address computation, not an access.
    pub fn mem_mut(&mut self) -> Option<&mut Mem> {
        match self {
            Inst::Load { mem, .. }
            | Inst::LoadSx { mem, .. }
            | Inst::LoadZx { mem, .. }
            | Inst::Store { mem, .. }
            | Inst::StoreImm { mem, .. }
            | Inst::AluRM { mem, .. }
            | Inst::MovdquLoad { mem, .. }
            | Inst::MovdquStore { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// Whether this instruction reads memory (data access).
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::LoadSx { .. }
                | Inst::LoadZx { .. }
                | Inst::AluRM { .. }
                | Inst::MovdquLoad { .. }
                | Inst::Pop { .. }
        )
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::StoreImm { .. } | Inst::MovdquStore { .. } | Inst::Push { .. }
        )
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::JmpReg { .. }
                | Inst::Call { .. }
                | Inst::CallReg { .. }
                | Inst::CallHost { .. }
                | Inst::Ret
        )
    }
}

impl core::fmt::Display for Inst {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        fn rn(r: Gpr, w: Width) -> String {
            match w {
                Width::Q => r.name64().to_owned(),
                Width::D => r.name32(),
                Width::W => format!("{}w", r.name64()),
                Width::B => format!("{}b", r.name64()),
            }
        }
        match *self {
            Inst::MovRR { dst, src, width } => write!(f, "mov {}, {}", rn(dst, width), rn(src, width)),
            Inst::MovRI { dst, imm, width } => write!(f, "mov {}, {imm:#x}", rn(dst, width)),
            Inst::Load { dst, mem, width } => write!(f, "mov {}, {mem}", rn(dst, width)),
            Inst::LoadSx { dst, mem, width } => {
                write!(f, "movsx {}, {} ptr {mem}", dst, width.bytes() * 8)
            }
            Inst::LoadZx { dst, mem, width } => {
                write!(f, "movzx {}, {} ptr {mem}", dst, width.bytes() * 8)
            }
            Inst::Store { src, mem, width } => write!(f, "mov {mem}, {}", rn(src, width)),
            Inst::StoreImm { imm, mem, width } => {
                write!(f, "mov {} ptr {mem}, {imm:#x}", width.bytes() * 8)
            }
            Inst::Lea { dst, mem, width } => write!(f, "lea {}, {mem}", rn(dst, width)),
            Inst::Movzx { dst, src, from } => write!(f, "movzx {dst}, {}", rn(src, from)),
            Inst::Movsx { dst, src, from } => write!(f, "movsx {dst}, {}", rn(src, from)),
            Inst::AluRR { op, dst, src, width } => {
                write!(f, "{} {}, {}", op.mnemonic(), rn(dst, width), rn(src, width))
            }
            Inst::AluRI { op, dst, imm, width } => {
                write!(f, "{} {}, {imm:#x}", op.mnemonic(), rn(dst, width))
            }
            Inst::AluRM { op, dst, mem, width } => {
                write!(f, "{} {}, {mem}", op.mnemonic(), rn(dst, width))
            }
            Inst::TestRR { a, b, width } => write!(f, "test {}, {}", rn(a, width), rn(b, width)),
            Inst::Imul { dst, src, width } => write!(f, "imul {}, {}", rn(dst, width), rn(src, width)),
            Inst::ImulRRI { dst, src, imm, width } => {
                write!(f, "imul {}, {}, {imm:#x}", rn(dst, width), rn(src, width))
            }
            Inst::Div { src, width, signed } => {
                write!(f, "{} {}", if signed { "idiv" } else { "div" }, rn(src, width))
            }
            Inst::Cdq { width } => f.write_str(if width == Width::Q { "cqo" } else { "cdq" }),
            Inst::Shift { op, dst, amount, width } => match amount {
                ShiftAmount::Imm(i) => write!(f, "{} {}, {i}", op.mnemonic(), rn(dst, width)),
                ShiftAmount::Cl => write!(f, "{} {}, cl", op.mnemonic(), rn(dst, width)),
            },
            Inst::Neg { dst, width } => write!(f, "neg {}", rn(dst, width)),
            Inst::Not { dst, width } => write!(f, "not {}", rn(dst, width)),
            Inst::Cmov { cond, dst, src, width } => {
                write!(f, "cmov{} {}, {}", cond.suffix(), rn(dst, width), rn(src, width))
            }
            Inst::Setcc { cond, dst } => write!(f, "set{} {}", cond.suffix(), rn(dst, Width::B)),
            Inst::Jmp { target } => write!(f, "jmp {target}"),
            Inst::Jcc { cond, target } => write!(f, "j{} {target}", cond.suffix()),
            Inst::JmpReg { reg } => write!(f, "jmp {reg}"),
            Inst::Call { target } => write!(f, "call {target}"),
            Inst::CallReg { reg } => write!(f, "call {reg}"),
            Inst::CallHost { func } => write!(f, "call <host:{func}>"),
            Inst::Ret => f.write_str("ret"),
            Inst::Push { reg } => write!(f, "push {reg}"),
            Inst::Pop { reg } => write!(f, "pop {reg}"),
            Inst::MovdquLoad { dst, mem } => write!(f, "movdqu {dst}, {mem}"),
            Inst::MovdquStore { src, mem } => write!(f, "movdqu {mem}, {src}"),
            Inst::MovdqaRR { dst, src } => write!(f, "movdqa {dst}, {src}"),
            Inst::WrGsBase { src } => write!(f, "wrgsbase {src}"),
            Inst::RdGsBase { dst } => write!(f, "rdgsbase {dst}"),
            Inst::WrFsBase { src } => write!(f, "wrfsbase {src}"),
            Inst::WrPkru => f.write_str("wrpkru"),
            Inst::RdPkru => f.write_str("rdpkru"),
            Inst::Ud2 => f.write_str("ud2"),
            Inst::Lfence => f.write_str("lfence"),
            Inst::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn width_mask_and_sext() {
        assert_eq!(Width::D.mask(0x1_2345_6789), 0x2345_6789);
        assert_eq!(Width::B.sext(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(Width::D.sext(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(Width::Q.sext(5), 5);
        assert_eq!(Width::W.sign_bit(), 15);
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            Cond::E,
            Cond::Ne,
            Cond::L,
            Cond::Le,
            Cond::G,
            Cond::Ge,
            Cond::B,
            Cond::Be,
            Cond::A,
            Cond::Ae,
            Cond::S,
            Cond::Ns,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn figure1_display() {
        // The two Segue instructions from Figure 1c of the paper.
        let p1 = Inst::Load {
            dst: Gpr::R10,
            mem: Mem::base(Gpr::Rbx).with_seg(crate::Seg::Gs).with_addr32(),
            width: Width::Q,
        };
        assert_eq!(p1.to_string(), "mov r10, gs:[ebx]");
        let p2 = Inst::Load {
            dst: Gpr::R11,
            mem: Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 0x8)
                .with_seg(crate::Seg::Gs)
                .with_addr32(),
            width: Width::Q,
        };
        assert_eq!(p2.to_string(), "mov r11, gs:[ecx + edx*4 + 0x8]");
    }

    #[test]
    fn classification() {
        let l = Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::Rbx), width: Width::D };
        assert!(l.is_load() && !l.is_store() && !l.is_control_flow());
        let s = Inst::Store { src: Gpr::Rax, mem: Mem::base(Gpr::Rbx), width: Width::D };
        assert!(s.is_store() && !s.is_load());
        assert!(Inst::Ret.is_control_flow());
        let lea = Inst::Lea { dst: Gpr::Rax, mem: Mem::base(Gpr::Rbx), width: Width::Q };
        assert!(lea.mem().is_none(), "lea does not access memory");
    }
}
