//! Set-associative cache simulation (used for both L1I and L1D).
//!
//! The emulator charges miss penalties through [`crate::cost::CostModel`];
//! this module only tracks hit/miss behaviour. Caches here are physically
//! simple: true-LRU, write-allocate, no prefetching — deliberately so, to
//! keep results deterministic and explainable.

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// log2 of the line size in bytes.
    line_shift: u32,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]` = line tag, or `u64::MAX` if invalid.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways`-way associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not powers of two or inconsistent.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Cache {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1);
        assert_eq!(size_bytes % (ways * line_bytes), 0, "size must divide evenly");
        let sets = size_bytes / (ways * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_shift: line_bytes.trailing_zeros(),
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// A typical L1 data cache (48 KiB, 12-way, 64-byte lines — client x86).
    pub fn l1d_default() -> Cache {
        Cache::new(48 * 1024, 12, 64)
    }

    /// A typical L1 instruction cache (32 KiB, 8-way, 64-byte lines).
    pub fn l1i_default() -> Cache {
        Cache::new(32 * 1024, 8, 64)
    }

    /// Accesses `addr`; returns `true` on a hit. Spanning accesses should
    /// call this once per touched line (see [`Cache::access_range`]).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            return true;
        }
        self.misses += 1;
        // Victim: the least-recently-used way.
        let mut victim = 0;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < best {
                best = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Accesses every line touched by `[addr, addr+len)`; returns the number
    /// of misses (0, 1 or 2 for ordinary accesses).
    pub fn access_range(&mut self, addr: u64, len: u64) -> u32 {
        if len == 0 {
            return 0;
        }
        let first = addr >> self.line_shift;
        let last = (addr + len - 1) >> self.line_shift;
        let mut misses = 0;
        for line in first..=last {
            if !self.access(line << self.line_shift) {
                misses += 1;
            }
        }
        misses
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in [0, 1]; 0 if no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Invalidates all lines and zeroes counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidates all lines but keeps counters (models a cache flushed by a
    /// context switch).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x7F)); // same line
        assert!(!c.access(0x80)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn lru_eviction() {
        // 2 ways, 64-byte lines, 2 sets → set stride 128.
        let mut c = Cache::new(256, 2, 64);
        let a = 0u64;
        let b = 128; // same set as a (set 0)
        let d = 256; // same set again
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(!c.access(d)); // evicts a (LRU)
        assert!(!c.access(a)); // a was evicted
        assert!(c.access(d)); // d still resident
    }

    #[test]
    fn range_access_spans_lines() {
        let mut c = Cache::new(1024, 2, 64);
        // 8 bytes at offset 60 spans two lines.
        assert_eq!(c.access_range(60, 8), 2);
        assert_eq!(c.access_range(60, 8), 0);
        assert_eq!(c.access_range(0, 0), 0);
    }

    #[test]
    fn flush_keeps_counters() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0);
        c.flush();
        assert_eq!(c.misses(), 1);
        assert!(!c.access(0), "flushed line must miss again");
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn working_set_behaviour() {
        // A working set that fits has ~zero steady-state misses; one that
        // doesn't thrashes. This is the mechanism behind the paper's
        // "Wasm's 32-bit pointers act as a cache optimization" observation.
        let mut fits = Cache::new(4096, 4, 64);
        let mut thrash = Cache::new(4096, 4, 64);
        for round in 0..8 {
            for i in 0..32 {
                fits.access(i * 64); // 2 KiB set
            }
            for i in 0..128 {
                thrash.access(i * 64); // 8 KiB set
            }
            if round == 0 {
                continue;
            }
        }
        assert_eq!(fits.misses(), 32, "small set misses only on the cold pass");
        assert!(thrash.miss_rate() > 0.9, "oversized set keeps missing");
    }
}
