//! Segue-aware addressing-mode fusion.
//!
//! The paper's Figure 1 point: on x86-64, a sandboxed heap access can carry
//! its entire guest address computation — `e_idx + e_ofs*s + d` — in one
//! `gs:`-relative operand with an address-size override, instead of
//! materializing the address with `lea`/`mov` first. The baseline compiler
//! materializes; this pass folds the materialization back into the memory
//! operand wherever that is *provably* legal:
//!
//! - **Constant components**: after `mov t, imm`, a memory operand using
//!   `t` as base or index absorbs the constant into its displacement. This
//!   is exact arithmetic at both address sizes, provided the combined
//!   displacement fits the 32-bit displacement field — checked by
//!   [`Mem::fold_constant_base`] / an explicit `i32::try_from`; overflowing
//!   folds are rejected, never truncated.
//! - **`lea`-computed bases**: after `lea t, [b + i*s + d]`, an access
//!   `seg:[t + d']` absorbs the whole address expression via
//!   [`Mem::substitute_base`]. Legality is subtle: a 32-bit `lea` wraps
//!   modulo 2³² *before* the access, so the fused form is only equivalent
//!   when the access itself carries the address-size override (then both
//!   sides reduce modulo 2³²). A 32-bit `lea` feeding a non-`addr32`
//!   access is **rejected** — folding it would turn an intended
//!   guard-page trap into a silent wrap. A 64-bit `lea` of a non-`addr32`
//!   operand is exact and fuses into any access. Encoding limits
//!   (one index register, displacement range) are enforced by
//!   `substitute_base` returning `None`.
//!
//! When every use of the producer folds away and the register is then
//! overwritten, the producer itself becomes `nop`.

use sfi_x86::{Gpr, Inst, Mem, Width};

use super::{defines, is_barrier, reads, OptStats};

pub(super) fn run(insts: &mut [Inst], leaders: &[bool], stats: &mut OptStats) {
    for i in 0..insts.len() {
        match insts[i] {
            Inst::MovRI { dst, imm, width: Width::D } => {
                fuse_constant(insts, leaders, stats, i, dst, imm as u32);
            }
            Inst::MovRI { dst, imm, width: Width::Q }
                if imm >= 0 && imm <= i64::from(u32::MAX) =>
            {
                fuse_constant(insts, leaders, stats, i, dst, imm as u32);
            }
            Inst::Lea { dst, mem, width } if matches!(width, Width::D | Width::Q) => {
                fuse_lea(insts, leaders, stats, i, dst, mem, width);
            }
            _ => {}
        }
    }
}

/// Folds the known constant value `v` of register `t` into the memory
/// operands of following instructions (same extended basic block, `t` not
/// redefined). Nops the producer when `t` dies with every use folded.
fn fuse_constant(
    insts: &mut [Inst],
    leaders: &[bool],
    stats: &mut OptStats,
    i: usize,
    t: Gpr,
    v: u32,
) {
    let mut any = false;
    let mut all_folded = true;
    let mut dead = false;
    for j in i + 1..insts.len() {
        if leaders[j] || is_barrier(&insts[j]) || insts[j].is_control_flow() {
            break; // t escapes the region
        }
        if let Some(mem) = insts[j].mem_mut() {
            let m = *mem;
            if m.base == Some(t) {
                if let Some(f) = m.fold_constant_base(v) {
                    *mem = f;
                    any = true;
                    stats.addresses_fused += 1;
                }
            } else if let Some((r, s)) = m.index {
                if r == t {
                    // Index contribution is exactly v * factor at either
                    // address size; reject if the displacement field
                    // cannot hold the sum.
                    let sum = i64::from(v) * s.factor() as i64 + i64::from(m.disp);
                    if let Ok(disp) = i32::try_from(sum) {
                        *mem = Mem { index: None, disp, ..m };
                        any = true;
                        stats.addresses_fused += 1;
                    }
                }
            }
        }
        let now = insts[j];
        if reads(&now, t) {
            all_folded = false;
        }
        if defines(&now, t) {
            dead = all_folded;
            break;
        }
    }
    if dead && any {
        insts[i] = Inst::Nop;
        stats.fused_producers_removed += 1;
    }
}

/// Folds `lea t, [m]` into following accesses based on `t`.
fn fuse_lea(
    insts: &mut [Inst],
    leaders: &[bool],
    stats: &mut OptStats,
    i: usize,
    t: Gpr,
    m: Mem,
    lea_width: Width,
) {
    let srcs: Vec<Gpr> = m.regs_read().collect();
    let mut any = false;
    let mut all_folded = true;
    let mut dead = false;
    for j in i + 1..insts.len() {
        if leaders[j] || is_barrier(&insts[j]) || insts[j].is_control_flow() {
            break;
        }
        if let Some(mem) = insts[j].mem_mut() {
            let a = *mem;
            // Equivalence: with addr32 on the access both forms reduce
            // mod 2³²; without it the lea's value must be the exact 64-bit
            // address, i.e. a 64-bit lea of a non-truncating operand.
            let legal = a.addr32 || (lea_width == Width::Q && !m.addr32);
            if a.base == Some(t) && legal {
                if let Some(f) = a.substitute_base(m) {
                    *mem = f;
                    any = true;
                    stats.addresses_fused += 1;
                }
            }
        }
        let now = insts[j];
        if reads(&now, t) {
            all_folded = false;
        }
        if defines(&now, t) {
            dead = all_folded;
            break;
        }
        // Once an address component changes, later accesses through `t`
        // would fold the *new* component values: stop.
        if srcs.iter().any(|&r| defines(&now, r)) {
            break;
        }
    }
    if dead && any {
        insts[i] = Inst::Nop;
        stats.fused_producers_removed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::super::leaders;
    use super::*;
    use sfi_x86::{Scale, Seg};

    fn run_pass(p: &mut sfi_x86::Program) -> OptStats {
        let mut stats = OptStats::default();
        let l = leaders(p);
        run(p.insts_mut(), &l, &mut stats);
        stats
    }

    fn gs32(m: Mem) -> Mem {
        m.with_seg(Seg::Gs).with_addr32()
    }

    #[test]
    fn lea32_fuses_into_segue_access() {
        // lea ebx, [ecx + edx*4 + 8] ; mov rax, gs:[ebx] ; mov rbx, 0
        // => mov rax, gs:[ecx + edx*4 + 8]  (Figure 1c in one operand)
        let mut p = sfi_x86::Program::new();
        p.push(Inst::Lea {
            dst: Gpr::Rbx,
            mem: Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 8),
            width: Width::D,
        });
        p.push(Inst::Load { dst: Gpr::Rax, mem: gs32(Mem::base(Gpr::Rbx)), width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 1);
        assert_eq!(stats.fused_producers_removed, 1);
        assert_eq!(p.insts()[0], Inst::Nop, "dead lea removed");
        assert_eq!(
            p.insts()[1],
            Inst::Load {
                dst: Gpr::Rax,
                mem: gs32(Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 8)),
                width: Width::Q
            }
        );
    }

    #[test]
    fn lea32_into_non_addr32_access_is_rejected() {
        // A 32-bit lea wraps mod 2^32 before the access; without the
        // address-size override the fused form would not wrap — folding
        // would turn a guard-page trap into a silent wrap.
        let mut p = sfi_x86::Program::new();
        p.push(Inst::Lea {
            dst: Gpr::Rbx,
            mem: Mem::base_disp(Gpr::Rcx, 8),
            width: Width::D,
        });
        p.push(Inst::Load { dst: Gpr::Rax, mem: Mem::base(Gpr::Rbx), width: Width::Q });
        p.push(Inst::Ret);
        let before = p.insts().to_vec();
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 0);
        assert_eq!(p.insts(), &before[..]);
    }

    #[test]
    fn lea64_fuses_into_plain_access() {
        // Exact 64-bit arithmetic: lea rbx, [r15 + rcx] ; mov rax, [rbx+16]
        // => mov rax, [r15 + rcx + 16].
        let mut p = sfi_x86::Program::new();
        p.push(Inst::Lea {
            dst: Gpr::Rbx,
            mem: Mem::bisd(Gpr::R15, Gpr::Rcx, Scale::S1, 0),
            width: Width::Q,
        });
        p.push(Inst::Load { dst: Gpr::Rax, mem: Mem::base_disp(Gpr::Rbx, 16), width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 1);
        assert_eq!(
            p.insts()[1],
            Inst::Load {
                dst: Gpr::Rax,
                mem: Mem::bisd(Gpr::R15, Gpr::Rcx, Scale::S1, 16),
                width: Width::Q
            }
        );
    }

    #[test]
    fn fusion_rejected_when_both_sides_have_an_index() {
        // x86 encodes at most one index register per operand.
        let mut p = sfi_x86::Program::new();
        p.push(Inst::Lea {
            dst: Gpr::Rbx,
            mem: Mem::bisd(Gpr::Rcx, Gpr::Rdx, Scale::S4, 0),
            width: Width::D,
        });
        p.push(Inst::Load {
            dst: Gpr::Rax,
            mem: gs32(Mem::bisd(Gpr::Rbx, Gpr::Rsi, Scale::S2, 0)),
            width: Width::Q,
        });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 0, "two index registers cannot encode");
        assert!(matches!(p.insts()[0], Inst::Lea { .. }), "producer kept");
    }

    #[test]
    fn fusion_rejected_on_displacement_overflow() {
        let mut p = sfi_x86::Program::new();
        p.push(Inst::Lea {
            dst: Gpr::Rbx,
            mem: Mem::base_disp(Gpr::Rcx, i32::MAX),
            width: Width::D,
        });
        p.push(Inst::Load {
            dst: Gpr::Rax,
            mem: gs32(Mem::base_disp(Gpr::Rbx, 1)),
            width: Width::Q,
        });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 0, "disp32 field cannot hold the sum");
    }

    #[test]
    fn constant_base_folds_into_displacement() {
        let mut p = sfi_x86::Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0x1000, width: Width::D });
        p.push(Inst::Load { dst: Gpr::Rax, mem: gs32(Mem::base_disp(Gpr::Rbx, 8)), width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 1);
        assert_eq!(stats.fused_producers_removed, 1);
        assert_eq!(p.insts()[0], Inst::Nop);
        assert_eq!(
            p.insts()[1],
            Inst::Load { dst: Gpr::Rax, mem: gs32(Mem::abs(0x1008)), width: Width::D }
        );
    }

    #[test]
    fn constant_index_folds_scaled() {
        let mut p = sfi_x86::Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rdx, imm: 5, width: Width::D });
        p.push(Inst::Load {
            dst: Gpr::Rax,
            mem: gs32(Mem::bisd(Gpr::Rbx, Gpr::Rdx, Scale::S8, 4)),
            width: Width::D,
        });
        p.push(Inst::MovRI { dst: Gpr::Rdx, imm: 0, width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 1);
        assert_eq!(
            p.insts()[1],
            Inst::Load { dst: Gpr::Rax, mem: gs32(Mem::base_disp(Gpr::Rbx, 44)), width: Width::D }
        );
    }

    #[test]
    fn oversized_constant_is_rejected() {
        // 3 GiB as a base cannot live in a disp32 field.
        let mut p = sfi_x86::Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0xC000_0000, width: Width::D });
        p.push(Inst::Load { dst: Gpr::Rax, mem: gs32(Mem::base(Gpr::Rbx)), width: Width::D });
        p.push(Inst::Ret);
        let before = p.insts().to_vec();
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 0);
        assert_eq!(p.insts(), &before[..]);
    }

    #[test]
    fn producer_kept_when_register_still_read() {
        // The constant also feeds a non-memory use: fold the address but
        // keep the producer.
        let mut p = sfi_x86::Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0x40, width: Width::D });
        p.push(Inst::Load { dst: Gpr::Rax, mem: gs32(Mem::base(Gpr::Rbx)), width: Width::D });
        p.push(Inst::AluRR { op: sfi_x86::AluOp::Add, dst: Gpr::Rsi, src: Gpr::Rbx, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 1);
        assert_eq!(stats.fused_producers_removed, 0);
        assert_eq!(p.insts()[0], Inst::MovRI { dst: Gpr::Rbx, imm: 0x40, width: Width::D });
    }

    #[test]
    fn lea_fusion_stops_when_component_is_redefined() {
        let mut p = sfi_x86::Program::new();
        p.push(Inst::Lea { dst: Gpr::Rbx, mem: Mem::base_disp(Gpr::Rcx, 8), width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rcx, imm: 0, width: Width::Q }); // rcx changes
        p.push(Inst::Load { dst: Gpr::Rax, mem: gs32(Mem::base(Gpr::Rbx)), width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.addresses_fused, 0, "rcx no longer holds the address component");
    }
}
