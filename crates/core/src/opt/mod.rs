//! The optimizing tier's pass pipeline.
//!
//! [`optimize`] runs over the baseline compiler's [`Program`] in place:
//!
//! 1. [`const_fold`] — block-local constant propagation and folding
//!    (wrap-around faithful to the emulator; division is never folded so
//!    div-by-zero traps are preserved);
//! 2. [`redundant`] — redundant-truncation elimination (a pending
//!    `mov r32, r32` whose register is provably 32-bit-clean is a no-op)
//!    and redundant-bounds-check elimination (a `cmp r, limit; ja trap`
//!    pair dominated by an equal-or-tighter check of the same unmodified
//!    register can never trap);
//! 3. [`fuse`] — Segue-aware addressing fusion: constant address
//!    components fold into the displacement of the `gs:`-relative (or
//!    heap-base-relative) operand, and a 32-bit `lea` feeding a
//!    displacement-free `gs:` access folds into one address-size-overridden
//!    operand. Every fold goes through the encoding-legality helpers on
//!    [`Mem`] and is rejected when scale/displacement limits are exceeded.
//!
//! All passes preserve the instruction-index invariant: rewrites happen in
//! place and removals become [`Inst::Nop`], so every [`sfi_x86::Label`]
//! keeps pointing at the instruction it was bound to (the same contract the
//! vectorizer follows).
//!
//! Analyses are deliberately block-local and conservative: state is reset
//! at every label (join point) and after every control-flow or
//! state-barrier instruction. The differential-equivalence harness (full
//! corpus + seeded random programs vs the interpreter) is the acceptance
//! gate for every rule here.

mod branch_fuse;
mod const_fold;
mod fuse;
pub mod mitigate;
mod redundant;
pub mod regalloc;

use sfi_x86::inst::ShiftAmount;
use sfi_x86::{Gpr, Inst, Program, Width};

pub use regalloc::{linear_scan, LiveRange};

/// What the pipeline did — per-pass rewrite counters (observability for
/// benches and the per-pass unit tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions replaced by a cheaper constant form.
    pub consts_folded: usize,
    /// Dead constant loads removed (overwritten before any read).
    pub dead_consts_removed: usize,
    /// Redundant `mov r32, r32` truncations removed.
    pub truncs_elided: usize,
    /// Redundant `cmp`+`ja` bounds-check pairs removed.
    pub bounds_checks_elided: usize,
    /// Memory operands that absorbed a constant or `lea`-computed address
    /// component.
    pub addresses_fused: usize,
    /// Constant/`lea` producers made dead by fusion and removed.
    pub fused_producers_removed: usize,
    /// `setcc` + `test` + `jcc` triples fused into a single flag branch.
    pub branches_fused: usize,
}

impl OptStats {
    /// Total rewrites across all passes.
    pub fn total(&self) -> usize {
        self.consts_folded
            + self.dead_consts_removed
            + self.truncs_elided
            + self.bounds_checks_elided
            + self.addresses_fused
            + self.fused_producers_removed
            + self.branches_fused
    }
}

/// Runs the optimizing pipeline over `program` in place.
pub fn optimize(program: &mut Program) -> OptStats {
    let mut stats = OptStats::default();
    let leaders = leaders(program);
    const_fold::run(program.insts_mut(), &leaders, &mut stats);
    redundant::run(program.insts_mut(), &leaders, &mut stats);
    fuse::run(program.insts_mut(), &leaders, &mut stats);
    branch_fuse::run(program, &mut stats);
    stats
}

/// `leaders[i]` is true when instruction `i` is a potential join point (a
/// label is bound to it): block-local analyses must reset there, because a
/// branch from elsewhere can land on it with unknown state.
pub(crate) fn leaders(program: &Program) -> Vec<bool> {
    let mut l = vec![false; program.len() + 1];
    for (_, pos) in program.label_positions() {
        if pos < l.len() {
            l[pos] = true;
        }
    }
    l
}

/// Calls `f` for every register this instruction *reads* — including
/// read-modify-write destinations, implicit operands (`div`, `cdq`,
/// shift-by-`%cl`), address components, and sub-32-bit destinations
/// (8/16-bit writes merge, so the old value is an input).
pub(crate) fn for_each_use(inst: &Inst, mut f: impl FnMut(Gpr)) {
    let narrow = |w: Width| matches!(w, Width::B | Width::W);
    if let Some(mem) = inst.mem() {
        for r in mem.regs_read() {
            f(r);
        }
    }
    match *inst {
        Inst::MovRR { dst, src, width } => {
            f(src);
            if narrow(width) {
                f(dst);
            }
        }
        Inst::MovRI { dst, width, .. } => {
            if narrow(width) {
                f(dst);
            }
        }
        Inst::Load { dst, width, .. } => {
            if narrow(width) {
                f(dst);
            }
        }
        Inst::LoadSx { .. } | Inst::LoadZx { .. } | Inst::StoreImm { .. } => {}
        Inst::Store { src, .. } => f(src),
        Inst::Lea { dst, mem, width } => {
            for r in mem.regs_read() {
                f(r);
            }
            if narrow(width) {
                f(dst);
            }
        }
        Inst::Movzx { src, .. } | Inst::Movsx { src, .. } => f(src),
        Inst::AluRR { dst, src, .. } => {
            f(dst);
            f(src);
        }
        Inst::AluRI { dst, .. } | Inst::AluRM { dst, .. } => f(dst),
        Inst::TestRR { a, b, .. } => {
            f(a);
            f(b);
        }
        Inst::Imul { dst, src, .. } => {
            f(dst);
            f(src);
        }
        Inst::ImulRRI { dst, src, width, .. } => {
            f(src);
            if narrow(width) {
                f(dst);
            }
        }
        Inst::Div { src, .. } => {
            f(src);
            f(Gpr::Rax);
            f(Gpr::Rdx);
        }
        Inst::Cdq { .. } => f(Gpr::Rax),
        Inst::Shift { dst, amount, .. } => {
            f(dst);
            if amount == ShiftAmount::Cl {
                f(Gpr::Rcx);
            }
        }
        Inst::Neg { dst, .. } | Inst::Not { dst, .. } => f(dst),
        Inst::Cmov { dst, src, .. } => {
            f(dst);
            f(src);
        }
        Inst::Setcc { .. } => {}
        Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. } | Inst::CallHost { .. } => {}
        Inst::JmpReg { reg } | Inst::CallReg { reg } => f(reg),
        Inst::Ret => f(Gpr::Rax),
        Inst::Push { reg } => f(reg),
        Inst::Pop { .. } => {}
        Inst::MovdquLoad { .. } | Inst::MovdquStore { .. } | Inst::MovdqaRR { .. } => {}
        Inst::WrGsBase { src } | Inst::WrFsBase { src } => f(src),
        Inst::RdGsBase { .. } | Inst::RdPkru => {}
        Inst::WrPkru => {
            f(Gpr::Rax);
            f(Gpr::Rcx);
            f(Gpr::Rdx);
        }
        Inst::Ud2 | Inst::Lfence | Inst::Nop => {}
    }
}

/// Calls `f` for every register this instruction modifies (fully or
/// partially). Calls and host calls are handled separately as barriers.
pub(crate) fn for_each_def(inst: &Inst, mut f: impl FnMut(Gpr)) {
    match *inst {
        Inst::MovRR { dst, .. }
        | Inst::MovRI { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::LoadSx { dst, .. }
        | Inst::LoadZx { dst, .. }
        | Inst::Lea { dst, .. }
        | Inst::Movzx { dst, .. }
        | Inst::Movsx { dst, .. }
        | Inst::Imul { dst, .. }
        | Inst::ImulRRI { dst, .. }
        | Inst::Shift { dst, .. }
        | Inst::Neg { dst, .. }
        | Inst::Not { dst, .. }
        | Inst::Cmov { dst, .. }
        | Inst::Setcc { dst, .. }
        | Inst::RdGsBase { dst } => f(dst),
        Inst::AluRR { op, dst, .. } | Inst::AluRI { op, dst, .. } | Inst::AluRM { op, dst, .. }
            if op.writes_dst() =>
        {
            f(dst)
        }
        Inst::Div { .. } => {
            f(Gpr::Rax);
            f(Gpr::Rdx);
        }
        Inst::Cdq { .. } => f(Gpr::Rdx),
        Inst::Pop { reg } => f(reg),
        Inst::RdPkru => f(Gpr::Rax),
        _ => {}
    }
}

/// Whether `inst` writes `r` (fully or partially).
pub(crate) fn defines(inst: &Inst, r: Gpr) -> bool {
    let mut hit = false;
    for_each_def(inst, |d| hit |= d == r);
    hit
}

/// Whether `inst` reads `r`.
pub(crate) fn reads(inst: &Inst, r: Gpr) -> bool {
    let mut hit = false;
    for_each_use(inst, |u| hit |= u == r);
    hit
}

/// Instructions after which block-local register state is unknowable:
/// transfers that clobber the operand pool (calls), indirect control flow,
/// and system-state writes.
pub(crate) fn is_barrier(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Call { .. }
            | Inst::CallReg { .. }
            | Inst::CallHost { .. }
            | Inst::JmpReg { .. }
            | Inst::Ret
            | Inst::WrGsBase { .. }
            | Inst::WrFsBase { .. }
            | Inst::WrPkru
            | Inst::RdPkru
            | Inst::Ud2
    )
}

/// Whether `inst` reads the flags register.
pub(crate) fn reads_flags(inst: &Inst) -> bool {
    matches!(inst, Inst::Jcc { .. } | Inst::Setcc { .. } | Inst::Cmov { .. })
}

/// Whether `inst` is *guaranteed* to overwrite all the flags this model
/// tracks. A shift only writes flags when its masked count is nonzero, so
/// `%cl` shifts and width-masked zero counts don't qualify.
pub(crate) fn writes_flags(inst: &Inst) -> bool {
    match *inst {
        Inst::AluRR { .. } | Inst::AluRI { .. } | Inst::AluRM { .. } => true,
        Inst::TestRR { .. } | Inst::Neg { .. } => true,
        Inst::Shift { amount: ShiftAmount::Imm(n), width, .. } => {
            let bits = width.bytes() as u32 * 8;
            (u32::from(n) & (bits - 1)) != 0
        }
        _ => false,
    }
}

/// Whether the flags live at instruction `from` can be observed by any
/// later instruction — i.e. whether a flags-reader executes before the
/// flags are guaranteed-overwritten. Conservative at labels and jumps: a
/// join or branch makes the answer "maybe", which we treat as observed.
///
/// Flags die at `call`/`ret`/`ud2`. This encodes the compiler's own
/// calling convention (SysV-style: flags are not preserved across calls,
/// and every emitted flags-reader is preceded by its writer in the same
/// basic block), which the differential harness verifies end to end.
pub(crate) fn flags_observable_from(insts: &[Inst], leaders: &[bool], from: usize) -> bool {
    for (j, inst) in insts.iter().enumerate().skip(from) {
        if leaders[j] {
            return true;
        }
        if reads_flags(inst) {
            return true;
        }
        if writes_flags(inst) {
            return false;
        }
        if matches!(
            inst,
            Inst::Call { .. } | Inst::CallReg { .. } | Inst::CallHost { .. } | Inst::Ret | Inst::Ud2
        ) {
            return false;
        }
        if inst.is_control_flow() {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_x86::inst::AluOp;
    use sfi_x86::{Cond, Mem};

    #[test]
    fn use_def_classification() {
        let add = Inst::AluRI { op: AluOp::Add, dst: Gpr::Rbx, imm: 1, width: Width::Q };
        assert!(reads(&add, Gpr::Rbx) && defines(&add, Gpr::Rbx));
        let cmp = Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rbx, imm: 1, width: Width::Q };
        assert!(reads(&cmp, Gpr::Rbx) && !defines(&cmp, Gpr::Rbx), "cmp never writes dst");
        let mov = Inst::MovRI { dst: Gpr::Rsi, imm: 7, width: Width::D };
        assert!(!reads(&mov, Gpr::Rsi) && defines(&mov, Gpr::Rsi));
        let movw = Inst::MovRI { dst: Gpr::Rsi, imm: 7, width: Width::W };
        assert!(reads(&movw, Gpr::Rsi), "16-bit writes merge: old value is an input");
        let div = Inst::Div { src: Gpr::Rbx, width: Width::D, signed: false };
        assert!(reads(&div, Gpr::Rax) && reads(&div, Gpr::Rdx) && defines(&div, Gpr::Rax));
        let st = Inst::Store { src: Gpr::Rdi, mem: Mem::base_disp(Gpr::R8, 4), width: Width::Q };
        assert!(reads(&st, Gpr::Rdi) && reads(&st, Gpr::R8) && !defines(&st, Gpr::Rdi));
    }

    #[test]
    fn flags_liveness_scan() {
        let cmp = Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rbx, imm: 8, width: Width::Q };
        let ja = Inst::Jcc { cond: Cond::A, target: sfi_x86::Label(0) };
        let load = Inst::Load { dst: Gpr::Rsi, mem: Mem::base(Gpr::Rbx), width: Width::D };

        // Reader right after: observed.
        let insts = [load, ja];
        assert!(flags_observable_from(&insts, &[false; 3], 0));
        // Overwritten by the next cmp before any reader: dead.
        let insts = [load, cmp, ja];
        assert!(!flags_observable_from(&insts, &[false; 4], 0));
        // A label in between makes it a join: conservatively observed.
        let insts = [load, cmp, ja];
        assert!(flags_observable_from(&insts, &[false, true, false, false], 0));
        // Shifts by a masked-to-zero immediate leave flags intact.
        let sh0 =
            Inst::Shift { op: sfi_x86::inst::ShiftOp::Shl, dst: Gpr::Rbx, amount: ShiftAmount::Imm(32), width: Width::D };
        assert!(!writes_flags(&sh0));
        assert!(writes_flags(&Inst::Shift {
            op: sfi_x86::inst::ShiftOp::Shl,
            dst: Gpr::Rbx,
            amount: ShiftAmount::Imm(1),
            width: Width::D
        }));
    }
}
