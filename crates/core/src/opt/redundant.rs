//! Redundant-truncation and redundant-bounds-check elimination.
//!
//! **Truncation elimination.** The baseline compiler truncates i32 values
//! with `mov r32, r32` (zero-extending self-moves). That move is a no-op
//! when the register is already *32-bit clean* — its upper 32 bits are
//! provably zero — which is true after any 32-bit-destination write (x86
//! zeroes the upper half), after `movzx`/`setcc`, and after loading a small
//! constant. The pass tracks cleanliness block-locally and nops provably
//! redundant truncations. `mov r32, r32` writes no flags, so removal needs
//! no flags-liveness check.
//!
//! **Bounds-check elimination.** The bounds-checking strategies emit
//! `cmp r, limit` + `ja trap` pairs. On the fallthrough path the pair
//! proves `r <= limit` (unsigned); a later identical-or-looser check of the
//! same *unmodified* register can never take its branch and is removed —
//! but only when the `cmp`'s flags are provably dead afterwards, because
//! deleting the pair changes the flags left behind. A check is **never**
//! removed when the register was redefined in between, when the recorded
//! bound is looser than the new limit, or across a join point — those
//! checks can trap, and a trap is an architectural effect the optimized
//! tier must preserve.

use std::collections::{BTreeMap, BTreeSet};

use sfi_x86::inst::AluOp;
use sfi_x86::{Cond, Gpr, Inst, Width};

use super::{flags_observable_from, for_each_def, is_barrier, OptStats};

/// Whether executing `inst` leaves `dst`'s upper 32 bits zero (i.e. the
/// full value equals the zero-extension of its low 32 bits).
fn makes_clean(inst: &Inst, clean: &BTreeSet<Gpr>) -> Option<(Gpr, bool)> {
    let val = match *inst {
        // Any 32-bit-destination write zeroes the upper half.
        Inst::MovRR { dst, src, width } => match width {
            Width::D => (dst, true),
            Width::Q => (dst, clean.contains(&src)),
            _ => return None, // 8/16-bit writes merge: cleanliness unchanged
        },
        Inst::MovRI { dst, imm, width } => match width {
            Width::D => (dst, true),
            Width::Q => (dst, imm >= 0 && imm <= i64::from(u32::MAX)),
            _ => return None,
        },
        Inst::Load { dst, width, .. } => match width {
            Width::D => (dst, true),
            Width::Q => (dst, false),
            _ => return None,
        },
        // Zero-extension to 64 bits from <= 32 bits is clean by definition.
        Inst::LoadZx { dst, width, .. } => (dst, width <= Width::D),
        Inst::Movzx { dst, from, .. } => (dst, from <= Width::D),
        Inst::Setcc { dst, .. } => (dst, true),
        Inst::LoadSx { dst, .. } | Inst::Movsx { dst, .. } => (dst, false),
        Inst::Lea { dst, mem, width } => match width {
            Width::D => (dst, true),
            // A 64-bit lea of an addr32 operand produces a 32-bit value.
            Width::Q => (dst, mem.addr32),
            _ => return None,
        },
        Inst::AluRR { op, dst, width, .. }
        | Inst::AluRI { op, dst, width, .. }
        | Inst::AluRM { op, dst, width, .. } => {
            if !op.writes_dst() {
                return None;
            }
            match width {
                Width::D => (dst, true),
                Width::Q => (dst, false),
                _ => return None,
            }
        }
        Inst::Imul { dst, width, .. }
        | Inst::ImulRRI { dst, width, .. }
        | Inst::Shift { dst, width, .. }
        | Inst::Neg { dst, width }
        | Inst::Not { dst, width } => match width {
            Width::D => (dst, true),
            Width::Q => (dst, false),
            _ => return None,
        },
        // cmov in 32-bit form always writes (zero-extends) the destination,
        // taken or not.
        Inst::Cmov { dst, width, .. } => match width {
            Width::D => (dst, true),
            Width::Q => (dst, false),
            _ => return None,
        },
        Inst::Cdq { width } => match width {
            Width::D => (Gpr::Rdx, true),
            _ => (Gpr::Rdx, false),
        },
        Inst::Pop { reg } => (reg, false),
        Inst::RdGsBase { dst } => (dst, false),
        _ => return None,
    };
    Some(val)
}

pub(super) fn run(insts: &mut [Inst], leaders: &[bool], stats: &mut OptStats) {
    // Registers whose upper 32 bits are provably zero.
    let mut clean: BTreeSet<Gpr> = BTreeSet::new();
    // Proven unsigned upper bounds: `bound[r] == l` means the full 64-bit
    // value of `r` is <= l (established by a fallen-through `cmp; ja`).
    let mut bound: BTreeMap<Gpr, i32> = BTreeMap::new();

    let mut i = 0;
    while i < insts.len() {
        if leaders[i] {
            clean.clear();
            bound.clear();
        }
        let inst = insts[i];

        if is_barrier(&inst) {
            clean.clear();
            bound.clear();
            i += 1;
            continue;
        }

        // Redundant truncation: `mov r32, r32` on a clean register.
        if let Inst::MovRR { dst, src, width: Width::D } = inst {
            if dst == src && clean.contains(&dst) {
                insts[i] = Inst::Nop;
                stats.truncs_elided += 1;
                i += 1;
                continue; // value, cleanliness and bound all unchanged
            }
            // A truncation can only shrink the value: an unsigned bound
            // on `dst` survives it (handled below via makes_clean; the
            // bound map is only invalidated for *other* defs).
        }

        // Bounds-check pair: `cmp r, limit (Q)` + `ja ...` with no join in
        // between.
        if let Inst::AluRI { op: AluOp::Cmp, dst: r, imm: limit, width: Width::Q } = inst {
            if limit >= 0 && i + 1 < insts.len() && !leaders[i + 1] {
                if let Inst::Jcc { cond: Cond::A, .. } = insts[i + 1] {
                    let dominated = bound.get(&r).is_some_and(|&b| b <= limit);
                    if dominated && !flags_observable_from(insts, leaders, i + 2) {
                        // r <= recorded <= limit: the branch can never be
                        // taken, and nothing reads the cmp's flags.
                        insts[i] = Inst::Nop;
                        insts[i + 1] = Inst::Nop;
                        stats.bounds_checks_elided += 1;
                    } else {
                        // Fallthrough of `ja` proves r <= limit from here.
                        let new = bound.get(&r).map_or(limit, |&b| b.min(limit));
                        bound.insert(r, new);
                    }
                    i += 2;
                    continue;
                }
            }
        }

        // Transfer: cleanliness and bound invalidation on defs.
        let truncating_self_move =
            matches!(inst, Inst::MovRR { dst, src, width: Width::D } if dst == src);
        match makes_clean(&inst, &clean) {
            Some((dst, true)) => {
                clean.insert(dst);
            }
            Some((dst, false)) => {
                clean.remove(&dst);
            }
            None => {
                // 8/16-bit merges preserve the upper half; everything else
                // without a (dst, _) entry defines no GPR or is handled by
                // the generic def walk below.
                for_each_def(&inst, |d| {
                    if !matches!(inst, Inst::MovRR { width: Width::W | Width::B, .. })
                        && !matches!(
                            inst,
                            Inst::MovRI { width: Width::W | Width::B, .. }
                                | Inst::Load { width: Width::W | Width::B, .. }
                        )
                    {
                        clean.remove(&d);
                    }
                });
            }
        }
        // Any redefinition invalidates a recorded bound — except a
        // truncating self-move, which can only shrink the value.
        if !truncating_self_move {
            for_each_def(&inst, |d| {
                bound.remove(&d);
            });
        }

        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::super::leaders;
    use super::*;
    use sfi_x86::{Label, Mem, Program};

    fn run_pass(p: &mut Program) -> OptStats {
        let mut stats = OptStats::default();
        let l = leaders(p);
        run(p.insts_mut(), &l, &mut stats);
        stats
    }

    fn trunc(r: Gpr) -> Inst {
        Inst::MovRR { dst: r, src: r, width: Width::D }
    }

    #[test]
    fn truncation_after_32bit_write_is_elided() {
        let mut p = Program::new();
        p.push(Inst::Load { dst: Gpr::Rbx, mem: Mem::abs(0x100), width: Width::D });
        p.push(trunc(Gpr::Rbx));
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.truncs_elided, 1);
        assert_eq!(p.insts()[1], Inst::Nop);
    }

    #[test]
    fn truncation_after_64bit_write_is_kept() {
        let mut p = Program::new();
        p.push(Inst::Load { dst: Gpr::Rbx, mem: Mem::abs(0x100), width: Width::Q });
        p.push(trunc(Gpr::Rbx));
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.truncs_elided, 0);
        assert_eq!(p.insts()[1], trunc(Gpr::Rbx));
    }

    #[test]
    fn truncation_not_elided_across_join() {
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::Load { dst: Gpr::Rbx, mem: Mem::abs(0x100), width: Width::D });
        p.bind(l);
        p.push(trunc(Gpr::Rbx)); // a predecessor jumping to l may be dirty
        p.push(Inst::Jcc { cond: Cond::Ne, target: l });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.truncs_elided, 0);
    }

    #[test]
    fn second_truncation_is_elided_after_first() {
        // The first self-move makes the register clean, so only the second
        // goes away.
        let mut p = Program::new();
        p.push(Inst::Load { dst: Gpr::Rbx, mem: Mem::abs(0x100), width: Width::Q });
        p.push(trunc(Gpr::Rbx));
        p.push(trunc(Gpr::Rbx));
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.truncs_elided, 1);
        assert_eq!(p.insts()[1], trunc(Gpr::Rbx));
        assert_eq!(p.insts()[2], Inst::Nop);
    }

    fn check(r: Gpr, limit: i32, trap: Label) -> [Inst; 2] {
        [
            Inst::AluRI { op: AluOp::Cmp, dst: r, imm: limit, width: Width::Q },
            Inst::Jcc { cond: Cond::A, target: trap },
        ]
    }

    #[test]
    fn dominated_bounds_check_is_elided() {
        let mut p = Program::new();
        let trap = p.fresh_label();
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.push(Inst::Load { dst: Gpr::Rsi, mem: Mem::base(Gpr::Rbx), width: Width::D });
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.push(Inst::Load { dst: Gpr::Rdi, mem: Mem::base(Gpr::Rbx), width: Width::D });
        p.push(Inst::Ret);
        p.bind(trap);
        p.push(Inst::Ud2);
        let stats = run_pass(&mut p);
        assert_eq!(stats.bounds_checks_elided, 1);
        assert_eq!(p.insts()[3], Inst::Nop);
        assert_eq!(p.insts()[4], Inst::Nop);
        assert!(matches!(p.insts()[0], Inst::AluRI { .. }), "first check stays");
    }

    #[test]
    fn tighter_second_check_is_never_dropped() {
        // r <= 100 does not imply r <= 50: the second check can trap.
        let mut p = Program::new();
        let trap = p.fresh_label();
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        for inst in check(Gpr::Rbx, 50, trap) {
            p.push(inst);
        }
        p.push(Inst::Ret);
        p.bind(trap);
        p.push(Inst::Ud2);
        let stats = run_pass(&mut p);
        assert_eq!(stats.bounds_checks_elided, 0);
    }

    #[test]
    fn check_kept_when_register_redefined() {
        let mut p = Program::new();
        let trap = p.fresh_label();
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rbx, imm: 1, width: Width::Q });
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.push(Inst::Ret);
        p.bind(trap);
        p.push(Inst::Ud2);
        let stats = run_pass(&mut p);
        assert_eq!(stats.bounds_checks_elided, 0, "redefined register can exceed the bound");
    }

    #[test]
    fn check_kept_across_join_point() {
        let mut p = Program::new();
        let trap = p.fresh_label();
        let join = p.fresh_label();
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.bind(join);
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.push(Inst::Jcc { cond: Cond::A, target: join });
        p.push(Inst::Ret);
        p.bind(trap);
        p.push(Inst::Ud2);
        let stats = run_pass(&mut p);
        assert_eq!(stats.bounds_checks_elided, 0, "a join predecessor may carry a larger value");
    }

    #[test]
    fn check_survives_truncating_self_move() {
        // Truncation can only shrink the unsigned value, so the recorded
        // bound still holds and the second check is elided.
        let mut p = Program::new();
        let trap = p.fresh_label();
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.push(Inst::Load { dst: Gpr::Rsi, mem: Mem::base(Gpr::Rbx), width: Width::D });
        p.push(trunc(Gpr::Rbx));
        for inst in check(Gpr::Rbx, 100, trap) {
            p.push(inst);
        }
        p.push(Inst::Ret);
        p.bind(trap);
        p.push(Inst::Ud2);
        let stats = run_pass(&mut p);
        assert_eq!(stats.bounds_checks_elided, 1);
    }
}
