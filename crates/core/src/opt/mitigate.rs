//! Spectre-mitigation insertion passes (DESIGN.md §16).
//!
//! Each [`MitigationLevel`] is a label-stable pass that runs *after* the
//! optimizing pipeline and the vectorizer, over the finished program:
//! insertions go through [`Program::insert`], which keeps every label
//! pointing at the instruction it was bound to, and every inserted
//! instruction is tagged [`Provenance::SpecMitigation`] so the §14 profiler
//! attributes exactly what hardening costs.
//!
//! - **Lfence** — an `lfence` at every speculation-window entry point: the
//!   fall-through of every conditional branch and every bound-label
//!   position (conditional-branch targets, function entries, indirect
//!   targets). The emulator's transient window cannot cross an `lfence`,
//!   so every modeled wrong path dies on its first µop.
//! - **Slh** — speculative load hardening: after each `cmp r, limit; ja
//!   trap` bounds check, a predicated `cmov` rewrites `r` to 0 on the
//!   should-have-trapped path. Architecturally dead (the condition is
//!   false on the fall-through by construction); transiently it starves
//!   the bounds-check-bypass gadget of its out-of-bounds index.
//! - **IndexMask** — an `and index, mem_size-1` immediately before every
//!   sandbox memory operand. The mask is plain data flow, so it executes
//!   on the wrong path too, clamping each address component into the
//!   sandbox (the secret region is placed far enough beyond the guard
//!   that component-wise clamping keeps every masked access short of it).
//!
//! Because insertion shifts instruction indices, the driver in
//! [`crate::compile`] recomputes `func_entries` from the (label-stable)
//! entry labels after this pass runs.

use crate::config::{regs, CompilerConfig, MitigationLevel};
use crate::opt::{leaders, reads_flags, writes_flags};
use sfi_x86::inst::AluOp;
use sfi_x86::{Cond, Gpr, Inst, Program, Provenance, Width};

/// Runs the mitigation pass for `config.mitigation`. Returns the number of
/// instructions inserted (0 for [`MitigationLevel::None`]).
pub fn run(program: &mut Program, config: &CompilerConfig) -> usize {
    match config.mitigation {
        MitigationLevel::None => 0,
        MitigationLevel::Lfence => insert_lfences(program),
        MitigationLevel::Slh => insert_slh(program),
        MitigationLevel::IndexMask => insert_index_masks(program, config),
    }
}

/// Collects every window entry point, then inserts `lfence`s from the
/// highest index down so earlier collected positions stay valid.
fn insert_lfences(program: &mut Program) -> usize {
    let mut positions = std::collections::BTreeSet::new();
    for (i, inst) in program.insts().iter().enumerate() {
        if matches!(inst, Inst::Jcc { .. }) {
            positions.insert(i + 1);
        }
    }
    for (_, pos) in program.label_positions() {
        positions.insert(pos);
    }
    let mut inserted = 0;
    for &pos in positions.iter().rev() {
        if pos > program.len() {
            continue;
        }
        // A window entering a trap pad dies on the `ud2` anyway.
        if matches!(program.insts().get(pos), Some(Inst::Ud2)) {
            continue;
        }
        program.insert(pos, Inst::Lfence, Provenance::SpecMitigation);
        inserted += 1;
    }
    inserted
}

/// Matches `cmp r, limit; ja <ud2>` bounds checks and inserts the
/// predicated zeroing sequence on the fall-through:
/// `push z; mov z, 0; cmova r, z; pop z` (none of which write flags, so
/// the sequence is transparent to any later flags reader).
fn insert_slh(program: &mut Program) -> usize {
    let mut sites: Vec<(usize, Gpr)> = Vec::new();
    let insts = program.insts();
    for i in 0..insts.len().saturating_sub(1) {
        let Inst::AluRI { op: AluOp::Cmp, dst, .. } = insts[i] else { continue };
        let Inst::Jcc { cond: Cond::A, target } = insts[i + 1] else { continue };
        let Some(t) = program.resolve(target) else { continue };
        if matches!(insts.get(t), Some(Inst::Ud2)) {
            sites.push((i + 2, dst));
        }
    }
    for &(pos, r) in sites.iter().rev() {
        // The zero register must differ from the index being hardened; both
        // choices are caller-saved scratch, preserved by the push/pop.
        let z = if r == Gpr::Rax { Gpr::Rcx } else { Gpr::Rax };
        program.insert(pos, Inst::Push { reg: z }, Provenance::SpecMitigation);
        program.insert(pos + 1, Inst::MovRI { dst: z, imm: 0, width: Width::D }, Provenance::SpecMitigation);
        program.insert(
            pos + 2,
            Inst::Cmov { cond: Cond::A, dst: r, src: z, width: Width::Q },
            Provenance::SpecMitigation,
        );
        program.insert(pos + 3, Inst::Pop { reg: z }, Provenance::SpecMitigation);
    }
    sites.len() * 4
}

/// Whether the flags live at instruction `i` are read before being
/// overwritten, scanning **straight-line** code only. Unlike
/// [`crate::opt::flags_observable_from`] — which answers "maybe" at every
/// label and branch for the optimizer's any-program soundness — this uses
/// the compiler's own calling convention (every emitted flags reader is
/// directly preceded by its writer in the same basic block, and flags die
/// at calls/returns), so reaching a leader, any control flow, or the end
/// of the program means the flags are dead. Precision matters here:
/// treating block ends as "maybe live" would leave the sandbox accesses
/// that sit last in their block unmasked — exactly the hole a
/// bounds-check-bypass gadget needs.
fn flags_live_at(insts: &[Inst], lead: &[bool], i: usize) -> bool {
    for (j, inst) in insts.iter().enumerate().skip(i) {
        if j > i && lead[j] {
            return false;
        }
        if reads_flags(inst) {
            return true;
        }
        if writes_flags(inst)
            || inst.is_control_flow()
            || matches!(inst, Inst::CallHost { .. } | Inst::Ret | Inst::Ud2)
        {
            return false;
        }
    }
    false
}

/// Inserts `and reg, mem_size-1` before every sandbox memory operand
/// (`%gs`-relative, or indexed off the reserved heap-base register).
///
/// The `and` writes flags, so a site where the current flags are still
/// live ([`flags_live_at`]) is skipped — in emitted code every flags
/// consumer directly follows its producer, so sandbox accesses never sit
/// in such a span; the check is a safety net for future codegen changes.
fn insert_index_masks(program: &mut Program, config: &CompilerConfig) -> usize {
    debug_assert!(config.layout.mem_size.is_power_of_two());
    let mask = (config.layout.mem_size - 1) as u32 as i32;
    // Only strategies that reserve the heap-base GPR address the sandbox
    // through it; elsewhere (e.g. Segue) that register is an ordinary
    // allocatable GPR and must be masked like any other address component.
    let heap_reserved = config.strategy.reserves_heap_gpr();
    let lead = leaders(program);
    let mut sites: Vec<(usize, Vec<Gpr>)> = Vec::new();
    let insts = program.insts();
    for (i, inst) in insts.iter().enumerate() {
        let Some(mem) = inst.mem() else { continue };
        let mut to_mask = Vec::new();
        if mem.seg == Some(sfi_x86::Seg::Gs) {
            if let Some(b) = mem.base {
                to_mask.push(b);
            }
            if let Some((idx, _)) = mem.index {
                to_mask.push(idx);
            }
        } else if heap_reserved && mem.base == Some(regs::HEAP_BASE) {
            if let Some((idx, _)) = mem.index {
                to_mask.push(idx);
            }
        }
        to_mask.retain(|&r| {
            (!heap_reserved || r != regs::HEAP_BASE) && r != Gpr::Rsp && r != regs::FRAME
        });
        if to_mask.is_empty() {
            continue;
        }
        if flags_live_at(insts, &lead, i) {
            continue;
        }
        sites.push((i, to_mask));
    }
    let mut inserted = 0;
    for (pos, regs_to_mask) in sites.iter().rev() {
        for (k, &r) in regs_to_mask.iter().enumerate() {
            program.insert(
                pos + k,
                Inst::AluRI { op: AluOp::And, dst: r, imm: mask, width: Width::D },
                Provenance::SpecMitigation,
            );
            inserted += 1;
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use crate::CompilerConfig;
    use sfi_x86::Mem;

    fn count_tagged(p: &Program) -> usize {
        (0..p.len()).filter(|&i| p.prov_at(i) == Provenance::SpecMitigation).count()
    }

    #[test]
    fn none_is_identity() {
        let mut p = Program::new();
        p.push(Inst::Ret);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        assert_eq!(run(&mut p, &cfg), 0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn lfence_covers_branch_edges_and_labels() {
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rbx, imm: 4, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::Ne, target: l });
        p.push(Inst::Nop); // fall-through
        p.bind(l);
        p.push(Inst::Ret); // target
        let cfg = CompilerConfig::for_strategy(Strategy::Segue).mitigated(MitigationLevel::Lfence);
        let n = run(&mut p, &cfg);
        assert_eq!(n, 2, "one fence per distinct edge position");
        assert_eq!(count_tagged(&p), 2);
        // The branch target label must now point at a fence.
        let t = p.resolve(l).unwrap();
        assert!(matches!(p.insts()[t], Inst::Lfence));
        // Fall-through: the instruction after the jcc is a fence.
        assert!(matches!(p.insts()[2], Inst::Lfence));
    }

    #[test]
    fn slh_matches_only_trap_bound_checks() {
        let mut p = Program::new();
        let trap = p.fresh_label();
        let out = p.fresh_label();
        // A bounds check (→ ud2): hardened.
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rbx, imm: 100, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::A, target: trap });
        p.push(Inst::Load { dst: Gpr::Rsi, mem: Mem::base(Gpr::Rbx), width: Width::D });
        // An ordinary compare-and-branch: left alone.
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rsi, imm: 0, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::A, target: out });
        p.push(Inst::Nop);
        p.bind(out);
        p.push(Inst::Ret);
        p.bind(trap);
        p.push(Inst::Ud2);
        let cfg = CompilerConfig::for_strategy(Strategy::BoundsCheck).mitigated(MitigationLevel::Slh);
        let n = run(&mut p, &cfg);
        assert_eq!(n, 4, "one 4-inst sequence for the single trap-bound check");
        // The sequence sits on the fall-through, right after the ja.
        assert!(matches!(p.insts()[2], Inst::Push { reg: Gpr::Rax }));
        assert!(matches!(p.insts()[3], Inst::MovRI { dst: Gpr::Rax, imm: 0, .. }));
        assert!(matches!(
            p.insts()[4],
            Inst::Cmov { cond: Cond::A, dst: Gpr::Rbx, src: Gpr::Rax, width: Width::Q }
        ));
        assert!(matches!(p.insts()[5], Inst::Pop { reg: Gpr::Rax }));
        // Labels survived: the trap label still lands on the ud2.
        let t = p.resolve(trap).unwrap();
        assert!(matches!(p.insts()[t], Inst::Ud2));
    }

    #[test]
    fn slh_avoids_rax_collision() {
        let mut p = Program::new();
        let trap = p.fresh_label();
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rax, imm: 100, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::A, target: trap });
        p.push(Inst::Ret);
        p.bind(trap);
        p.push(Inst::Ud2);
        let cfg = CompilerConfig::for_strategy(Strategy::BoundsCheck).mitigated(MitigationLevel::Slh);
        run(&mut p, &cfg);
        assert!(matches!(
            p.insts()[4],
            Inst::Cmov { cond: Cond::A, dst: Gpr::Rax, src: Gpr::Rcx, .. }
        ));
    }

    #[test]
    fn index_mask_targets_sandbox_operands_only() {
        let mut p = Program::new();
        // A gs-relative load: masked.
        p.push(Inst::Load {
            dst: Gpr::Rsi,
            mem: Mem::base(Gpr::Rbx).with_seg(sfi_x86::Seg::Gs).with_addr32(),
            width: Width::D,
        });
        // A heap-base-indexed store: index masked.
        p.push(Inst::Store {
            src: Gpr::Rsi,
            mem: Mem::bisd(regs::HEAP_BASE, Gpr::Rdi, sfi_x86::Scale::S1, 8),
            width: Width::D,
        });
        // A frame access: untouched.
        p.push(Inst::Load { dst: Gpr::Rsi, mem: Mem::base_disp(regs::FRAME, -8), width: Width::Q });
        p.push(Inst::Ret);
        let cfg =
            CompilerConfig::for_strategy(Strategy::GuardRegion).mitigated(MitigationLevel::IndexMask);
        let n = run(&mut p, &cfg);
        assert_eq!(n, 2);
        let want = (cfg.layout.mem_size - 1) as u32 as i32;
        assert!(matches!(
            p.insts()[0],
            Inst::AluRI { op: AluOp::And, dst: Gpr::Rbx, imm, width: Width::D } if imm == want
        ));
        assert!(matches!(
            p.insts()[2],
            Inst::AluRI { op: AluOp::And, dst: Gpr::Rdi, imm, width: Width::D } if imm == want
        ));
        assert_eq!(count_tagged(&p), 2);
    }

    #[test]
    fn index_mask_skips_live_flags_spans() {
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rsi, imm: 0, width: Width::Q });
        // A sandbox load between a cmp and its consumer: inserting a
        // flag-writing `and` here would corrupt the branch.
        p.push(Inst::Load {
            dst: Gpr::Rdx,
            mem: Mem::base(Gpr::Rbx).with_seg(sfi_x86::Seg::Gs),
            width: Width::D,
        });
        p.push(Inst::Jcc { cond: Cond::Ne, target: l });
        p.bind(l);
        p.push(Inst::Ret);
        let cfg = CompilerConfig::for_strategy(Strategy::Segue).mitigated(MitigationLevel::IndexMask);
        assert_eq!(run(&mut p, &cfg), 0, "live-flags site must be skipped");
    }
}
