//! Block-local constant propagation and folding.
//!
//! Tracks the exact 64-bit architectural value of each register through a
//! basic block, mirroring the emulator's semantics bit for bit (width
//! masking, 32-bit zero-extension, 8/16-bit merge writes, shift-count
//! masking). An ALU instruction whose operands are all known becomes a
//! `mov dst, imm` — but only when the flags it would have written are
//! provably dead, because `add`/`sub`/`neg`/nonzero shifts update flags and
//! a later `jcc`/`setcc`/`cmov` may observe them. `imul`, `not` and `lea`
//! never write flags in this model and fold unconditionally.
//!
//! `div`/`idiv` are **never** folded or removed, whatever is known about
//! their operands: a divide-by-zero (or quotient-overflow) trap is an
//! architectural effect the optimized tier must preserve exactly.
//!
//! A `mov r, imm` whose register is fully overwritten before any read is
//! dead and becomes `nop` — constant rematerialization downstream often
//! leaves these behind.

use std::collections::BTreeMap;

use sfi_x86::inst::{AluOp, ShiftAmount, ShiftOp};
use sfi_x86::{Gpr, Inst, Width};

use super::{flags_observable_from, for_each_use, is_barrier, OptStats};

/// Applies `write_width` semantics to the known-value map: `None` means the
/// written value is unknown.
fn write_reg(known: &mut BTreeMap<Gpr, u64>, dst: Gpr, width: Width, v: Option<u64>) {
    match (width, v) {
        (Width::Q, Some(v)) => {
            known.insert(dst, v);
        }
        (Width::D, Some(v)) => {
            known.insert(dst, v & 0xFFFF_FFFF);
        }
        (Width::W | Width::B, Some(v)) => {
            // 8/16-bit writes merge, so the result is only known when the
            // previous full value is known too.
            if let Some(old) = known.get(&dst).copied() {
                let merged = match width {
                    Width::W => (old & !0xFFFF) | (v & 0xFFFF),
                    _ => (old & !0xFF) | (v & 0xFF),
                };
                known.insert(dst, merged);
            } else {
                known.remove(&dst);
            }
        }
        (Width::Q | Width::D, None) => {
            known.remove(&dst);
        }
        (Width::W | Width::B, None) => {
            known.remove(&dst);
        }
    }
}

/// The cheapest `mov dst, imm` that leaves `dst` holding exactly `value`:
/// a 32-bit move when the value zero-extends (5-byte encoding), `movabs`
/// otherwise.
fn const_mov(dst: Gpr, value: u64) -> Inst {
    if value <= u64::from(u32::MAX) {
        Inst::MovRI { dst, imm: value as i64, width: Width::D }
    } else {
        Inst::MovRI { dst, imm: value as i64, width: Width::Q }
    }
}

/// Mirrors the emulator's ALU result (the value only; flags handled by the
/// caller's liveness scan).
fn alu_value(op: AluOp, a: u64, b: u64, width: Width) -> u64 {
    match op {
        AluOp::Add => width.mask(a.wrapping_add(b)),
        AluOp::Sub | AluOp::Cmp => width.mask(a.wrapping_sub(b)),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
    }
}

/// Mirrors the emulator's shift result for a masked count `n`.
fn shift_value(op: ShiftOp, a: u64, n: u32, width: Width) -> u64 {
    let bits = width.bytes() as u32 * 8;
    let r = match op {
        ShiftOp::Shl => a.wrapping_shl(n),
        ShiftOp::Shr => a.wrapping_shr(n),
        ShiftOp::Sar => (width.sext(a) as i64).wrapping_shr(n) as u64,
        ShiftOp::Rol => {
            if n == 0 {
                a
            } else {
                (a << n | a >> (bits - n)) & width.mask(u64::MAX)
            }
        }
        ShiftOp::Ror => {
            if n == 0 {
                a
            } else {
                (a >> n | a << (bits - n)) & width.mask(u64::MAX)
            }
        }
    };
    width.mask(r)
}

pub(super) fn run(insts: &mut [Inst], leaders: &[bool], stats: &mut OptStats) {
    // Exact 64-bit value of each register, where known.
    let mut known: BTreeMap<Gpr, u64> = BTreeMap::new();
    // `mov r, imm` instructions whose value has not been read yet — dead if
    // the register is fully overwritten first.
    let mut pending: BTreeMap<Gpr, usize> = BTreeMap::new();

    for i in 0..insts.len() {
        if leaders[i] {
            known.clear();
            pending.clear();
        }
        let inst = insts[i];

        // Any read makes the pending constant live.
        for_each_use(&inst, |r| {
            pending.remove(&r);
        });

        if is_barrier(&inst) {
            known.clear();
            pending.clear();
            continue;
        }
        if inst.is_control_flow() {
            // Registers are unchanged on fallthrough so `known` survives,
            // but the branch target may read anything: pending constants
            // are no longer provably dead.
            pending.clear();
            continue;
        }

        // A full (32/64-bit) overwrite of a pending constant's register
        // proves that constant dead.
        let kill_full = |pending: &mut BTreeMap<Gpr, usize>,
                             insts: &mut [Inst],
                             stats: &mut OptStats,
                             dst: Gpr| {
            if let Some(j) = pending.remove(&dst) {
                insts[j] = Inst::Nop;
                stats.dead_consts_removed += 1;
            }
        };

        match inst {
            Inst::MovRI { dst, imm, width } => match width {
                Width::Q | Width::D => {
                    kill_full(&mut pending, insts, stats, dst);
                    write_reg(&mut known, dst, width, Some(imm as u64));
                    pending.insert(dst, i);
                }
                _ => write_reg(&mut known, dst, width, Some(imm as u64)),
            },
            Inst::MovRR { dst, src, width } => {
                if matches!(width, Width::Q | Width::D) {
                    kill_full(&mut pending, insts, stats, dst);
                }
                let v = known.get(&src).map(|&v| width.mask(v));
                write_reg(&mut known, dst, width, v);
            }
            Inst::Load { dst, width, .. } => {
                if matches!(width, Width::Q | Width::D) {
                    kill_full(&mut pending, insts, stats, dst);
                }
                write_reg(&mut known, dst, width, None);
            }
            Inst::LoadSx { dst, .. } | Inst::LoadZx { dst, .. } | Inst::RdGsBase { dst } => {
                kill_full(&mut pending, insts, stats, dst);
                known.remove(&dst);
            }
            Inst::Pop { reg } => {
                kill_full(&mut pending, insts, stats, reg);
                known.remove(&reg);
            }
            Inst::Lea { dst, mem, width } => {
                let all_known = || -> Option<u64> {
                    let mut ea = mem.disp as i64 as u64;
                    if let Some(b) = mem.base {
                        ea = ea.wrapping_add(*known.get(&b)?);
                    }
                    if let Some((r, s)) = mem.index {
                        ea = ea.wrapping_add(known.get(&r)?.wrapping_mul(s.factor()));
                    }
                    if mem.addr32 {
                        ea &= 0xFFFF_FFFF;
                    }
                    Some(ea)
                };
                let v = all_known();
                if matches!(width, Width::Q | Width::D) {
                    kill_full(&mut pending, insts, stats, dst);
                    if let Some(ea) = v {
                        // lea never writes flags: fold unconditionally.
                        let value = width.mask(ea);
                        insts[i] = const_mov(dst, value);
                        stats.consts_folded += 1;
                        known.insert(dst, value);
                        pending.insert(dst, i);
                        continue;
                    }
                }
                write_reg(&mut known, dst, width, v);
            }
            Inst::Movzx { dst, src, from } => {
                kill_full(&mut pending, insts, stats, dst);
                if let Some(&v) = known.get(&src) {
                    let value = from.mask(v);
                    insts[i] = const_mov(dst, value);
                    stats.consts_folded += 1;
                    known.insert(dst, value);
                    pending.insert(dst, i);
                } else {
                    known.remove(&dst);
                }
            }
            Inst::Movsx { dst, src, from } => {
                kill_full(&mut pending, insts, stats, dst);
                if let Some(&v) = known.get(&src) {
                    let value = from.sext(v);
                    insts[i] = const_mov(dst, value);
                    stats.consts_folded += 1;
                    known.insert(dst, value);
                    pending.insert(dst, i);
                } else {
                    known.remove(&dst);
                }
            }
            Inst::AluRR { op, dst, src, width } => {
                if !op.writes_dst() {
                    continue; // cmp: flags only, nothing to fold safely
                }
                let v = match (known.get(&dst), known.get(&src)) {
                    (Some(&a), Some(&b)) => {
                        Some(alu_value(op, width.mask(a), width.mask(b), width))
                    }
                    _ => None,
                };
                fold_alu(insts, leaders, i, dst, width, v, &mut known, &mut pending, stats);
            }
            Inst::AluRI { op, dst, imm, width } => {
                if !op.writes_dst() {
                    continue;
                }
                let v = known
                    .get(&dst)
                    .map(|&a| alu_value(op, width.mask(a), width.mask(imm as i64 as u64), width));
                fold_alu(insts, leaders, i, dst, width, v, &mut known, &mut pending, stats);
            }
            // Memory source: the loaded value is unknown (and the load
            // itself must stay — it can fault).
            Inst::AluRM { op, dst, width, .. } if op.writes_dst() => {
                if matches!(width, Width::Q | Width::D) {
                    kill_full(&mut pending, insts, stats, dst);
                }
                write_reg(&mut known, dst, width, None);
            }
            Inst::AluRM { .. } => {}
            Inst::TestRR { .. } => {}
            Inst::Imul { dst, src, width } => {
                let v = match (known.get(&dst), known.get(&src)) {
                    (Some(&a), Some(&b)) => {
                        Some(width.mask(width.mask(a).wrapping_mul(width.mask(b))))
                    }
                    _ => None,
                };
                // imul writes no flags in this model: fold unconditionally.
                fold_flagless(insts, i, dst, width, v, &mut known, &mut pending, stats);
            }
            Inst::ImulRRI { dst, src, imm, width } => {
                let v = known
                    .get(&src)
                    .map(|&a| width.mask(width.mask(a).wrapping_mul(width.mask(imm as i64 as u64))));
                fold_flagless(insts, i, dst, width, v, &mut known, &mut pending, stats);
            }
            Inst::Div { .. } => {
                // Never folded, never removed: div-by-zero and quotient
                // overflow must trap exactly as in baseline code.
                known.remove(&Gpr::Rax);
                known.remove(&Gpr::Rdx);
                pending.remove(&Gpr::Rax);
                pending.remove(&Gpr::Rdx);
            }
            Inst::Cdq { width } => {
                let v = known.get(&Gpr::Rax).map(|&a| {
                    let neg = width.mask(a) >> width.sign_bit() & 1 == 1;
                    if neg {
                        width.mask(u64::MAX)
                    } else {
                        0
                    }
                });
                write_reg(&mut known, Gpr::Rdx, width, v);
            }
            Inst::Shift { op, dst, amount, width } => {
                let bits = width.bytes() as u32 * 8;
                match amount {
                    ShiftAmount::Imm(raw) => {
                        let n = u32::from(raw) & (bits - 1);
                        let v = known.get(&dst).map(|&a| shift_value(op, width.mask(a), n, width));
                        if n == 0 {
                            // Masked-to-zero count writes no flags.
                            fold_flagless(insts, i, dst, width, v, &mut known, &mut pending, stats);
                        } else {
                            fold_alu(insts, leaders, i, dst, width, v, &mut known, &mut pending, stats);
                        }
                    }
                    ShiftAmount::Cl => {
                        if matches!(width, Width::Q | Width::D) {
                            kill_full(&mut pending, insts, stats, dst);
                        }
                        write_reg(&mut known, dst, width, None);
                    }
                }
            }
            Inst::Neg { dst, width } => {
                let v = known.get(&dst).map(|&a| alu_value(AluOp::Sub, 0, width.mask(a), width));
                fold_alu(insts, leaders, i, dst, width, v, &mut known, &mut pending, stats);
            }
            Inst::Not { dst, width } => {
                let v = known.get(&dst).map(|&a| width.mask(!width.mask(a)));
                fold_flagless(insts, i, dst, width, v, &mut known, &mut pending, stats);
            }
            Inst::Cmov { dst, width, .. } => {
                // Condition unknown; in 32-bit form even the not-taken path
                // truncates, so the value is unknown either way.
                if matches!(width, Width::Q | Width::D) {
                    kill_full(&mut pending, insts, stats, dst);
                }
                write_reg(&mut known, dst, width, None);
            }
            Inst::Setcc { dst, .. } => {
                kill_full(&mut pending, insts, stats, dst);
                known.remove(&dst);
            }
            _ => {}
        }
    }
}

/// Folds a flags-writing instruction whose result is `v`, but only when the
/// flags it would produce are provably unobserved. Updates `known` either
/// way.
#[allow(clippy::too_many_arguments)]
fn fold_alu(
    insts: &mut [Inst],
    leaders: &[bool],
    i: usize,
    dst: Gpr,
    width: Width,
    v: Option<u64>,
    known: &mut BTreeMap<Gpr, u64>,
    pending: &mut BTreeMap<Gpr, usize>,
    stats: &mut OptStats,
) {
    if let Some(v) = v {
        if matches!(width, Width::Q | Width::D) && !flags_observable_from(insts, leaders, i + 1) {
            // The full register value after a D-width write is the masked
            // result zero-extended, which `write_reg` already models.
            let value = width.mask(v);
            insts[i] = const_mov(dst, value);
            stats.consts_folded += 1;
            known.insert(dst, value);
            pending.insert(dst, i);
            return;
        }
    }
    if let Some(j) = pending.get(&dst).copied() {
        // The register is being overwritten, but by an instruction we are
        // keeping; the overwrite still proves the pending constant dead for
        // Q/D widths.
        if matches!(width, Width::Q | Width::D) {
            insts[j] = Inst::Nop;
            stats.dead_consts_removed += 1;
            pending.remove(&dst);
        }
    }
    write_reg(known, dst, width, v);
}

/// Folds an instruction that writes no flags (imul, not, masked-zero
/// shifts): legal whenever the result is known.
#[allow(clippy::too_many_arguments)]
fn fold_flagless(
    insts: &mut [Inst],
    i: usize,
    dst: Gpr,
    width: Width,
    v: Option<u64>,
    known: &mut BTreeMap<Gpr, u64>,
    pending: &mut BTreeMap<Gpr, usize>,
    stats: &mut OptStats,
) {
    if let Some(v) = v {
        if matches!(width, Width::Q | Width::D) {
            let value = width.mask(v);
            insts[i] = const_mov(dst, value);
            stats.consts_folded += 1;
            known.insert(dst, value);
            pending.insert(dst, i);
            return;
        }
    }
    if let Some(j) = pending.get(&dst).copied() {
        if matches!(width, Width::Q | Width::D) {
            insts[j] = Inst::Nop;
            stats.dead_consts_removed += 1;
            pending.remove(&dst);
        }
    }
    write_reg(known, dst, width, v);
}

#[cfg(test)]
mod tests {
    use super::super::leaders;
    use super::*;
    use sfi_x86::{Cond, Mem, Program};

    fn run_pass(p: &mut Program) -> OptStats {
        let mut stats = OptStats::default();
        let l = leaders(p);
        run(p.insts_mut(), &l, &mut stats);
        stats
    }

    #[test]
    fn add_folds_with_i32_wraparound() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0xFFFF_FFFF, width: Width::D });
        p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rbx, imm: 1, width: Width::D });
        // Flags die here (full ALU overwrite before any reader).
        p.push(Inst::AluRR { op: AluOp::Add, dst: Gpr::Rsi, src: Gpr::Rdi, width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.consts_folded, 1);
        // i32 wrap-around: 0xFFFF_FFFF + 1 == 0 at D width.
        assert_eq!(p.insts()[1], Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::D });
    }

    #[test]
    fn fold_blocked_when_flags_are_observed() {
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 7, width: Width::D });
        p.push(Inst::AluRI { op: AluOp::Add, dst: Gpr::Rbx, imm: 1, width: Width::D });
        p.push(Inst::Jcc { cond: Cond::E, target: l });
        p.bind(l);
        p.push(Inst::Ret);
        let before = p.insts().to_vec();
        let stats = run_pass(&mut p);
        assert_eq!(stats.consts_folded, 0, "jcc observes the add's flags");
        assert_eq!(p.insts(), &before[..]);
    }

    #[test]
    fn imul_and_not_fold_without_flag_liveness() {
        // imul/not never write flags in this model, so they fold even with
        // a live jcc consuming an earlier cmp.
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 6, width: Width::D });
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rdi, imm: 0, width: Width::Q });
        p.push(Inst::ImulRRI { dst: Gpr::Rsi, src: Gpr::Rbx, imm: 7, width: Width::D });
        p.push(Inst::Jcc { cond: Cond::E, target: l });
        p.bind(l);
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.consts_folded, 1);
        assert_eq!(p.insts()[2], Inst::MovRI { dst: Gpr::Rsi, imm: 42, width: Width::D });
        assert!(matches!(p.insts()[3], Inst::Jcc { .. }), "branch untouched");
    }

    #[test]
    fn div_never_folds_even_with_known_zero_divisor() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0, width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rax, imm: 5, width: Width::D });
        p.push(Inst::MovRI { dst: Gpr::Rdx, imm: 0, width: Width::D });
        p.push(Inst::Div { src: Gpr::Rbx, width: Width::D, signed: false });
        p.push(Inst::Ret);
        let before = p.insts().to_vec();
        let stats = run_pass(&mut p);
        assert_eq!(stats.total(), 0, "div-by-zero trap must be preserved bit-for-bit");
        assert_eq!(p.insts(), &before[..]);
    }

    #[test]
    fn dead_constant_is_removed_but_live_one_kept() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 1, width: Width::Q });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 2, width: Width::Q });
        p.push(Inst::Store { src: Gpr::Rbx, mem: Mem::abs(0x100), width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.dead_consts_removed, 1);
        assert_eq!(p.insts()[0], Inst::Nop);
        assert_eq!(p.insts()[1], Inst::MovRI { dst: Gpr::Rbx, imm: 2, width: Width::Q });
    }

    #[test]
    fn constant_not_dead_across_branch_or_label() {
        // A branch can read the constant at its target; a label means an
        // unknown predecessor might have set up a read.
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 1, width: Width::Q });
        p.push(Inst::Jcc { cond: Cond::E, target: l });
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 2, width: Width::Q });
        p.bind(l);
        p.push(Inst::Store { src: Gpr::Rbx, mem: Mem::abs(0x100), width: Width::Q });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.dead_consts_removed, 0);
        assert_eq!(p.insts()[0], Inst::MovRI { dst: Gpr::Rbx, imm: 1, width: Width::Q });
    }

    #[test]
    fn masked_zero_shift_folds_without_killing_flags() {
        // shl r32, 32 masks to count 0: writes no flags, so it may fold even
        // with a live cmp->jcc pair spanning it. The fold must still model
        // the 32-bit truncation the shift performs.
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 0x1_0000_0001, width: Width::Q });
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rdi, imm: 3, width: Width::Q });
        p.push(Inst::Shift {
            op: ShiftOp::Shl,
            dst: Gpr::Rbx,
            amount: ShiftAmount::Imm(32),
            width: Width::D,
        });
        p.push(Inst::Jcc { cond: Cond::A, target: l });
        p.bind(l);
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.consts_folded, 1);
        assert_eq!(p.insts()[2], Inst::MovRI { dst: Gpr::Rbx, imm: 1, width: Width::D });
        // A nonzero-count shift in the same position must NOT fold.
        let mut p = Program::new();
        let l = p.fresh_label();
        p.push(Inst::MovRI { dst: Gpr::Rbx, imm: 2, width: Width::D });
        p.push(Inst::AluRI { op: AluOp::Cmp, dst: Gpr::Rdi, imm: 3, width: Width::Q });
        p.push(Inst::Shift {
            op: ShiftOp::Shl,
            dst: Gpr::Rbx,
            amount: ShiftAmount::Imm(1),
            width: Width::D,
        });
        p.push(Inst::Jcc { cond: Cond::A, target: l });
        p.bind(l);
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.consts_folded, 0, "nonzero shift writes flags the jcc would read");
    }

    #[test]
    fn lea_folds_including_addr32_wrap() {
        let mut p = Program::new();
        p.push(Inst::MovRI { dst: Gpr::Rcx, imm: 0xFFFF_FFFF, width: Width::D });
        p.push(Inst::Lea {
            dst: Gpr::Rdx,
            mem: Mem::base_disp(Gpr::Rcx, 2).with_addr32(),
            width: Width::D,
        });
        p.push(Inst::Ret);
        let stats = run_pass(&mut p);
        assert_eq!(stats.consts_folded, 1);
        // 0xFFFF_FFFF + 2 wraps to 1 under the address-size override.
        assert_eq!(p.insts()[1], Inst::MovRI { dst: Gpr::Rdx, imm: 1, width: Width::D });
    }
}
