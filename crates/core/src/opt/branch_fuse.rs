//! Compare-branch fusion.
//!
//! The baseline tier compiles every Wasm comparison to a value
//! (`set<cc> r`) and every `br_if` to a test of that value
//! (`test r, r; jne L`) — straightforward, but it costs two extra
//! instructions and an extra register on every loop guard:
//!
//! ```text
//! cmp   r13d, r12d        cmp r13d, r12d
//! setae r11b       ==>    jae .L3
//! test  r11d, r11d
//! jne   .L3
//! ```
//!
//! The fused branch consumes the *original* comparison's flags, so the
//! rewrite is legal only when
//!
//! 1. the three instructions are adjacent with no branch target between
//!    them (the `set`/`test` pair must see exactly the flags the final
//!    `jcc` will),
//! 2. the materialized boolean register is dead on both sides of the
//!    branch (checked by a conservative cross-block scan), and
//! 3. no later instruction observes the `test`'s flags (the fusion
//!    replaces them with the comparison's flags).

use std::collections::BTreeMap;

use sfi_x86::{Gpr, Inst, Program};

use super::{flags_observable_from, leaders, reads, OptStats};

pub(crate) fn run(program: &mut Program, stats: &mut OptStats) {
    let leaders = leaders(program);
    let resolve: BTreeMap<u32, usize> =
        program.label_positions().into_iter().map(|(l, p)| (l.0, p)).collect();
    let insts = program.insts_mut();

    let mut i = 0;
    while i + 2 < insts.len() {
        let window = (insts[i], insts[i + 1], insts[i + 2]);
        let (Inst::Setcc { cond, dst }, Inst::TestRR { a, b, .. }, Inst::Jcc { cond: jc, target }) =
            window
        else {
            i += 1;
            continue;
        };
        let polarity = match jc {
            sfi_x86::Cond::Ne => Some(cond),
            sfi_x86::Cond::E => Some(cond.negate()),
            _ => None,
        };
        let Some(fused) = polarity else {
            i += 1;
            continue;
        };
        if a != dst
            || b != dst
            || leaders[i + 1]
            || leaders[i + 2]
            // The test's flags must not outlive the branch…
            || flags_observable_from(insts, &leaders, i + 3)
            // …and neither must the boolean itself, on either path.
            || !reg_dead_from(insts, &resolve, i + 3, dst)
            || !resolve.get(&target.0).is_some_and(|&t| reg_dead_from(insts, &resolve, t, dst))
        {
            i += 1;
            continue;
        }
        insts[i] = Inst::Nop;
        insts[i + 1] = Inst::Nop;
        insts[i + 2] = Inst::Jcc { cond: fused, target };
        stats.branches_fused += 1;
        i += 3;
    }
}

/// Conservative "is `r` dead at `start`?": depth-first scan over the
/// instruction graph; `r` is dead if every path reaches a full redefinition
/// (or falls off the program) before any read. Calls and indirect jumps are
/// treated as reads (the callee is outside the analysis), so the answer is
/// `false` unless provably dead.
fn reg_dead_from(insts: &[Inst], resolve: &BTreeMap<u32, usize>, start: usize, r: Gpr) -> bool {
    let mut visited = vec![false; insts.len()];
    let mut work = vec![start];
    while let Some(mut i) = work.pop() {
        loop {
            if i >= insts.len() {
                break; // fell off the program: dead on this path
            }
            if visited[i] {
                break;
            }
            visited[i] = true;
            let inst = insts[i];
            match inst {
                Inst::Call { .. } | Inst::CallReg { .. } | Inst::CallHost { .. } | Inst::JmpReg { .. } => {
                    return false;
                }
                Inst::Ret | Inst::Ud2 => break, // leaves the function: dead
                Inst::Jmp { target } => {
                    match resolve.get(&target.0) {
                        Some(&t) => i = t,
                        None => return false,
                    }
                    continue;
                }
                Inst::Jcc { target, .. } => {
                    match resolve.get(&target.0) {
                        Some(&t) => work.push(t),
                        None => return false,
                    }
                }
                _ => {
                    if reads(&inst, r) {
                        return false;
                    }
                    if super::defines(&inst, r) {
                        break; // fully overwritten before any read: dead
                    }
                }
            }
            i += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use sfi_x86::inst::AluOp;
    use sfi_x86::{Cond, Gpr, Inst, Program, Width};

    use crate::opt::OptStats;

    fn run(p: &mut Program) -> OptStats {
        let mut stats = OptStats::default();
        super::run(p, &mut stats);
        stats
    }

    /// The canonical loop guard: cmp + setae + test + jne fuses to cmp + jae.
    #[test]
    fn loop_guard_fuses_to_single_branch() {
        let mut p = Program::new();
        let exit = p.fresh_label();
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::R13, src: Gpr::R12, width: Width::D });
        p.push(Inst::Setcc { cond: Cond::Ae, dst: Gpr::R11 });
        p.push(Inst::TestRR { a: Gpr::R11, b: Gpr::R11, width: Width::D });
        p.push(Inst::Jcc { cond: Cond::Ne, target: exit });
        // Body redefines the scratch before reading it.
        p.push(Inst::MovRI { dst: Gpr::R11, imm: 7, width: Width::D });
        p.push(Inst::Ret);
        p.bind(exit);
        p.push(Inst::MovRI { dst: Gpr::R11, imm: 9, width: Width::D });
        p.push(Inst::Ret);

        let stats = run(&mut p);
        assert_eq!(stats.branches_fused, 1);
        assert!(matches!(p.insts()[1], Inst::Nop));
        assert!(matches!(p.insts()[2], Inst::Nop));
        assert!(matches!(p.insts()[3], Inst::Jcc { cond: Cond::Ae, .. }));
    }

    /// `je` inverts the condition instead of copying it.
    #[test]
    fn je_polarity_negates_the_condition() {
        let mut p = Program::new();
        let exit = p.fresh_label();
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::R13, src: Gpr::R12, width: Width::D });
        p.push(Inst::Setcc { cond: Cond::B, dst: Gpr::Rcx });
        p.push(Inst::TestRR { a: Gpr::Rcx, b: Gpr::Rcx, width: Width::D });
        p.push(Inst::Jcc { cond: Cond::E, target: exit });
        p.push(Inst::Ret);
        p.bind(exit);
        p.push(Inst::Ret);

        let stats = run(&mut p);
        assert_eq!(stats.branches_fused, 1);
        assert!(matches!(p.insts()[3], Inst::Jcc { cond: Cond::Ae, .. }));
    }

    /// If the boolean is read after the branch, the pattern must survive.
    #[test]
    fn fusion_rejected_when_boolean_is_still_read() {
        let mut p = Program::new();
        let exit = p.fresh_label();
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::R13, src: Gpr::R12, width: Width::D });
        p.push(Inst::Setcc { cond: Cond::Ae, dst: Gpr::R11 });
        p.push(Inst::TestRR { a: Gpr::R11, b: Gpr::R11, width: Width::D });
        p.push(Inst::Jcc { cond: Cond::Ne, target: exit });
        p.push(Inst::Ret); // Ret path: dead
        p.bind(exit);
        // Taken path keeps using the materialized boolean.
        p.push(Inst::AluRR { op: AluOp::Add, dst: Gpr::Rax, src: Gpr::R11, width: Width::D });
        p.push(Inst::Ret);

        let stats = run(&mut p);
        assert_eq!(stats.branches_fused, 0);
        assert!(matches!(p.insts()[1], Inst::Setcc { .. }));
    }

    /// A branch target between the pieces makes the flags unpredictable.
    #[test]
    fn fusion_rejected_across_a_join_point() {
        let mut p = Program::new();
        let exit = p.fresh_label();
        let join = p.fresh_label();
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::R13, src: Gpr::R12, width: Width::D });
        p.push(Inst::Setcc { cond: Cond::Ae, dst: Gpr::R11 });
        p.bind(join); // someone jumps here with different flags
        p.push(Inst::TestRR { a: Gpr::R11, b: Gpr::R11, width: Width::D });
        p.push(Inst::Jcc { cond: Cond::Ne, target: exit });
        p.push(Inst::Jmp { target: join });
        p.bind(exit);
        p.push(Inst::Ret);

        let stats = run(&mut p);
        assert_eq!(stats.branches_fused, 0);
    }

    /// A call on the fallthrough path hides the register's fate.
    #[test]
    fn fusion_rejected_when_a_call_obscures_liveness() {
        let mut p = Program::new();
        let exit = p.fresh_label();
        let callee = p.fresh_label();
        p.push(Inst::AluRR { op: AluOp::Cmp, dst: Gpr::R13, src: Gpr::R12, width: Width::D });
        p.push(Inst::Setcc { cond: Cond::Ae, dst: Gpr::R11 });
        p.push(Inst::TestRR { a: Gpr::R11, b: Gpr::R11, width: Width::D });
        p.push(Inst::Jcc { cond: Cond::Ne, target: exit });
        p.push(Inst::Call { target: callee });
        p.push(Inst::Ret);
        p.bind(exit);
        p.push(Inst::Ret);
        p.bind(callee);
        p.push(Inst::Ret);

        let stats = run(&mut p);
        assert_eq!(stats.branches_fused, 0);
    }
}
