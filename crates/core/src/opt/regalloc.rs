//! A weight-driven linear-scan register allocator.
//!
//! The optimizing tier uses this to decide which Wasm locals live in
//! registers. Segue frees a GPR (no `%r15` heap base), and the widened
//! allocation additionally borrows registers from the tail of the operand
//! pool; the allocator picks *which* locals get them by use-count weight
//! (uses inside loops count exponentially more).
//!
//! The algorithm is classic linear scan over [`LiveRange`]s with
//! lowest-weight eviction: ranges are visited in `(start, vreg)` order;
//! when no register is free, the lowest-weight active range is evicted —
//! but only if the incoming range weighs strictly more, so the allocation
//! is stable and deterministic. An evicted or unallocatable range is
//! spilled for its whole lifetime (`None`); there is no live-range
//! splitting.
//!
//! The correctness contract, enforced by the property tests below, is the
//! one the satellite task names: **no two overlapping live ranges ever
//! share a register**, and a spill/reload simulation over random
//! interference graphs is value-preserving (every read observes the value
//! last written to that vreg, whether it lives in a register or a stack
//! slot).

/// One allocation request: virtual register `vreg` is live over the
/// inclusive instruction interval `[start, end]` and is worth `weight`
/// (higher = more profitable to keep in a register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// Virtual register (for locals: the local index).
    pub vreg: usize,
    /// First instruction at which the value is live (inclusive).
    pub start: usize,
    /// Last instruction at which the value is live (inclusive).
    pub end: usize,
    /// Spill weight: estimated dynamic use count.
    pub weight: u64,
}

impl LiveRange {
    /// Whether two inclusive ranges overlap.
    pub fn overlaps(&self, other: &LiveRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Allocates `num_regs` physical registers to `ranges`.
///
/// Returns one entry per input range, in input order: `Some(r)` assigns
/// physical register index `r` (`0..num_regs`), `None` spills the range.
/// Deterministic for a given input; no two overlapping ranges receive the
/// same register.
pub fn linear_scan(ranges: &[LiveRange], num_regs: usize) -> Vec<Option<usize>> {
    let mut assignment: Vec<Option<usize>> = vec![None; ranges.len()];
    if num_regs == 0 {
        return assignment;
    }

    let mut order: Vec<usize> = (0..ranges.len()).collect();
    order.sort_by_key(|&i| (ranges[i].start, ranges[i].vreg, ranges[i].end));

    // Active ranges: (range index, assigned register).
    let mut active: Vec<(usize, usize)> = Vec::new();
    let mut free: Vec<bool> = vec![true; num_regs];

    for &i in &order {
        let cur = ranges[i];
        // Expire ranges that ended before this one starts.
        active.retain(|&(j, r)| {
            if ranges[j].end < cur.start {
                free[r] = true;
                false
            } else {
                true
            }
        });

        if let Some(r) = free.iter().position(|&f| f) {
            free[r] = false;
            active.push((i, r));
            assignment[i] = Some(r);
            continue;
        }

        // No free register: evict the lowest-weight active range if the
        // incoming one is strictly heavier (ties keep the incumbent, so
        // the result is order-stable).
        if let Some(pos) = (0..active.len()).min_by_key(|&p| {
            let (j, _) = active[p];
            (ranges[j].weight, ranges[j].vreg)
        }) {
            let (j, r) = active[pos];
            if ranges[j].weight < cur.weight {
                assignment[j] = None;
                active[pos] = (i, r);
                assignment[i] = Some(r);
            }
            // else: spill the incoming range (assignment[i] stays None).
        }
    }

    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disjoint_ranges_share_a_register() {
        let ranges = [
            LiveRange { vreg: 0, start: 0, end: 4, weight: 1 },
            LiveRange { vreg: 1, start: 5, end: 9, weight: 1 },
        ];
        let a = linear_scan(&ranges, 1);
        assert_eq!(a, vec![Some(0), Some(0)]);
    }

    #[test]
    fn heavier_range_evicts_lighter() {
        let ranges = [
            LiveRange { vreg: 0, start: 0, end: 10, weight: 1 },
            LiveRange { vreg: 1, start: 2, end: 8, weight: 100 },
        ];
        let a = linear_scan(&ranges, 1);
        assert_eq!(a, vec![None, Some(0)], "hot range wins the only register");
    }

    #[test]
    fn equal_weight_keeps_incumbent() {
        let ranges = [
            LiveRange { vreg: 0, start: 0, end: 10, weight: 5 },
            LiveRange { vreg: 1, start: 2, end: 8, weight: 5 },
        ];
        let a = linear_scan(&ranges, 1);
        assert_eq!(a, vec![Some(0), None]);
    }

    #[test]
    fn zero_registers_spills_everything() {
        let ranges = [LiveRange { vreg: 0, start: 0, end: 1, weight: 9 }];
        assert_eq!(linear_scan(&ranges, 0), vec![None]);
    }

    fn range_strategy(max_point: usize) -> impl Strategy<Value = LiveRange> {
        (0..max_point, 0..max_point, 0u64..1000).prop_map(move |(a, b, weight)| LiveRange {
            vreg: 0, // filled in by the caller with the input position
            start: a.min(b),
            end: a.max(b),
            weight,
        })
    }

    proptest! {
        #[test]
        fn no_overlapping_ranges_share_a_register(
            raw in proptest::collection::vec(range_strategy(64), 0..24),
            num_regs in 1usize..6,
        ) {
            let ranges: Vec<LiveRange> = raw
                .iter()
                .enumerate()
                .map(|(i, r)| LiveRange { vreg: i, ..*r })
                .collect();
            let a = linear_scan(&ranges, num_regs);
            prop_assert_eq!(a.len(), ranges.len());
            for i in 0..ranges.len() {
                if let Some(r) = a[i] {
                    prop_assert!(r < num_regs, "register index in range");
                    for j in i + 1..ranges.len() {
                        if a[j] == Some(r) {
                            prop_assert!(
                                !ranges[i].overlaps(&ranges[j]),
                                "ranges {:?} and {:?} share register {}",
                                ranges[i], ranges[j], r
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn allocation_is_deterministic(
            raw in proptest::collection::vec(range_strategy(48), 0..16),
            num_regs in 1usize..5,
        ) {
            let ranges: Vec<LiveRange> = raw
                .iter()
                .enumerate()
                .map(|(i, r)| LiveRange { vreg: i, ..*r })
                .collect();
            prop_assert_eq!(linear_scan(&ranges, num_regs), linear_scan(&ranges, num_regs));
        }

        /// Spill/reload round-trip: simulate a machine with `num_regs`
        /// registers and one stack slot per vreg. Each vreg is written at
        /// its range start and read back at every point of its range; the
        /// read must always observe the written value, whether the vreg
        /// was allocated a register or spilled. Register values are stored
        /// by physical index, so any illegal sharing of a register between
        /// two live vregs would corrupt the readback.
        #[test]
        fn spill_reload_round_trip_preserves_values(
            raw in proptest::collection::vec(range_strategy(40), 1..20),
            num_regs in 1usize..5,
        ) {
            let ranges: Vec<LiveRange> = raw
                .iter()
                .enumerate()
                .map(|(i, r)| LiveRange { vreg: i, ..*r })
                .collect();
            let assign = linear_scan(&ranges, num_regs);

            let mut regs: Vec<Option<(usize, u64)>> = vec![None; num_regs]; // (vreg, value)
            let mut stack: Vec<Option<u64>> = vec![None; ranges.len()];
            let max_end = ranges.iter().map(|r| r.end).max().unwrap_or(0);

            for t in 0..=max_end {
                // Writes: a range starting here stores its value.
                for (i, range) in ranges.iter().enumerate() {
                    if range.start == t {
                        let value = 0xC0FFEE00 + range.vreg as u64;
                        match assign[i] {
                            Some(r) => regs[r] = Some((range.vreg, value)),
                            None => stack[i] = Some(value), // spill store
                        }
                    }
                }
                // Reads: every live range must observe its own value.
                for (i, range) in ranges.iter().enumerate() {
                    if range.start <= t && t <= range.end {
                        let expect = 0xC0FFEE00 + range.vreg as u64;
                        let got = match assign[i] {
                            Some(r) => {
                                let (owner, value) = regs[r].expect("register must hold a value");
                                prop_assert_eq!(
                                    owner, range.vreg,
                                    "register {} stolen from vreg {} at t={}", r, range.vreg, t
                                );
                                value
                            }
                            None => stack[i].expect("spill slot must hold a value"), // reload
                        };
                        prop_assert_eq!(got, expect, "vreg {} corrupted at t={}", range.vreg, t);
                    }
                }
            }
        }
    }
}
