//! A self-contained execution harness for compiled modules.
//!
//! Sets up a flat memory with the runtime regions (header, globals, table,
//! stack) and the linear memory at `layout.heap_base`, stages arguments,
//! points `%gs`/the reserved GPR at the heap, and runs an export on the
//! [`sfi_x86::emu::Machine`]. Out-of-bounds accesses beyond the flat memory
//! (which ends exactly at the heap's guard frontier) fault — standing in
//! for guard-region traps.
//!
//! This harness is what the differential tests and the single-sandbox
//! benchmarks use; multi-sandbox execution (ColorGuard) lives in
//! `sfi-runtime` on top of `sfi-vm`.

use sfi_wasm::PAGE_SIZE;
use sfi_x86::cost::RunStats;
use sfi_x86::emu::{FlatMemory, Machine, MemBus, RegFile, SpecConfig, SpecError};
use sfi_x86::{Gpr, Trap, Width};

use crate::compile::{hostcall, CompiledModule};
use crate::config::{regs, MitigationLevel, Strategy};

/// The outcome of a harness run.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The export's return value (`%rax`), if the function has a result.
    pub result: Option<u64>,
    /// Emulator counters for the run.
    pub stats: RunStats,
    /// Final linear-memory contents (for differential comparison).
    pub heap: Vec<u8>,
}

/// A harness failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// No export with that name.
    NoSuchExport(String),
    /// The sandboxed code trapped.
    Trapped(Trap),
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::NoSuchExport(n) => write!(f, "no export named {n}"),
            ExecError::Trapped(t) => write!(f, "trap: {t}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Runs `export(args)` on a fresh machine and flat memory.
pub fn execute_export(
    cm: &CompiledModule,
    export: &str,
    args: &[u64],
) -> Result<ExecOutcome, ExecError> {
    let mut machine = Machine::new();
    execute_export_on(cm, export, args, &mut machine)
}

/// Runs `export(args)` on the given machine (lets callers reuse warmed
/// caches or a tuned cost model).
pub fn execute_export_on(
    cm: &CompiledModule,
    export: &str,
    args: &[u64],
    machine: &mut Machine,
) -> Result<ExecOutcome, ExecError> {
    let entry = cm
        .export_entry(export)
        .ok_or_else(|| ExecError::NoSuchExport(export.to_owned()))?;
    let fidx = cm.exports[export];
    let has_result = cm.func_has_result[fidx as usize];

    let layout = cm.config.layout;
    let regions = cm.config.regions;
    let heap_base = layout.heap_base;
    let mem_bytes = u64::from(cm.mem_min_pages) * PAGE_SIZE;
    let max_bytes = u64::from(cm.mem_max_pages) * PAGE_SIZE;
    debug_assert!(max_bytes <= layout.mem_size.max(mem_bytes));

    // For guard-based layouts the flat memory ends exactly at the heap end,
    // so anything past it faults — playing the role of the guard region.
    // Native layouts put the runtime regions above the heap instead.
    let flat_size = (heap_base + mem_bytes)
        .max(u64::from(regions.stack_top))
        .max(u64::from(regions.table_base) + cm.table_bytes.len() as u64);
    let mut mem = FlatMemory::new(flat_size as usize);

    // Install runtime regions (current pages, then the stashed heap base
    // for the §4.1 segment-entry protocol).
    mem.bytes_mut()[regions.header_base as usize..regions.header_base as usize + 4]
        .copy_from_slice(&cm.mem_min_pages.to_le_bytes());
    mem.bytes_mut()[regions.header_base as usize + 8..regions.header_base as usize + 16]
        .copy_from_slice(&heap_base.to_le_bytes());
    for (i, g) in cm.globals_init.iter().enumerate() {
        let at = regions.globals_base as usize + 8 * i;
        mem.bytes_mut()[at..at + 8].copy_from_slice(&g.to_le_bytes());
    }
    let tb = regions.table_base as usize;
    mem.bytes_mut()[tb..tb + cm.table_bytes.len()].copy_from_slice(&cm.table_bytes);
    for (off, bytes) in &cm.data {
        let at = (heap_base + u64::from(*off)) as usize;
        mem.bytes_mut()[at..at + bytes.len()].copy_from_slice(bytes);
    }

    // Architectural setup.
    machine.regs = RegFile::default();
    machine.regs.gs_base = heap_base;
    machine.set_gpr(regs::HEAP_BASE, heap_base);
    let mut sp = u64::from(regions.stack_top);
    for &a in args {
        sp -= 8;
        mem.bytes_mut()[sp as usize..sp as usize + 8].copy_from_slice(&a.to_le_bytes());
    }
    machine.set_gpr(Gpr::Rsp, sp);

    // Host dispatcher for the compiler's built-ins.
    let header_base = u64::from(regions.header_base);
    let max_pages = cm.mem_max_pages;
    let image = &cm.image;
    let mut host = move |id: u32,
                         regs_: &mut RegFile,
                         bus: &mut FlatMemory|
          -> Result<f64, Trap> {
        let rsp = regs_.gpr(Gpr::Rsp);
        let arg = |bus: &mut FlatMemory, i: u64| -> Result<u64, Trap> {
            Ok(bus.load(rsp + 8 * i, Width::Q, sfi_x86::emu::AccessCtx::ALL_ENABLED)?)
        };
        match id {
            hostcall::MEMORY_GROW => {
                let delta = arg(bus, 0)? as u32;
                let cur = {
                    let mut b = [0u8; 4];
                    b.copy_from_slice(&bus.bytes()[header_base as usize..header_base as usize + 4]);
                    u32::from_le_bytes(b)
                };
                let new = u64::from(cur) + u64::from(delta);
                if new > u64::from(max_pages)
                    || (heap_base + new * PAGE_SIZE) as usize > bus.len()
                {
                    // The flat harness cannot extend its memory; growth
                    // beyond the pre-sized region reports failure (-1),
                    // exactly like `memory.grow` hitting the maximum.
                    regs_.set_gpr(Gpr::Rax, u64::from(u32::MAX));
                } else {
                    let b = new as u32;
                    bus.bytes_mut()[header_base as usize..header_base as usize + 4]
                        .copy_from_slice(&b.to_le_bytes());
                    regs_.set_gpr(Gpr::Rax, u64::from(cur));
                }
                Ok(60.0) // mmap-ish cost
            }
            hostcall::MEMORY_COPY => {
                // Args pushed bottom-first: dst, src, len → len on top.
                let len = arg(bus, 0)? as u32 as u64;
                let src = arg(bus, 1)? as u32 as u64;
                let dst = arg(bus, 2)? as u32 as u64;
                let cur_bytes = heap_bytes(bus, header_base);
                if src + len > cur_bytes || dst + len > cur_bytes {
                    return Err(Trap::Mem(sfi_x86::MemFault::OutOfRange {
                        addr: heap_base + src.max(dst) + len,
                    }));
                }
                let s = (heap_base + src) as usize;
                let d = (heap_base + dst) as usize;
                bus.bytes_mut().copy_within(s..s + len as usize, d);
                Ok(bulk_cycles(len))
            }
            hostcall::MEMORY_FILL => {
                let len = arg(bus, 0)? as u32 as u64;
                let val = arg(bus, 1)? as u8;
                let dst = arg(bus, 2)? as u32 as u64;
                let cur_bytes = heap_bytes(bus, header_base);
                if dst + len > cur_bytes {
                    return Err(Trap::Mem(sfi_x86::MemFault::OutOfRange {
                        addr: heap_base + dst + len,
                    }));
                }
                let d = (heap_base + dst) as usize;
                bus.bytes_mut()[d..d + len as usize].fill(val);
                Ok(bulk_cycles(len))
            }
            other => Err(Trap::BadControlFlow { target: u64::from(other) }),
        }
    };

    let stats = machine
        .run_image_from(image, entry, &mut mem, &mut host)
        .map_err(ExecError::Trapped)?;

    let heap = mem.bytes()[heap_base as usize..].to_vec();
    let result = has_result.then(|| machine.gpr(regs::RET));
    Ok(ExecOutcome { result, stats, heap })
}

fn heap_bytes(bus: &FlatMemory, header_base: u64) -> u64 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bus.bytes()[header_base as usize..header_base as usize + 4]);
    u64::from(u32::from_le_bytes(b)) * PAGE_SIZE
}

/// Cycle cost of a bulk memory operation: SIMD-ish 16 bytes/cycle plus a
/// small fixed dispatch cost.
fn bulk_cycles(len: u64) -> f64 {
    10.0 + len as f64 / 16.0
}

/// Compares a compiled strategy against the reference interpreter on one
/// invocation: return values and final heap contents must agree.
///
/// Panics with a descriptive message on divergence — this is the
/// differential-testing entry point.
pub fn assert_matches_interpreter(
    module: &sfi_wasm::Module,
    cm: &CompiledModule,
    export: &str,
    args: &[u64],
) {
    let mut interp = sfi_wasm::interp::Interpreter::new(module).expect("instantiate");
    let expected = interp.invoke_export(export, args);
    let actual = execute_export(cm, export, args);
    match (&expected, &actual) {
        (Ok(exp), Ok(act)) => {
            if let Some(e) = exp {
                assert_eq!(
                    Some(*e),
                    act.result.map(|r| if is_probably_i32(*e) { r & 0xFFFF_FFFF } else { r }),
                    "return value diverged for {export}({args:?}) under {}",
                    cm.config.strategy
                );
            }
            assert_eq!(
                interp.memory.len(),
                act.heap.len(),
                "heap size diverged under {}",
                cm.config.strategy
            );
            assert_eq!(
                interp.memory, act.heap,
                "heap contents diverged for {export}({args:?}) under {}",
                cm.config.strategy
            );
        }
        (Err(_), Err(_)) => {} // both trapped: good enough (kinds differ by design)
        (e, a) => panic!(
            "divergence for {export}({args:?}) under {}: interpreter {e:?}, compiled {a:?}",
            cm.config.strategy
        ),
    }
}

fn is_probably_i32(v: u64) -> bool {
    v <= u64::from(u32::MAX)
}

/// Convenience: run a strategy sweep and confirm every strategy (except the
/// wrap-divergent `Masking` on trapping inputs) matches the interpreter —
/// at both the baseline and the optimizing tier.
pub fn differential_check(module: &sfi_wasm::Module, export: &str, args: &[u64]) {
    for strategy in [
        Strategy::Native,
        Strategy::GuardRegion,
        Strategy::Segue,
        Strategy::SegueLoads,
        Strategy::BoundsCheck,
        Strategy::BoundsCheckSegue,
    ] {
        let baseline = crate::config::CompilerConfig::for_strategy(strategy);
        for config in [baseline.clone(), baseline.clone().optimized()] {
            let cm = crate::compile::compile(module, &config).unwrap_or_else(|e| {
                panic!("compile under {strategy} ({}): {e}", config.opt_level.name())
            });
            assert_matches_interpreter(module, &cm, export, args);
        }
    }
}

// ---------------------------------------------------------------------------
// Speculative execution (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// Distance from `heap_base` to the synthetic secret region the harness
/// plants for leak detection. Far enough past the guard frontier that no
/// component-masked address (`8 × (mem_size − 1)` plus any emitted
/// displacement) can reach it, yet within 32-bit-index reach so an
/// *unmasked* transient access can.
const SECRET_OFFSET: u64 = 0x1000_0000;

/// Size of the synthetic secret region.
const SECRET_SIZE: u64 = 0x1000;

/// A speculation-setup failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecSetupError {
    /// The window/secret parameters were rejected by the emulator.
    Config(SpecError),
    /// The requested secret region overlaps architecturally mapped memory
    /// (sandbox heap, guard, or runtime regions): taint tracking on a
    /// region the program may legitimately touch would flag every run.
    SecretOverlapsSandbox {
        /// Requested region start.
        lo: u64,
        /// Requested region end (exclusive).
        hi: u64,
        /// First address past all architecturally mapped regions.
        frontier: u64,
    },
}

impl core::fmt::Display for SpecSetupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecSetupError::Config(e) => write!(f, "{e}"),
            SpecSetupError::SecretOverlapsSandbox { lo, hi, frontier } => write!(
                f,
                "secret region [{lo:#x}, {hi:#x}) overlaps mapped memory (frontier {frontier:#x})"
            ),
        }
    }
}

impl std::error::Error for SpecSetupError {}

impl From<SpecError> for SpecSetupError {
    fn from(e: SpecError) -> SpecSetupError {
        SpecSetupError::Config(e)
    }
}

/// First address past everything the module may architecturally touch:
/// heap + guard, and all runtime regions.
fn mapped_frontier(cm: &CompiledModule) -> u64 {
    let layout = cm.config.layout;
    let regions = cm.config.regions;
    (layout.heap_base + layout.mem_size + layout.guard_size)
        .max(u64::from(regions.stack_top))
        .max(u64::from(regions.table_base) + cm.table_bytes.len() as u64)
        .max(u64::from(regions.globals_base) + 8 * cm.globals_init.len() as u64)
}

/// Builds a [`SpecConfig`] with an explicit secret placement, validating
/// both the emulator parameters (window, non-empty region) and that the
/// secret sits wholly outside architecturally mapped memory.
pub fn spec_config_with_secret(
    cm: &CompiledModule,
    window: u32,
    secret_lo: u64,
    secret_hi: u64,
) -> Result<SpecConfig, SpecSetupError> {
    let cfg = SpecConfig::new(window, secret_lo, secret_hi)?;
    let frontier = mapped_frontier(cm);
    if secret_lo < frontier {
        return Err(SpecSetupError::SecretOverlapsSandbox { lo: secret_lo, hi: secret_hi, frontier });
    }
    Ok(cfg)
}

/// The harness's default speculation setup for a compiled module: a
/// ROB-depth window ([`SpecConfig::DEFAULT_WINDOW`]) and a synthetic
/// secret planted [`SECRET_OFFSET`] past the heap base.
pub fn spec_config_for(cm: &CompiledModule) -> Result<SpecConfig, SpecSetupError> {
    let lo = cm.config.layout.heap_base + SECRET_OFFSET;
    spec_config_with_secret(cm, SpecConfig::DEFAULT_WINDOW, lo, lo + SECRET_SIZE)
}

/// Runs `export(args)` with the bounded speculation window enabled.
/// Architectural results are identical to [`execute_export`]; the returned
/// stats additionally carry `spec_flushes` / `spec_uops` / `spec_leaks`.
pub fn execute_speculative(
    cm: &CompiledModule,
    export: &str,
    args: &[u64],
    spec: SpecConfig,
) -> Result<ExecOutcome, ExecError> {
    let mut machine = Machine::new();
    machine.enable_speculation(spec);
    execute_export_on(cm, export, args, &mut machine)
}

/// Sweeps every protected strategy × mitigation level over one module
/// under the speculative emulator and asserts the declared-safe contract:
///
/// - every cell where [`MitigationLevel::declared_safe`] holds reports
///   **zero** speculative leaks;
/// - every mitigated run returns the same architectural result as the
///   unmitigated (`None`) run — hardening never changes semantics;
/// - the exact-sum cycle-attribution invariant holds in every cell.
///
/// Returns the per-cell leak counts keyed `(strategy, level)` so callers
/// (tests, the `figX_spectre` bench) can additionally inspect the *unsafe*
/// cells, e.g. to assert a known-leaky gadget does leak under unmitigated
/// Segue.
pub fn speculative_check(
    module: &sfi_wasm::Module,
    export: &str,
    args: &[u64],
) -> Vec<(Strategy, MitigationLevel, u64)> {
    let mut cells = Vec::new();
    for strategy in Strategy::ALL {
        if strategy == Strategy::Native {
            continue; // no sandbox, no speculation contract
        }
        let mut baseline_result = None;
        for level in MitigationLevel::ALL {
            let config = crate::config::CompilerConfig::for_strategy(strategy).mitigated(level);
            let cm = crate::compile::compile(module, &config)
                .unwrap_or_else(|e| panic!("compile under {strategy}/{level}: {e}"));
            let spec = spec_config_for(&cm).expect("default secret placement is valid");
            let out = execute_speculative(&cm, export, args, spec)
                .unwrap_or_else(|e| panic!("run under {strategy}/{level}: {e}"));
            assert_eq!(
                out.stats.cycles,
                out.stats.attributed_cycles(),
                "exact-sum attribution must survive speculation under {strategy}/{level}"
            );
            match &baseline_result {
                None => baseline_result = Some(out.result),
                Some(base) => assert_eq!(
                    *base, out.result,
                    "mitigation {level} changed the architectural result under {strategy}"
                ),
            }
            if level.declared_safe(strategy) {
                assert_eq!(
                    out.stats.spec_leaks, 0,
                    "declared-safe cell {strategy}/{level} leaked for {export}({args:?})"
                );
            }
            cells.push((strategy, level, out.stats.spec_leaks));
        }
    }
    cells
}
