//! # sfi-core: Segue and the SFI compilation strategies
//!
//! This crate is the reproduction of the paper's primary code-generation
//! contribution: a Wasm → x86-64 compiler with pluggable SFI strategies
//! ([`Strategy`]), including **Segue** — heap-base addition via the `%gs`
//! segment register (§3.1) — alongside the production baseline
//! (reserved-GPR + guard regions), explicit bounds checks, masking, and
//! WAMR's loads-only Segue variant.
//!
//! The compiler is deliberately observable: [`CompiledModule`] exposes
//! instruction counts, encoded byte sizes, and per-function SFI overhead,
//! and the [`harness`] runs compiled code on the deterministic `sfi-x86`
//! emulator and diffs it against the `sfi-wasm` reference interpreter.
//!
//! ## Example: Figure 1 in code
//!
//! ```
//! use sfi_core::{compile, CompilerConfig, Strategy};
//! use sfi_wasm::wat;
//!
//! // Pattern 2 of the paper's Figure 1: read an array element in a struct.
//! let module = wat::parse(r#"
//!   (module (memory 1)
//!     (func (export "get") (param $obj i32) (param $idx i32) (result i32)
//!       local.get $obj
//!       local.get $idx
//!       i32.const 4
//!       i32.mul
//!       i32.add
//!       i32.load offset=0))
//! "#).unwrap();
//!
//! let baseline = compile(&module, &CompilerConfig::for_strategy(Strategy::GuardRegion)).unwrap();
//! let segue = compile(&module, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap();
//! // Segue needs fewer instructions for the same function.
//! assert!(segue.func_stats[0].insts < baseline.func_stats[0].insts);
//! // And both agree with the reference interpreter.
//! sfi_core::harness::differential_check(&module, "get", &[16, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod config;
pub mod fingerprint;
pub mod harness;
pub mod opt;
pub mod vectorize;

pub use compile::{compile, CompileError, CompiledModule};
pub use config::{
    CompilerConfig, FuncStats, MemLayout, MitigationLevel, OptLevel, RuntimeRegions, Strategy,
};
pub use fingerprint::module_hash;
pub use opt::OptStats;

#[cfg(test)]
mod tests {
    use super::*;
    use harness::{differential_check, execute_export};
    use sfi_wasm::wat;

    fn cc(s: Strategy) -> CompilerConfig {
        CompilerConfig::for_strategy(s)
    }

    #[test]
    fn add_function_all_strategies() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "add") (param i32 i32) (result i32)
                   local.get 0
                   local.get 1
                   i32.add))"#,
        )
        .unwrap();
        for s in Strategy::ALL {
            let cm = compile(&m, &cc(s)).unwrap();
            let out = execute_export(&cm, "add", &[20, 22]).unwrap();
            assert_eq!(out.result.map(|r| r & 0xFFFF_FFFF), Some(42), "strategy {s}");
        }
    }

    #[test]
    fn memory_roundtrip_all_strategies() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "rw") (param $p i32) (param $v i32) (result i32)
                   local.get $p
                   local.get $v
                   i32.store offset=8
                   local.get $p
                   i32.load offset=8))"#,
        )
        .unwrap();
        for s in Strategy::ALL {
            let cm = compile(&m, &cc(s)).unwrap();
            let out = execute_export(&cm, "rw", &[64, 0xBEEF]).unwrap();
            assert_eq!(out.result.map(|r| r & 0xFFFF_FFFF), Some(0xBEEF), "strategy {s}");
        }
    }

    #[test]
    fn figure1_pattern2_instruction_counts() {
        // obj->arr[idx]: baseline needs lea+mov, Segue needs one mov.
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "get") (param $obj i32) (param $idx i32) (result i32)
                   local.get $obj
                   local.get $idx
                   i32.const 4
                   i32.mul
                   i32.add
                   i32.load))"#,
        )
        .unwrap();
        let base = compile(&m, &cc(Strategy::GuardRegion)).unwrap();
        let segue = compile(&m, &cc(Strategy::Segue)).unwrap();
        let native = compile(&m, &cc(Strategy::Native)).unwrap();
        // Both pay the 2-instruction prologue stack check; the baseline
        // additionally pays a lea the others avoid.
        assert_eq!(segue.func_stats[0].sfi_overhead_insts, 2, "{:?}", segue.func_stats[0]);
        assert_eq!(
            base.func_stats[0].sfi_overhead_insts,
            segue.func_stats[0].sfi_overhead_insts + 1,
            "{:?}",
            base.func_stats[0]
        );
        // Segue's access count stays close to native's.
        assert!(segue.func_stats[0].insts <= native.func_stats[0].insts + 2);
        // Check the actual Segue instruction shape appears in the listing.
        let listing = segue.image.program().listing();
        assert!(listing.contains("gs:["), "expected gs-relative access:\n{listing}");
        assert!(
            listing.contains("*4"),
            "expected scaled-index folding into the gs access:\n{listing}"
        );
        differential_check(&m, "get", &[100, 7]);
    }

    #[test]
    fn figure1_pattern1_wrap_i64() {
        // Int-to-pointer then deref: i32.wrap_i64 feeding a load.
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "deref") (param $val i64) (result i32)
                   local.get $val
                   i32.wrap_i64
                   i32.load))"#,
        )
        .unwrap();
        let base = compile(&m, &cc(Strategy::GuardRegion)).unwrap();
        let segue = compile(&m, &cc(Strategy::Segue)).unwrap();
        // Baseline pays an explicit truncation; Segue folds it into the
        // address-size override.
        assert!(base.func_stats[0].sfi_overhead_insts > segue.func_stats[0].sfi_overhead_insts);
        let has_addr32_gs = segue
            .image
            .program()
            .insts()
            .iter()
            .any(|i| i.mem().is_some_and(|m| m.seg.is_some() && m.addr32));
        assert!(has_addr32_gs, "expected an addr32 gs access:\n{}", segue.image.program().listing());
        // High upper bits must be ignored under every SFI strategy.
        for s in [Strategy::GuardRegion, Strategy::Segue, Strategy::BoundsCheck] {
            let cm = compile(&m, &cc(s)).unwrap();
            let out = execute_export(&cm, "deref", &[0xDEAD_0000_0000_0040]).unwrap();
            assert_eq!(out.result.map(|r| r & 0xFFFF_FFFF), Some(0), "strategy {s}");
        }
    }

    #[test]
    fn segue_binary_is_smaller() {
        // A memory-heavy function: Segue cuts both instructions and bytes.
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "sum") (param $n i32) (result i32)
                   (local $i i32) (local $acc i32)
                   block
                     loop
                       local.get $i
                       local.get $n
                       i32.ge_u
                       br_if 1
                       local.get $acc
                       local.get $i
                       i32.const 4
                       i32.mul
                       i32.load
                       i32.add
                       local.set $acc
                       local.get $i
                       i32.const 1
                       i32.add
                       local.set $i
                       br 0
                     end
                   end
                   local.get $acc))"#,
        )
        .unwrap();
        let base = compile(&m, &cc(Strategy::GuardRegion)).unwrap();
        let segue = compile(&m, &cc(Strategy::Segue)).unwrap();
        assert!(
            segue.code_size() < base.code_size(),
            "segue {} vs baseline {}",
            segue.code_size(),
            base.code_size()
        );
        differential_check(&m, "sum", &[10]);
    }

    #[test]
    fn oob_access_traps_under_sfi() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "poke") (param $p i32) (result i32)
                   local.get $p
                   i32.const 1
                   i32.store
                   i32.const 7))"#,
        )
        .unwrap();
        // In-bounds works everywhere; out-of-bounds traps under every
        // protection strategy (masking wraps instead — footnote 1).
        for s in [
            Strategy::GuardRegion,
            Strategy::Segue,
            Strategy::SegueLoads,
            Strategy::BoundsCheck,
            Strategy::BoundsCheckSegue,
        ] {
            let cm = compile(&m, &cc(s)).unwrap();
            assert!(execute_export(&cm, "poke", &[100]).is_ok(), "{s}");
            let oob = execute_export(&cm, "poke", &[0x2_0000]); // 128 KiB > 64 KiB mem
            assert!(matches!(oob, Err(harness::ExecError::Trapped(_))), "{s}: {oob:?}");
        }
        // Masking wraps: the store lands inside the sandbox, no trap.
        let cm = compile(&m, &cc(Strategy::Masking)).unwrap();
        let out = execute_export(&cm, "poke", &[0x2_0000]).unwrap();
        assert_eq!(out.heap[0], 1, "masked store wrapped to offset 0");
    }

    #[test]
    fn calls_and_recursion_differential() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func $fib (param $n i32) (result i32)
                   local.get $n
                   i32.const 2
                   i32.lt_u
                   if
                     local.get $n
                     return
                   end
                   local.get $n
                   i32.const 1
                   i32.sub
                   call $fib
                   local.get $n
                   i32.const 2
                   i32.sub
                   call $fib
                   i32.add)
                 (func (export "fib") (param i32) (result i32)
                   local.get 0
                   call $fib))"#,
        )
        .unwrap();
        differential_check(&m, "fib", &[12]);
    }

    #[test]
    fn call_indirect_differential_and_traps() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func $double (param i32) (result i32)
                   local.get 0 i32.const 2 i32.mul)
                 (func $square (param i32) (result i32)
                   local.get 0 local.get 0 i32.mul)
                 (func $wrongsig (param i32) (result i64)
                   i64.const 0)
                 (table funcref (elem $double $square $wrongsig))
                 (func (export "apply") (param $f i32) (param $x i32) (result i32)
                   local.get $x
                   local.get $f
                   call_indirect (type $double)))"#,
        )
        .unwrap();
        differential_check(&m, "apply", &[0, 21]);
        differential_check(&m, "apply", &[1, 6]);
        // Signature mismatch and out-of-range table index trap.
        for s in [Strategy::GuardRegion, Strategy::Segue] {
            let cm = compile(&m, &cc(s)).unwrap();
            assert!(matches!(
                execute_export(&cm, "apply", &[2, 1]),
                Err(harness::ExecError::Trapped(_))
            ));
            assert!(matches!(
                execute_export(&cm, "apply", &[99, 1]),
                Err(harness::ExecError::Trapped(_))
            ));
        }
    }

    #[test]
    fn division_semantics() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "divs") (param i32 i32) (result i32)
                   local.get 0 local.get 1 i32.div_s)
                 (func (export "rems") (param i32 i32) (result i32)
                   local.get 0 local.get 1 i32.rem_s)
                 (func (export "divu") (param i32 i32) (result i32)
                   local.get 0 local.get 1 i32.div_u))"#,
        )
        .unwrap();
        differential_check(&m, "divs", &[100, 7]);
        differential_check(&m, "divs", &[(-100i32) as u32 as u64, 7]);
        differential_check(&m, "rems", &[(-100i32) as u32 as u64, 7]);
        // INT_MIN rem -1 must be 0, not a trap.
        differential_check(&m, "rems", &[i32::MIN as u32 as u64, u32::MAX as u64]);
        differential_check(&m, "divu", &[u32::MAX as u64, 3]);
        // Division by zero traps in both worlds.
        let cm = compile(&m, &cc(Strategy::Segue)).unwrap();
        assert!(matches!(
            execute_export(&cm, "divs", &[1, 0]),
            Err(harness::ExecError::Trapped(_))
        ));
    }

    #[test]
    fn control_flow_differential() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "collatz") (param $n i32) (result i32) (local $steps i32)
                   block $done
                     loop $top
                       local.get $n
                       i32.const 1
                       i32.le_u
                       br_if $done
                       local.get $n
                       i32.const 1
                       i32.and
                       if
                         local.get $n
                         i32.const 3
                         i32.mul
                         i32.const 1
                         i32.add
                         local.set $n
                       else
                         local.get $n
                         i32.const 1
                         i32.shr_u
                         local.set $n
                       end
                       local.get $steps
                       i32.const 1
                       i32.add
                       local.set $steps
                       br $top
                     end
                   end
                   local.get $steps))"#,
        )
        .unwrap();
        for n in [1u64, 6, 7, 27, 97] {
            differential_check(&m, "collatz", &[n]);
        }
    }

    #[test]
    fn br_table_differential() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "sw") (param $i i32) (result i32)
                   block block block
                     local.get $i
                     br_table 0 1 2
                   end
                     i32.const 10 return
                   end
                     i32.const 20 return
                   end
                   i32.const 30))"#,
        )
        .unwrap();
        for i in 0..5u64 {
            differential_check(&m, "sw", &[i]);
        }
    }

    #[test]
    fn globals_and_bulk_memory() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (global $g (mut i32) (i32.const 3))
                 (func (export "run") (result i32)
                   ;; fill [64, 96) with g, copy to [128, 160), read back
                   i32.const 64
                   global.get $g
                   i32.const 32
                   memory.fill
                   i32.const 128
                   i32.const 64
                   i32.const 32
                   memory.copy
                   i32.const 140
                   i32.load8_u))"#,
        )
        .unwrap();
        differential_check(&m, "run", &[]);
    }

    #[test]
    fn many_locals_spill_to_frame() {
        // More locals than the register pool: frame spilling must be
        // transparent under every strategy.
        let mut body = String::new();
        for i in 0..10 {
            body.push_str(&format!("(local $x{i} i32)\n"));
        }
        for i in 0..10 {
            body.push_str(&format!("i32.const {}\nlocal.set $x{i}\n", i * 3 + 1));
        }
        for i in 0..10 {
            body.push_str(&format!("local.get $x{i}\n"));
        }
        for _ in 0..9 {
            body.push_str("i32.add\n");
        }
        let src = format!("(module (memory 1) (func (export \"sum\") (result i32)\n{body}))");
        let m = wat::parse(&src).unwrap();
        differential_check(&m, "sum", &[]);
        // Expected: Σ (3i+1) for i in 0..10 = 3*45 + 10 = 145.
        let cm = compile(&m, &cc(Strategy::Segue)).unwrap();
        assert_eq!(
            execute_export(&cm, "sum", &[]).unwrap().result.map(|r| r & 0xFFFF_FFFF),
            Some(145)
        );
    }

    #[test]
    fn deep_operand_stack_spills() {
        // Push 12 constants (beyond the 7 operand registers), then add.
        // Mix in locals so the slots are not all compile-time constants.
        let mut body = String::new();
        body.push_str("(local $v i32) i32.const 5 local.set $v\n");
        for i in 1..=12 {
            body.push_str(&format!("i32.const {i}\nlocal.get $v\ni32.mul\n"));
        }
        for _ in 0..11 {
            body.push_str("i32.add\n");
        }
        let src = format!("(module (memory 1) (func (export \"s\") (result i32)\n{body}))");
        let m = wat::parse(&src).unwrap();
        differential_check(&m, "s", &[]);
    }

    #[test]
    fn imports_are_host_calls() {
        use sfi_wasm::{FuncBuilder, HostImport, Module, Op, ValType};
        let mut m = Module::new(1);
        let imp = m.push_import(HostImport {
            name: "env.magic".into(),
            params: vec![ValType::I32],
            result: Some(ValType::I32),
        });
        let f = m.push_func(
            FuncBuilder::new("f")
                .params(&[ValType::I32])
                .result(ValType::I32)
                .body(vec![Op::LocalGet(0), Op::Call(imp), Op::End])
                .build(),
        );
        m.export("f", f);
        let cm = compile(&m, &cc(Strategy::Segue)).unwrap();
        // The import is compiled as a host call with the import's id.
        let listing = cm.image.program().listing();
        assert!(listing.contains("call <host:0>"), "{listing}");
    }

    #[test]
    fn stack_overflow_check_traps() {
        let m = wat::parse(
            r#"(module (memory 1)
                 (func $inf (export "inf") (result i32)
                   call $inf))"#,
        )
        .unwrap();
        let cm = compile(&m, &cc(Strategy::GuardRegion)).unwrap();
        let r = execute_export(&cm, "inf", &[]);
        assert!(
            matches!(r, Err(harness::ExecError::Trapped(_))),
            "infinite recursion must hit the stack check: {r:?}"
        );
    }

    #[test]
    fn reserved_gpr_reduces_register_locals() {
        // With four locals, GuardRegion (R15 reserved) can pin only three in
        // registers; Segue pins all four. Observable as fewer memory ops.
        let m = wat::parse(
            r#"(module (memory 1)
                 (func (export "f") (param $a i32) (param $b i32) (param $c i32) (param $d i32) (result i32)
                   (local $acc i32)
                   block loop
                     local.get $a i32.eqz br_if 1
                     local.get $acc local.get $b i32.add
                     local.get $c i32.add local.get $d i32.add
                     local.set $acc
                     local.get $a i32.const 1 i32.sub local.set $a
                     br 0
                   end end
                   local.get $acc))"#,
        )
        .unwrap();
        let base = compile(&m, &cc(Strategy::GuardRegion)).unwrap();
        let segue = compile(&m, &cc(Strategy::Segue)).unwrap();
        let base_out = execute_export(&base, "f", &[50, 1, 2, 3]).unwrap();
        let segue_out = execute_export(&segue, "f", &[50, 1, 2, 3]).unwrap();
        assert_eq!(base_out.result, segue_out.result);
        assert!(
            segue_out.stats.loads < base_out.stats.loads,
            "freed GPR must reduce frame traffic: segue {} vs baseline {}",
            segue_out.stats.loads,
            base_out.stats.loads
        );
        differential_check(&m, "f", &[10, 5, 6, 7]);
    }
}

#[cfg(test)]
mod tier_tests {
    use crate::harness::{differential_check, execute_export};
    use crate::{compile, CompilerConfig, OptLevel, Strategy};

    /// A hot loop with more live locals than the baseline local pool: the
    /// optimizing tier must keep them all in registers (borrowing from the
    /// operand pool) and fold the Segue addressing.
    const HOT_SRC: &str = r#"(module (memory 1)
        (func (export "kern") (param $n i32) (result i32)
          (local $i i32) (local $a i32) (local $b i32) (local $c i32)
          (local $d i32) (local $acc i32)
          i32.const 1 local.set $a
          i32.const 2 local.set $b
          i32.const 3 local.set $c
          i32.const 4 local.set $d
          block loop
            local.get $i local.get $n i32.ge_u br_if 1
            local.get $acc
            local.get $i i32.const 4 i32.mul i32.load
            local.get $a i32.add local.get $b i32.xor
            local.get $c i32.add local.get $d i32.xor
            i32.add local.set $acc
            local.get $i i32.const 1 i32.add local.set $i
            br 0
          end end
          local.get $acc))"#;

    #[test]
    fn optimized_tier_matches_interpreter_and_baseline() {
        let m = sfi_wasm::wat::parse(HOT_SRC).unwrap();
        differential_check(&m, "kern", &[37]);
    }

    #[test]
    fn optimized_tier_cuts_cycles_on_hot_loop() {
        let m = sfi_wasm::wat::parse(HOT_SRC).unwrap();
        let cfg = CompilerConfig::for_strategy(Strategy::Segue);
        let base = compile(&m, &cfg).unwrap();
        let opt = compile(&m, &cfg.clone().optimized()).unwrap();
        assert!(opt.opt_stats.total() > 0, "the tier must do work: {:?}", opt.opt_stats);
        let b = execute_export(&base, "kern", &[200]).unwrap();
        let o = execute_export(&opt, "kern", &[200]).unwrap();
        assert_eq!(b.result, o.result, "tiers must agree");
        assert!(
            o.stats.cycles < b.stats.cycles,
            "optimized {} vs baseline {} cycles",
            o.stats.cycles,
            b.stats.cycles
        );
        assert!(
            o.stats.loads < b.stats.loads,
            "register-allocated locals must cut frame traffic: {} vs {}",
            o.stats.loads,
            b.stats.loads
        );
    }

    #[test]
    fn baseline_tier_is_byte_identical_to_default() {
        // With tiering off the artifact is byte-for-byte the pre-tier output.
        let m = sfi_wasm::wat::parse(HOT_SRC).unwrap();
        for s in Strategy::ALL {
            let cfg = CompilerConfig::for_strategy(s);
            assert_eq!(cfg.opt_level, OptLevel::Baseline, "default is baseline");
            let a = compile(&m, &cfg).unwrap();
            let b = compile(&m, &cfg).unwrap();
            assert_eq!(a.image.encoded().bytes, b.image.encoded().bytes, "{s}");
            assert_eq!(a.opt_stats.total(), 0, "baseline runs no passes");
        }
    }

    #[test]
    fn operand_pool_borrowing_survives_deep_stacks_and_calls() {
        // 8 locals (borrows operand registers) + a call (caller-save path)
        // + deep operand stack (spill path with the narrowed pool).
        let m = sfi_wasm::wat::parse(
            r#"(module (memory 1)
                 (func $leaf (param i32) (result i32)
                   local.get 0 i32.const 1 i32.add)
                 (func (export "f") (param $n i32) (result i32)
                   (local $a i32) (local $b i32) (local $c i32) (local $d i32)
                   (local $e i32) (local $f i32) (local $g i32)
                   block loop
                     local.get $n i32.eqz br_if 1
                     local.get $a i32.const 3 i32.mul i32.const 7 i32.add local.set $a
                     local.get $b local.get $a i32.xor local.set $b
                     local.get $c local.get $b call $leaf i32.add local.set $c
                     local.get $d i32.const 1 i32.add local.set $d
                     local.get $e local.get $d i32.or local.set $e
                     local.get $f local.get $e i32.add local.set $f
                     local.get $g i32.const 2 i32.mul local.get $f i32.add local.set $g
                     local.get $n i32.const 1 i32.sub local.set $n
                     br 0
                   end end
                   local.get $a local.get $b i32.add local.get $c i32.add
                   local.get $d i32.add local.get $e i32.add
                   local.get $f i32.add local.get $g i32.add))"#,
        )
        .unwrap();
        differential_check(&m, "f", &[0]);
        differential_check(&m, "f", &[1]);
        differential_check(&m, "f", &[23]);
    }
}

#[cfg(test)]
mod segment_entry_tests {
    use crate::harness::execute_export;
    use crate::{compile, CompilerConfig, Strategy};
    use sfi_x86::Inst;

    const SRC: &str = r#"(module (memory 1)
        (func $helper (param $p i32) (result i32)
          local.get $p i32.load)
        (func (export "read") (param $p i32) (result i32)
          local.get $p call $helper))"#;

    #[test]
    fn exported_functions_set_the_segment_base_internal_ones_do_not() {
        // §4.1: Wasm2c sets the base on module entry; internal calls elide
        // it. With the protocol on, exactly the exported function carries a
        // wrgsbase.
        let m = sfi_wasm::wat::parse(SRC).unwrap();
        let mut cfg = CompilerConfig::for_strategy(Strategy::Segue);
        cfg.segment_entry_protocol = true;
        let cm = compile(&m, &cfg).unwrap();
        let wrgsbase_count = cm
            .image
            .program()
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::WrGsBase { .. }))
            .count();
        assert_eq!(wrgsbase_count, 1, "one module-entry function, one wrgsbase");

        // And the code is self-sufficient: the harness's pre-set gs base is
        // redundant because the prologue re-derives it from the header.
        let out = execute_export(&cm, "read", &[64]).unwrap();
        assert_eq!(out.result.map(|r| r & 0xFFFF_FFFF), Some(0));
    }

    #[test]
    fn protocol_off_emits_no_wrgsbase() {
        let m = sfi_wasm::wat::parse(SRC).unwrap();
        let cm = compile(&m, &CompilerConfig::for_strategy(Strategy::Segue)).unwrap();
        assert!(
            !cm.image.program().insts().iter().any(|i| matches!(i, Inst::WrGsBase { .. })),
            "embedder-managed bases by default"
        );
    }

    #[test]
    fn non_segue_strategies_never_touch_segments() {
        let m = sfi_wasm::wat::parse(SRC).unwrap();
        let mut cfg = CompilerConfig::for_strategy(Strategy::GuardRegion);
        cfg.segment_entry_protocol = true;
        let cm = compile(&m, &cfg).unwrap();
        assert!(
            !cm.image.program().insts().iter().any(|i| matches!(i, Inst::WrGsBase { .. })),
            "the protocol only applies to segment-based strategies"
        );
    }
}

